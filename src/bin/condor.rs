//! The `condor` command-line tool: run the paper's scenarios, custom
//! traces, and the live pool from a terminal.
//!
//! ```text
//! condor month   [--seed N] [--policy P] [--stations N] [--history]
//!                [--ckpt-server] [--failures MTBFH:MTTRH] [--perfetto FILE.json]
//! condor week    [--seed N]
//! condor fairness [--seed N]
//! condor spans   [--seed N] [--days N] [--top N]
//! condor audit   [--jsonl FILE.jsonl] [--seed N] [--days N]
//! condor chaos   [--seeds N] [--quick] [--schedule OUT.json] [--replay FILE.json]
//! condor export-trace <file.csv> [--seed N]
//! condor simulate <file.csv> [--stations N] [--days N] [--seed N]
//! condor live    [--workers N]
//! ```

use std::process::ExitCode;
use std::time::Duration;

use condor::metrics::summary::{mean_wait_ratio, summarize};
use condor::metrics::table::{num, Align, Table};
use condor::prelude::*;
use condor::workload::scenarios::{fairness_duel, one_week, paper_month};
use condor::workload::trace::{from_csv, to_csv};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "month" => cmd_month(rest),
        "week" => cmd_week(rest),
        "fairness" => cmd_fairness(rest),
        "report" => cmd_report(rest),
        "spans" => cmd_spans(rest),
        "audit" => cmd_audit(rest),
        "chaos" => cmd_chaos(rest),
        "trace" => cmd_trace(rest),
        "export-trace" => cmd_export_trace(rest),
        "simulate" => cmd_simulate(rest),
        "live" => cmd_live(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "condor — a hunter of idle workstations

USAGE:
  condor month    [--seed N] [--policy up-down|fifo|round-robin|random]
                  [--stations N] [--history] [--ckpt-server]
                  [--failures MTBFH:MTTRH] [--perfetto FILE.json]
                  simulate the paper's one-month evaluation; --perfetto
                  writes the job/station timelines as a Chrome trace
                  loadable at ui.perfetto.dev
  condor week     [--seed N]
                  simulate the one-week close-up (Figs. 6-7)
  condor fairness [--seed N]
                  heavy-vs-light duel across all policies
  condor report   [--seed N] [--stations N] [--days N]
                  run the paper month trace-free and print the
                  streaming telemetry summary
  condor spans    [--seed N] [--stations N] [--days N] [--top N]
                  fold a run into per-job lifecycle spans and print
                  the where-time-went breakdown
  condor audit    [--jsonl FILE.jsonl] [--seed N] [--stations N] [--days N]
                  check protocol invariants over a saved JSONL trace
                  (or a fresh seeded run); exits nonzero on violations
  condor chaos    [--seeds N] [--start-seed N] [--faults N] [--quick]
                  [--schedule OUT.json] [--replay FILE.json]
                  run seeded fault-injection schedules over the one-week
                  scenario, asserting every run stays audit-clean with
                  balanced transfer accounting; failures are shrunk to a
                  minimal schedule (--schedule saves it as JSON) and
                  --replay re-runs a saved schedule; exits nonzero on
                  any failure
  condor trace    [--seed N] [--days N] [--last N] [--jsonl FILE.jsonl]
                  [--kind name,name,...]
                  tail the last events of a run; optionally stream
                  the full trace to a JSONL file; --kind keeps only
                  the named event kinds (snake_case)
  condor export-trace FILE.csv [--seed N]
                  write the paper-month job trace as CSV
  condor simulate FILE.csv [--stations N] [--days N] [--seed N]
                  run a cluster over a CSV job trace
  condor live     [--workers N]
                  run the live threaded mini-Condor demo";

/// Pulls `--flag value` out of an argument list.
fn opt_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value"))
    } else {
        Ok(None)
    }
}

fn opt_parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match opt_value(args, flag)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {flag}: {v:?}")),
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_policy(name: &str) -> Result<PolicyKind, String> {
    Ok(match name {
        "up-down" | "updown" => PolicyKind::UpDown(UpDownConfig::default()),
        "fifo" => PolicyKind::Fifo,
        "round-robin" | "rr" => PolicyKind::RoundRobin,
        "random" => PolicyKind::Random,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

fn print_summary(out: &condor::core::cluster::RunOutput) {
    let s = summarize(out);
    let mut t = Table::new(vec!["Metric", "Value"], vec![Align::Left, Align::Right]);
    t.row(vec!["policy".into(), out.policy_name.clone()]);
    t.row(vec!["stations".into(), s.stations.to_string()]);
    t.row(vec!["horizon".into(), format!("{:.0} h", s.horizon_hours)]);
    t.row(vec![
        "jobs done".into(),
        format!("{}/{}", s.jobs_completed, s.jobs_submitted),
    ]);
    t.row(vec!["available station-hours".into(), num(s.available_hours, 0)]);
    t.row(vec!["consumed CPU-hours".into(), num(s.consumed_hours, 0)]);
    t.row(vec![
        "availability".into(),
        format!("{:.0}%", s.availability * 100.0),
    ]);
    t.row(vec![
        "local utilization".into(),
        format!("{:.0}%", s.local_utilization * 100.0),
    ]);
    t.row(vec![
        "system utilization".into(),
        format!("{:.0}%", s.system_utilization * 100.0),
    ]);
    t.row(vec!["mean wait ratio".into(), num(s.mean_wait_ratio, 2)]);
    t.row(vec!["mean leverage".into(), num(s.mean_leverage, 0)]);
    t.row(vec!["placements".into(), s.placements.to_string()]);
    t.row(vec!["migrations".into(), s.migrations.to_string()]);
    t.row(vec![
        "owner preemptions".into(),
        out.totals.preemptions_owner.to_string(),
    ]);
    t.row(vec![
        "priority preemptions".into(),
        out.totals.preemptions_priority.to_string(),
    ]);
    if out.totals.local_starts > 0 || out.totals.ckpt_retries > 0 {
        t.row(vec![
            "chaos local starts".into(),
            out.totals.local_starts.to_string(),
        ]);
        t.row(vec![
            "chaos ckpt retries".into(),
            out.totals.ckpt_retries.to_string(),
        ]);
    }
    if out.totals.station_failures > 0 {
        t.row(vec![
            "station crashes".into(),
            out.totals.station_failures.to_string(),
        ]);
        t.row(vec![
            "crash rollbacks".into(),
            out.totals.crash_rollbacks.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn cmd_month(args: &[String]) -> Result<(), String> {
    let seed = opt_parse(args, "--seed", 1988u64)?;
    let stations = opt_parse(args, "--stations", 23usize)?;
    let mut scenario = paper_month(seed);
    scenario.config.stations = stations.max(5); // homes 0..5 must exist
    if let Some(p) = opt_value(args, "--policy")? {
        scenario.config.policy = parse_policy(&p)?;
    }
    scenario.config.history_aware_placement = has_flag(args, "--history");
    scenario.config.checkpoint_server = has_flag(args, "--ckpt-server");
    if let Some(f) = opt_value(args, "--failures")? {
        let (mtbf, mttr) = f
            .split_once(':')
            .ok_or_else(|| format!("--failures wants MTBFH:MTTRH, got {f:?}"))?;
        scenario.config.failures = Some(condor::core::config::FailureConfig {
            mtbf: SimDuration::from_hours(
                mtbf.parse().map_err(|_| format!("bad MTBF {mtbf:?}"))?,
            ),
            mttr: SimDuration::from_hours(
                mttr.parse().map_err(|_| format!("bad MTTR {mttr:?}"))?,
            ),
        });
    }
    let perfetto = opt_value(args, "--perfetto")?;
    let spans = SharedSink::new(SpanSink::new());
    let sinks: Vec<Box<dyn TraceSink + Send>> = if perfetto.is_some() {
        vec![Box::new(spans.clone())]
    } else {
        Vec::new()
    };
    let started = std::time::Instant::now();
    let out = sinks.into_iter().fold(Run::new(scenario.config).specs(scenario.jobs).horizon(scenario.horizon), Run::sink).execute();
    println!(
        "simulated one month of {} stations in {:.0?}\n",
        out.stations,
        started.elapsed()
    );
    print_summary(&out);
    if let Some(path) = perfetto {
        let json = spans.with(|s| spans_to_chrome_trace(s.log()));
        std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nwrote Perfetto trace to {path} ({} bytes) — open at ui.perfetto.dev", json.len());
    }
    Ok(())
}

fn cmd_spans(args: &[String]) -> Result<(), String> {
    let seed = opt_parse(args, "--seed", 1988u64)?;
    let stations = opt_parse(args, "--stations", 23usize)?;
    let days = opt_parse(args, "--days", 30u64)?;
    let top = opt_parse(args, "--top", 20usize)?;
    let mut scenario = paper_month(seed);
    scenario.config.stations = stations.max(5); // homes 0..5 must exist
    scenario.config.record_trace = false; // spans fold online; no buffer needed
    let spans = SharedSink::new(SpanSink::new());
    let _ = Run::new(scenario.config)
        .specs(scenario.jobs)
        .horizon(SimDuration::from_days(days))
        .sink(Box::new(spans.clone()))
        .execute();
    let log = spans.with(|s| s.log().clone());
    println!("{}", render_spans(&log, top));
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let audit = match opt_value(args, "--jsonl")? {
        Some(path) => {
            use condor::metrics::export::events_from_jsonl;
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
            let events = events_from_jsonl(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            let mut audit = AuditSink::new();
            for ev in &events {
                audit.record(ev);
            }
            audit.finish(events.last().map_or(SimTime::ZERO, |e| e.at));
            audit
        }
        None => {
            let seed = opt_parse(args, "--seed", 1988u64)?;
            let stations = opt_parse(args, "--stations", 23usize)?;
            let days = opt_parse(args, "--days", 30u64)?;
            let mut scenario = paper_month(seed);
            scenario.config.stations = stations.max(5); // homes 0..5 must exist
            scenario.config.record_trace = false;
            let shared = SharedSink::new(AuditSink::new());
            let _ = Run::new(scenario.config)
                .specs(scenario.jobs)
                .horizon(SimDuration::from_days(days))
                .sink(Box::new(shared.clone()))
                .execute();
            shared
                .try_into_inner()
                .ok_or("audit sink still shared after the run")?
        }
    };
    if audit.is_clean() {
        println!("audit clean: {} events, 0 violations", audit.events_seen());
        Ok(())
    } else {
        println!(
            "audit FAILED: {} violation(s) over {} events",
            audit.total_violations(),
            audit.events_seen()
        );
        for v in audit.violations() {
            println!("  {v}");
        }
        let shown = audit.violations().len() as u64;
        if audit.total_violations() > shown {
            println!("  … and {} more", audit.total_violations() - shown);
        }
        Err("trace violates protocol invariants".into())
    }
}

fn cmd_chaos(args: &[String]) -> Result<(), String> {
    let scenario_seed = opt_parse(args, "--seed", 1988u64)?;
    let quick = has_flag(args, "--quick");
    let scenario = one_week(scenario_seed);
    let stations = scenario.config.stations;
    let horizon = if quick { SimDuration::from_days(2) } else { scenario.horizon };

    if let Some(path) = opt_value(args, "--replay")? {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        let schedule =
            ChaosSchedule::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        schedule
            .check(stations)
            .map_err(|e| format!("schedule in {path} is invalid: {e}"))?;
        let violations = verify_schedule(&scenario.config, &scenario.jobs, horizon, &schedule);
        return if violations.is_empty() {
            println!(
                "replay clean: {} fault(s) from {path}, audit clean, accounting balanced",
                schedule.entries.len()
            );
            Ok(())
        } else {
            println!("replay of {path} FAILED with {} violation(s):", violations.len());
            for v in &violations {
                println!("  {v}");
            }
            Err("replayed chaos schedule violates protocol invariants".into())
        };
    }

    let seeds = opt_parse(args, "--seeds", 50u64)?;
    let start = opt_parse(args, "--start-seed", 0u64)?;
    let faults = opt_parse(args, "--faults", if quick { 6usize } else { 12 })?;
    if seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    let gen = ChaosGen { horizon, stations: stations as u32, faults };
    let started = std::time::Instant::now();
    let report = explore(
        &scenario.config,
        &scenario.jobs,
        horizon,
        &gen,
        start..start + seeds,
    );
    println!(
        "chaos: ran {} seeded schedule(s) of {faults} fault(s) over {stations} stations in {:.0?}",
        report.cases,
        started.elapsed()
    );
    if report.is_clean() {
        println!("all schedules audit-clean with balanced transfer accounting");
        return Ok(());
    }
    for f in &report.failures {
        println!(
            "seed {}: {} violation(s); shrunk {} fault(s) → {} fault(s)",
            f.seed,
            f.violations.len(),
            f.schedule.entries.len(),
            f.shrunk.entries.len()
        );
        for v in f.violations.iter().take(5) {
            println!("  {v}");
        }
        if f.violations.len() > 5 {
            println!("  … and {} more", f.violations.len() - 5);
        }
    }
    if let Some(path) = opt_value(args, "--schedule")? {
        let json = report.failures[0].shrunk.to_json();
        std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote minimal failing schedule (seed {}) to {path} — \
             re-run it with `condor chaos --replay {path}`",
            report.failures[0].seed
        );
    }
    Err(format!(
        "{} of {} chaos schedule(s) failed",
        report.failures.len(),
        report.cases
    ))
}

fn cmd_week(args: &[String]) -> Result<(), String> {
    let seed = opt_parse(args, "--seed", 1988u64)?;
    let scenario = one_week(seed);
    let out = Run::new(scenario.config).specs(scenario.jobs).horizon(scenario.horizon).execute();
    print_summary(&out);
    Ok(())
}

fn cmd_fairness(args: &[String]) -> Result<(), String> {
    let seed = opt_parse(args, "--seed", 1988u64)?;
    let mut t = Table::new(
        vec!["Policy", "Light wait", "Heavy wait", "Preemptions"],
        vec![Align::Left, Align::Right, Align::Right, Align::Right],
    );
    for policy in [
        PolicyKind::UpDown(UpDownConfig::default()),
        PolicyKind::Fifo,
        PolicyKind::RoundRobin,
        PolicyKind::Random,
    ] {
        let scenario = fairness_duel(seed, 10, 6);
        let config = ClusterConfig { policy, ..scenario.config };
        let out = Run::new(config).specs(scenario.jobs).horizon(scenario.horizon).execute();
        let light = mean_wait_ratio(&out.jobs, |j| j.spec.user == UserId(1)).unwrap_or(f64::NAN);
        let heavy = mean_wait_ratio(&out.jobs, |j| j.spec.user == UserId(0)).unwrap_or(f64::NAN);
        t.row(vec![
            out.policy_name.clone(),
            num(light, 2),
            num(heavy, 2),
            out.totals.preemptions_priority.to_string(),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let seed = opt_parse(args, "--seed", 1988u64)?;
    let stations = opt_parse(args, "--stations", 23usize)?;
    let days = opt_parse(args, "--days", 30u64)?;
    let mut scenario = paper_month(seed);
    scenario.config.stations = stations.max(5); // homes 0..5 must exist
    scenario.config.record_trace = false; // telemetry streams; no buffer needed
    let out = Run::new(scenario.config)
        .specs(scenario.jobs)
        .horizon(SimDuration::from_days(days))
        .execute();
    print_summary(&out);
    println!();
    println!("{}", render_telemetry(&out.telemetry));
    Ok(())
}

/// Parses `--kind a,b,c` into a per-kind mask; `None` means no filtering.
fn parse_kind_mask(args: &[String]) -> Result<[bool; TraceKind::COUNT], String> {
    match opt_value(args, "--kind")? {
        None => Ok([true; TraceKind::COUNT]),
        Some(list) => {
            let mut mask = [false; TraceKind::COUNT];
            for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let idx = TraceKind::index_of_name(name).ok_or_else(|| {
                    format!(
                        "unknown trace kind {name:?}; known kinds: {}",
                        TraceKind::names().join(", ")
                    )
                })?;
                mask[idx] = true;
            }
            if mask.iter().all(|m| !m) {
                return Err("--kind selected no event kinds".into());
            }
            Ok(mask)
        }
    }
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let seed = opt_parse(args, "--seed", 1988u64)?;
    let days = opt_parse(args, "--days", 2u64)?;
    let last = opt_parse(args, "--last", 20usize)?;
    if last == 0 {
        return Err("--last must be at least 1".into());
    }
    let mask = parse_kind_mask(args)?;
    let filtered = has_flag(args, "--kind");
    let mut scenario = paper_month(seed);
    scenario.config.record_trace = false;
    let tail = SharedSink::new(KindFilterSink::new(RingSink::new(last), mask));
    let mut sinks: Vec<Box<dyn TraceSink + Send>> = vec![Box::new(tail.clone())];
    let jsonl = match opt_value(args, "--jsonl")? {
        Some(path) => {
            let file =
                std::fs::File::create(&path).map_err(|e| format!("creating {path}: {e}"))?;
            let sink = SharedSink::new(KindFilterSink::new(
                JsonlSink::new(std::io::BufWriter::new(file)),
                mask,
            ));
            sinks.push(Box::new(sink.clone()));
            Some((path, sink))
        }
        None => None,
    };
    let out = sinks.into_iter().fold(Run::new(scenario.config).specs(scenario.jobs).horizon(SimDuration::from_days(days)), Run::sink).execute();
    tail.with(|f| {
        if filtered {
            println!(
                "{} events over {days} days ({} matched --kind, {} filtered out); \
                 showing the last {}:",
                f.passed() + f.dropped(),
                f.passed(),
                f.dropped(),
                f.inner().len()
            );
        } else {
            println!(
                "{} events over {days} days; showing the last {}:",
                f.passed(),
                f.inner().len()
            );
        }
        for ev in f.inner().events() {
            println!("{}", ev.to_jsonl());
        }
    });
    if let Some((path, sink)) = jsonl {
        sink.with(|s| match s.inner().error() {
            Some(e) => Err(format!("writing {path}: {e}")),
            None => {
                println!("wrote {} events to {path}", s.inner().written());
                Ok(())
            }
        })?;
    }
    debug_assert_eq!(
        out.telemetry.events_total,
        tail.with(|f| f.passed() + f.dropped())
    );
    Ok(())
}

fn cmd_export_trace(args: &[String]) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".csv"))
        .ok_or("export-trace needs a FILE.csv argument")?;
    let seed = opt_parse(args, "--seed", 1988u64)?;
    let scenario = paper_month(seed);
    let csv = to_csv(&scenario.jobs);
    std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote {} jobs to {path}", scenario.jobs.len());
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".csv"))
        .ok_or("simulate needs a FILE.csv argument")?;
    let seed = opt_parse(args, "--seed", 1988u64)?;
    let stations = opt_parse(args, "--stations", 23usize)?;
    let days = opt_parse(args, "--days", 30u64)?;
    let csv = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let jobs = from_csv(&csv).map_err(|e| format!("parsing {path}: {e}"))?;
    let max_home = jobs.iter().map(|j| j.home.as_usize()).max().unwrap_or(0);
    if max_home >= stations {
        return Err(format!(
            "trace homes jobs at station {max_home}, but only {stations} stations configured"
        ));
    }
    let config = ClusterConfig {
        stations,
        seed,
        ..ClusterConfig::default()
    };
    let out = Run::new(config).specs(jobs).horizon(SimDuration::from_days(days)).execute();
    print_summary(&out);
    Ok(())
}

fn cmd_live(args: &[String]) -> Result<(), String> {
    use condor::runtime::owners::OwnerSimulator;
    use condor::runtime::program::{MonteCarloPi, PrimeCounter};
    use condor::runtime::runtime::{Runtime, RuntimeConfig};

    let workers = opt_parse(args, "--workers", 4usize)?;
    let mut rt = Runtime::new(RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    });
    println!("live pool: {workers} workers, owners driven by the paper's activity model");
    let j1 = rt.submit(0, &PrimeCounter::new(200_000));
    let j2 = rt.submit(1 % workers, &MonteCarloPi::new(7, 60_000_000));
    let owners = OwnerSimulator::start(
        rt.owner_flags(),
        condor::model::owner::OwnerConfig::default(),
        Duration::from_millis(10),
        42,
    );
    let report = rt.run(Duration::from_secs(120));
    let transitions = owners.stop();
    println!("owner transitions  : {transitions}");
    println!("interruptions      : {}", report.interruptions);
    println!("in-place resumes   : {}", report.resumes_in_place);
    println!("eviction migrations: {}", report.migrations);
    if report.unfinished.is_empty() {
        let primes = u64::from_le_bytes(report.results[&j1].clone().try_into().unwrap());
        let pi = &report.results[&j2];
        let inside = u64::from_le_bytes(pi[..8].try_into().unwrap());
        let total = u64::from_le_bytes(pi[8..].try_into().unwrap());
        println!("primes below 200000: {primes}");
        println!("π estimate         : {:.5}", 4.0 * inside as f64 / total as f64);
    } else {
        println!("unfinished (deadline): {:?}", report.unfinished);
    }
    rt.shutdown();
    Ok(())
}
