//! # condor — a hunter of idle workstations
//!
//! A comprehensive Rust reproduction of *Condor — A Hunter of Idle
//! Workstations* (Litzkow, Livny & Mutka, ICDCS 1988): the cycle-scavenging
//! scheduler that ran long background jobs on idle machines, checkpointed
//! them off when owners returned, and divided spare capacity fairly with
//! the Up-Down algorithm.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | condor-sim | deterministic discrete-event kernel, RNG, distributions, series |
//! | [`ckpt`] | condor-ckpt | checkpoint image format, CRC-framed codec, capacity-checked store |
//! | [`net`] | condor-net | shared-medium LAN model (latency + serialised bulk transfers) |
//! | [`model`] | condor-model | owner-activity processes, diurnal profiles, the paper's cost model |
//! | [`core`] | condor-core | coordinator, local schedulers, Up-Down + baselines, full cluster sim |
//! | [`workload`] | condor-workload | Table 1-calibrated users, scenarios, trace CSV |
//! | [`metrics`] | condor-metrics | wait ratio / leverage / utilization estimators, ASCII reports |
//! | [`runtime`] | condor-runtime | live threaded mini-Condor with real checkpointable programs |
//!
//! ## Quick start
//!
//! ```
//! use condor::prelude::*;
//!
//! // The paper's month: 23 stations, 5 users, 918 jobs.
//! let scenario = condor::workload::scenarios::paper_month(1988);
//! // (Run a shorter horizon here to keep the doctest fast.)
//! let out = Run::new(scenario.config)
//!     .specs(scenario.jobs)
//!     .horizon(SimDuration::from_days(2))
//!     .execute();
//! assert!(out.totals.placements > 0);
//! ```

#![warn(missing_docs)]

pub use condor_ckpt as ckpt;
pub use condor_core as core;
pub use condor_metrics as metrics;
pub use condor_model as model;
pub use condor_net as net;
pub use condor_runtime as runtime;
pub use condor_sim as sim;
pub use condor_workload as workload;

/// The items most programs need.
pub mod prelude {
    pub use condor_core::cluster::{Cluster, Run, RunOutput};
    #[allow(deprecated)]
    pub use condor_core::cluster::{run_cluster, run_cluster_with_sinks, run_cluster_with_threads};
    pub use condor_core::config::{
        ClusterConfig, ClusterConfigBuilder, ConfigError, EvictionStrategy, FailureConfig,
        PolicyKind, PoolTopology,
    };
    pub use condor_core::redundancy::{CkptTiming, RedundancyConfig};
    pub use condor_core::shard::default_threads;
    pub use condor_core::audit::{AuditSink, AuditViolation, AuditViolationKind};
    pub use condor_core::chaos::{
        explore, shrink_schedule, verify_conservation, verify_schedule, ChaosConfig, ChaosGen,
        ChaosSchedule,
    };
    pub use condor_core::job::{Job, JobId, JobSpec, JobState, SpeedupCurve, UserId};
    pub use condor_core::spans::{Breakdown, SpanLog, SpanPhase, SpanSink};
    pub use condor_core::telemetry::{
        FanoutSink, GaugeSample, KindFilterSink, RingSink, SharedSink, StatsSink, Telemetry,
        TraceSink, VecSink,
    };
    pub use condor_core::trace::{Trace, TraceEvent, TraceKind};
    pub use condor_core::updown::{UpDown, UpDownConfig};
    pub use condor_metrics::export::{spans_to_chrome_trace, JsonlSink};
    pub use condor_metrics::report::{render_spans, render_telemetry};
    pub use condor_net::{NodeId, PoolLinks};
    pub use condor_sim::time::{SimDuration, SimTime};
    pub use condor_workload::scenarios::{fairness_duel, one_week, paper_month};
}
