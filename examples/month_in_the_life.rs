//! A month in the life of the department: the paper's full evaluation
//! workload — 23 workstations, five users (one heavy, four light), 918
//! jobs, ≈ 4800 CPU-hours of demand — reproduced end to end.
//!
//! Run with: `cargo run --release --example month_in_the_life`

use condor::metrics::summary::{heavy_users, mean_wait_ratio, summarize};
use condor::metrics::table::{num, Align, Table};
use condor::workload::scenarios::paper_month;
use condor::workload::trace::table1_rows;
use condor::prelude::*;

fn main() {
    let scenario = paper_month(1988);
    println!(
        "simulating '{}': {} stations, {} jobs, {} horizon…",
        scenario.name,
        scenario.config.stations,
        scenario.jobs.len(),
        scenario.horizon
    );
    let rows = table1_rows(&scenario.jobs);
    let started = std::time::Instant::now();
    let out = Run::new(scenario.config).specs(scenario.jobs).horizon(scenario.horizon).execute();
    println!("…done in {:.0?} of real time\n", started.elapsed());

    // Who asked for what (Table 1).
    let mut t = Table::new(
        vec!["User", "Jobs", "Mean demand (h)", "Share of demand"],
        vec![Align::Left, Align::Right, Align::Right, Align::Right],
    );
    for r in &rows {
        t.row(vec![
            r.user.to_string(),
            r.jobs.to_string(),
            num(r.mean_demand_hours, 1),
            format!("{:.1}%", r.pct_demand),
        ]);
    }
    println!("{}", t.render());

    // What the system delivered (§3).
    let s = summarize(&out);
    println!("jobs completed            : {}/{}", s.jobs_completed, s.jobs_submitted);
    println!("station-hours available   : {:.0} (paper: 12438)", s.available_hours);
    println!(
        "CPU-hours scavenged       : {:.0} = {:.0} CPU-days (paper: ~200)",
        s.consumed_hours,
        s.consumed_hours / 24.0
    );
    println!(
        "local / system utilization: {:.0}% / {:.0}% (paper: 25% local)",
        s.local_utilization * 100.0,
        s.system_utilization * 100.0
    );
    println!("mean leverage             : {:.0} (paper: ~1300)", s.mean_leverage);

    // Fairness: the heavy user cannot monopolise.
    let heavy = heavy_users(&out.jobs, 0.5);
    let light_wait = mean_wait_ratio(&out.jobs, |j| !heavy.contains(&j.spec.user)).unwrap();
    let heavy_wait = mean_wait_ratio(&out.jobs, |j| heavy.contains(&j.spec.user)).unwrap();
    println!(
        "wait ratios               : heavy {heavy_wait:.2} vs light {light_wait:.2} — the Up-Down shield"
    );
}
