//! Fair shares: watch the Up-Down index at work.
//!
//! One user floods the cluster; another submits a tiny batch late. With
//! Up-Down the light user is served at once (preempting the heavy user if
//! needed); with FIFO the light user waits at the back of the line.
//!
//! Run with: `cargo run --release --example fair_shares`

use condor::metrics::summary::mean_wait_ratio;
use condor::prelude::*;

fn duel(policy: PolicyKind) -> (String, f64, f64, u64) {
    let config = ClusterConfig {
        stations: 6,
        seed: 11,
        policy,
        ..ClusterConfig::default()
    };
    let mut jobs = Vec::new();
    // Heavy user: 40 eight-hour jobs at t = 0 from station 0.
    for i in 0..40u64 {
        jobs.push(JobSpec {
            id: JobId(i),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::ZERO,
            demand: SimDuration::from_hours(8),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        });
    }
    // Light user: three 1-hour jobs on day 2, when the heavy user has
    // soaked up every machine.
    for i in 40..43u64 {
        jobs.push(JobSpec {
            id: JobId(i),
            user: UserId(1),
            home: NodeId::new(1),
            arrival: SimTime::from_hours(48),
            demand: SimDuration::HOUR,
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        });
    }
    let out = Run::new(config).specs(jobs).horizon(SimDuration::from_days(8)).execute();
    let light = mean_wait_ratio(&out.jobs, |j| j.spec.user == UserId(1)).unwrap_or(f64::NAN);
    let heavy = mean_wait_ratio(&out.jobs, |j| j.spec.user == UserId(0)).unwrap_or(f64::NAN);
    (out.policy_name, light, heavy, out.totals.preemptions_priority)
}

fn main() {
    println!("a heavy user floods 6 machines; a light user asks for 3 CPU-hours on day 2\n");
    println!(
        "{:<14} {:>18} {:>18} {:>12}",
        "policy", "light wait ratio", "heavy wait ratio", "preemptions"
    );
    for policy in [
        PolicyKind::UpDown(UpDownConfig::default()),
        PolicyKind::Fifo,
        PolicyKind::RoundRobin,
        PolicyKind::Random,
    ] {
        let (name, light, heavy, preempts) = duel(policy);
        println!("{name:<14} {light:>18.2} {heavy:>18.2} {preempts:>12}");
    }
    println!(
        "\nUp-Down: the light user's batch preempts the heavy user and runs immediately —"
    );
    println!("'light users obtained remote resources regardless of the heavy user' (paper §3)");
}
