//! Parallel programs: gangs and pipelines (paper §5(2)).
//!
//! A research workflow: a preprocessing job, then a width-4 gang (a
//! parallel simulation whose processes communicate), then a report job —
//! expressed as a dependency DAG with a gang in the middle, scheduled by
//! Condor across owner interruptions.
//!
//! Run with: `cargo run --release --example parallel_programs`

use condor::core::trace::TraceKind;
use condor::prelude::*;

fn main() {
    let config = ClusterConfig {
        stations: 8,
        seed: 21,
        ..ClusterConfig::default()
    };

    // prep → [gang of 4, 6 h] → report
    let jobs = vec![
        JobSpec {
            id: JobId(0),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::from_hours(1),
            demand: SimDuration::from_hours(1),
            image_bytes: 400_000,
            syscalls_per_cpu_sec: 2.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        },
        JobSpec {
            id: JobId(1),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::from_hours(1),
            demand: SimDuration::from_hours(6),
            image_bytes: 800_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: vec![JobId(0)],
            width: 4, // four communicating processes, four machines at once
            resources: Default::default(),
            speedup: Default::default(),
        },
        JobSpec {
            id: JobId(2),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::from_hours(1),
            demand: SimDuration::from_hours(1),
            image_bytes: 300_000,
            syscalls_per_cpu_sec: 4.0,
            binaries: Default::default(),
            depends_on: vec![JobId(1)],
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        },
    ];

    let out = Run::new(config).specs(jobs).horizon(SimDuration::from_days(4)).execute();

    println!("a three-stage workflow with a width-4 gang in the middle:\n");
    for ev in out.trace.events() {
        let line = match ev.kind {
            TraceKind::JobStarted { job, on } => Some(format!("{job} started (lead {on})")),
            TraceKind::JobSuspended { job, on } => {
                Some(format!("{job} suspended — owner back at {on}"))
            }
            TraceKind::JobResumedInPlace { job, .. } => Some(format!("{job} resumed in place")),
            TraceKind::CheckpointCompleted { job, from, .. } => {
                Some(format!("{job} member image left {from}"))
            }
            TraceKind::JobCompleted { job, .. } => Some(format!("{job} COMPLETED")),
            _ => None,
        };
        if let Some(line) = line {
            println!("  [{}] {line}", ev.at);
        }
    }
    println!();
    let names = ["prep", "parallel simulation (width 4)", "report"];
    for (j, name) in out.jobs.iter().zip(names) {
        println!(
            "{name}: work {} · capacity consumed {} · moves {} · state {:?}",
            j.work_done, j.remote_cpu, j.checkpoints, j.state
        );
    }
    assert!(out.jobs.iter().all(|j| j.state == JobState::Completed));
    let gang = &out.jobs[1];
    assert_eq!(gang.remote_cpu, gang.work_done * 4, "width-4 consumption");
    // Ordering: prep before gang before report.
    let done: Vec<_> = out.jobs.iter().map(|j| j.completed_at.unwrap()).collect();
    assert!(done[0] < done[1] && done[1] < done[2]);
    println!("\nthe gang needed 4 simultaneous machines, paused whenever any of its four");
    println!("owners returned, and checkpointed all members as one coordinated cut (§2.3).");
}
