//! Live cluster: the real-thread mini-Condor.
//!
//! Worker threads play workstations; real computations (prime counting,
//! Monte-Carlo π) run in metered slices; "owners" sit down at random and
//! the jobs are suspended, checkpointed, and migrated — finishing with
//! exactly the results an uninterrupted run would produce.
//!
//! Run with: `cargo run --release --example live_cluster`

use std::time::Duration;

use condor::runtime::program::{run_to_completion, MonteCarloPi, PrimeCounter};
use condor::runtime::runtime::{Runtime, RuntimeConfig};

fn main() {
    let config = RuntimeConfig {
        workers: 4,
        slice_units: 2_000,
        poll_interval: Duration::from_millis(20), // "2 minutes", scaled
        grace: Duration::from_millis(50),         // "5 minutes", scaled
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(config);

    // Reference results, computed straight.
    let primes_expected = run_to_completion(&mut PrimeCounter::new(400_000));
    let pi_prog = MonteCarloPi::new(2_026, 120_000_000);
    let pi_expected = {
        let mut p = pi_prog.clone();
        run_to_completion(&mut p)
    };

    println!("submitting two real computations to a 4-worker pool…");
    let j_primes = rt.submit(0, &PrimeCounter::new(400_000));
    let j_pi = rt.submit(1, &pi_prog);

    // Owners wander in and out while the jobs run: one owner is at their
    // machine at any moment, rotating across the pool, so whichever
    // station hosts a job is regularly reclaimed. Each sitting (80 ms)
    // outlasts the scaled grace period (50 ms), so some reclaims turn
    // into eviction checkpoints and migrations, not just pauses.
    let mut report = None;
    for round in 0..1_000usize {
        let victim = round % 4;
        for w in 0..4 {
            rt.set_owner_active(w, w == victim);
        }
        let r = rt.run(Duration::from_millis(80));
        if r.unfinished.is_empty() {
            report = Some(r);
            break;
        }
    }
    for w in 0..4 {
        rt.set_owner_active(w, false);
    }
    let report = report.unwrap_or_else(|| rt.run(Duration::from_secs(120)));

    println!("\npolls run          : {}", report.polls);
    println!("owner interruptions: {}", report.interruptions);
    println!("in-place resumes   : {}", report.resumes_in_place);
    println!("eviction migrations: {}", report.migrations);
    assert!(report.unfinished.is_empty(), "jobs must complete: {report:?}");

    let primes = u64::from_le_bytes(report.results[&j_primes].clone().try_into().unwrap());
    println!("\nprimes below 400000: {primes}");
    assert_eq!(report.results[&j_primes], primes_expected, "prime result corrupted");

    let pi_bytes = &report.results[&j_pi];
    let inside = u64::from_le_bytes(pi_bytes[..8].try_into().unwrap());
    let total = u64::from_le_bytes(pi_bytes[8..].try_into().unwrap());
    println!("π estimate         : {:.5} from {total} samples", 4.0 * inside as f64 / total as f64);
    assert_eq!(pi_bytes, &pi_expected, "π result corrupted by migration");

    println!("\nboth results are bit-identical to uninterrupted runs —");
    println!("checkpointed migration lost no work and changed no answers (paper §2.3).");
    let units = rt.shutdown();
    println!("total work units executed across workers: {units}");
}
