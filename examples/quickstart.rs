//! Quickstart: build a small cluster, submit a batch of background jobs,
//! and watch Condor hunt for idle workstations.
//!
//! Run with: `cargo run --release --example quickstart`

use condor::metrics::summary::summarize;
use condor::prelude::*;

fn main() {
    // Eight workstations with typical owners (diurnal activity, the
    // paper's cost model: 2-minute coordinator polls, 30-second owner
    // checks, 5-minute eviction grace, 5 s/MB image moves). The builder
    // validates the configuration up front instead of panicking later.
    let config = ClusterConfig::builder()
        .stations(8)
        .seed(7)
        .build()
        .expect("quickstart config is valid");

    // Two users submit batches of CPU-hungry simulations from their own
    // workstations.
    let mut jobs = Vec::new();
    for i in 0..6u64 {
        jobs.push(JobSpec {
            id: JobId(i),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::from_hours(1),
            demand: SimDuration::from_hours(4),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        });
    }
    for i in 6..9u64 {
        jobs.push(JobSpec {
            id: JobId(i),
            user: UserId(1),
            home: NodeId::new(1),
            arrival: SimTime::from_hours(9),
            demand: SimDuration::from_hours(1),
            image_bytes: 300_000,
            syscalls_per_cpu_sec: 5.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        });
    }

    // Two simulated days.
    let out = Run::new(config).specs(jobs).horizon(SimDuration::from_days(2)).execute();

    println!("policy           : {}", out.policy_name);
    println!("jobs completed   : {}/9", out.completed_jobs().count());
    println!("placements       : {}", out.totals.placements);
    println!("migrations       : {}", out.totals.migrations);
    println!(
        "owner preemptions: {} ({} resumed in place)",
        out.totals.preemptions_owner, out.totals.resumes_in_place
    );
    println!();
    for j in &out.jobs {
        println!(
            "{}: user {} demand {} → state {:?}, moves {}, wait ratio {:.2}, leverage {:.0}",
            j.spec.id,
            j.spec.user,
            j.spec.demand,
            j.state,
            j.checkpoints,
            j.wait_ratio().unwrap_or(f64::NAN),
            j.leverage().unwrap_or(f64::NAN),
        );
    }
    println!();
    let s = summarize(&out);
    println!(
        "fleet: {:.0}% available, local utilization {:.0}%, system utilization {:.0}%",
        s.availability * 100.0,
        s.local_utilization * 100.0,
        s.system_utilization * 100.0
    );
    println!(
        "remote CPU delivered: {:.1} h for {:.1} s of local support (mean leverage {:.0})",
        s.consumed_hours,
        out.jobs.iter().map(|j| j.support_seconds()).sum::<f64>(),
        s.mean_leverage
    );
    // Every run also carries a streaming telemetry summary — even with
    // `record_trace: false` — rendered here as counters and digests.
    println!();
    println!("{}", render_telemetry(&out.telemetry));
}
