//! Crash recovery: the §1 guarantee in action.
//!
//! Stations crash mid-job (including the coordinator's host), yet every
//! job completes — restarted from its last checkpoint, redoing only the
//! work since it.
//!
//! Run with: `cargo run --release --example crash_recovery`

use condor::core::config::FailureConfig;
use condor::core::trace::TraceKind;
use condor::prelude::*;

fn main() {
    let config = ClusterConfig {
        stations: 8,
        seed: 13,
        // Brutal environment: each station fails about once a day and
        // takes two hours to repair.
        failures: Some(FailureConfig {
            mtbf: SimDuration::from_days(1),
            mttr: SimDuration::from_hours(2),
        }),
        ..ClusterConfig::default()
    };
    let jobs: Vec<JobSpec> = (0..10)
        .map(|i| JobSpec {
            id: JobId(i),
            user: UserId((i % 2) as u32),
            home: NodeId::new((i % 3) as u32),
            arrival: SimTime::from_hours(i),
            demand: SimDuration::from_hours(6),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        })
        .collect();

    let out = Run::new(config).specs(jobs).horizon(SimDuration::from_days(14)).execute();

    println!("two weeks on 8 crash-prone stations (MTBF 1 day, MTTR 2 h):\n");
    println!("station crashes    : {}", out.totals.station_failures);
    println!("crash rollbacks    : {}", out.totals.crash_rollbacks);
    let redone: f64 = out.jobs.iter().map(|j| j.work_lost.as_hours_f64()).sum();
    println!("work redone        : {redone:.1} h (only since the last checkpoint)");
    println!(
        "jobs completed     : {}/10",
        out.completed_jobs().count()
    );
    // Show one job's odyssey.
    if let Some(victim) = out
        .jobs
        .iter()
        .filter(|j| j.work_lost > SimDuration::ZERO)
        .max_by_key(|j| j.work_lost)
    {
        println!(
            "\nhardest-hit job {}: demand {}, {} placements, {} moves, {} lost and redone",
            victim.spec.id,
            victim.spec.demand,
            victim.placements,
            victim.checkpoints,
            victim.work_lost,
        );
        println!("its life:");
        for ev in out.trace.events() {
            let line = match ev.kind {
                TraceKind::PlacementStarted { job, target } if job == victim.spec.id => {
                    Some(format!("placed toward {target}"))
                }
                TraceKind::JobStarted { job, on } if job == victim.spec.id => {
                    Some(format!("running on {on}"))
                }
                TraceKind::CrashRollback { job, on } if job == victim.spec.id => {
                    Some(format!("!! {on} crashed — rolled back to last checkpoint"))
                }
                TraceKind::CheckpointCompleted { job, from, .. } if job == victim.spec.id => {
                    Some(format!("checkpointed off {from}"))
                }
                TraceKind::JobCompleted { job, on } if job == victim.spec.id => {
                    Some(format!("completed on {on}"))
                }
                _ => None,
            };
            if let Some(line) = line {
                println!("  [{}] {line}", ev.at);
            }
        }
    }
    assert_eq!(out.completed_jobs().count(), 10, "the guarantee must hold");
    println!("\nevery job completed despite the carnage — checkpointing is the guarantee.");
}
