//! Checkpoint tour: the RU checkpoint format end to end.
//!
//! Builds a checkpoint image the way the 1988 facility did — text, data,
//! bss, and stack segments, registers, and the open-file table — stores it
//! on a capacity-limited "disk", corrupts a copy to show the CRC catching
//! it, and demonstrates the §2.3 quiescence rule.
//!
//! Run with: `cargo run --release --example checkpoint_tour`

use condor::ckpt::image::{BuildError, CheckpointBuilder, CheckpointImage, FileMode, SegmentKind};
use condor::ckpt::store::CheckpointStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A job's state, as paper §2.3 enumerates it.
    let image = CheckpointBuilder::new(17, 1)
        .segment(SegmentKind::Text, 0x0000, vec![0x90u8; 120_000]) // code
        .segment(SegmentKind::Data, 0x4_0000, vec![0xAB; 300_000]) // initialised vars
        .segment(SegmentKind::Bss, 0x9_0000, vec![0x00; 60_000])   // uninitialised
        .segment(SegmentKind::Stack, 0xF_0000, vec![0xCD; 20_000])
        .registers(0x4242, 0xF_F000, (0..16).map(|r| r * 1_000).collect())
        .open_file(0, "/dev/tty", FileMode::Read, 0)
        .open_file(3, "/u/mike/sim-results.dat", FileMode::Append, 88_320)
        .build()?;
    println!(
        "checkpoint for job {}: {} segments, {} open files, {:.2} MB encoded",
        image.job_id(),
        image.segments().len(),
        image.open_files().len(),
        image.size_bytes() as f64 / 1e6
    );
    println!(
        "at the paper's 5 s/MB that move costs {:.1} s of local CPU",
        5.0 * image.size_bytes() as f64 / 1e6
    );

    // 2. The quiescence rule: no checkpoint while shadow replies are in
    //    flight.
    let blocked = CheckpointBuilder::new(17, 2).outstanding_replies(3).build();
    match blocked {
        Err(BuildError::RepliesOutstanding { count }) => {
            println!("\ncheckpoint deferred: {count} shadow replies outstanding (paper §2.3)");
        }
        Ok(_) => unreachable!("the builder must defer"),
    }

    // 3. Store it on the home machine's disk and restore it.
    let mut disk = CheckpointStore::new(2_000_000);
    disk.put(&image)?;
    println!(
        "\nhome disk: {:.2} / {:.2} MB used, {} image(s)",
        disk.used() as f64 / 1e6,
        disk.capacity() as f64 / 1e6,
        disk.len()
    );
    let restored = disk.get(17)?;
    assert_eq!(restored, image);
    println!("restored image is identical — ready to resume on any machine");

    // 4. A newer checkpoint replaces the old one without double-charging
    //    the disk.
    let newer = CheckpointBuilder::new(17, 2)
        .segment(SegmentKind::Data, 0x4_0000, vec![0xEE; 300_000])
        .build()?;
    disk.put(&newer)?;
    println!(
        "after sequence-2 checkpoint: {:.2} MB used, stored sequence {}",
        disk.used() as f64 / 1e6,
        disk.sequence_of(17).unwrap()
    );

    // 5. Corruption never restores: flip one bit and decode.
    let mut bytes = image.encode().to_vec();
    bytes[200_000] ^= 0x01;
    match CheckpointImage::decode(bytes.into()) {
        Err(e) => println!("\ncorrupted frame rejected: {e}"),
        Ok(_) => unreachable!("CRC must catch a bit flip"),
    }
    Ok(())
}
