//! Test configuration and the deterministic RNG behind every strategy.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 32 cases, overridable via the `PROPTEST_CASES` environment variable.
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// The generator driving strategy sampling.
///
/// Seeded purely from the test's module path and name, so a test either
/// always passes or always fails for a given build — there is no run-to-run
/// flakiness and no need for a regression file.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl TestRng {
    /// A generator whose stream is a pure function of `label`.
    pub fn deterministic(label: &str) -> TestRng {
        TestRng::from_seed(fnv1a(label.as_bytes()))
    }

    /// A generator seeded from an explicit 64-bit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// The next raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Unbiased uniform draw in `[0, span)`.
    ///
    /// # Panics
    ///
    /// Panics when `span` is zero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample an empty domain");
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
