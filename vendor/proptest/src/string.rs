//! Regex-literal string strategies.
//!
//! Upstream proptest treats `&str` as a regex describing generated
//! strings. This stub supports the subset the workspace uses: one
//! character class followed by an optional `{m,n}` repetition, e.g.
//! `"[a-z]{1,12}"`, `"[a-zA-Z0-9/_.]{0,40}"`, or `"[\PC]{0,20}"` (where
//! `\PC` — "not a control/other character" — is approximated by printable
//! ASCII). Unsupported patterns panic with a clear message so new tests
//! fail loudly rather than sampling the wrong distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug)]
struct Parsed {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn unsupported(pattern: &str) -> ! {
    panic!(
        "proptest stub: unsupported regex strategy {pattern:?}; only \
         `[class]{{m,n}}` patterns are implemented"
    );
}

fn parse(pattern: &str) -> Parsed {
    let mut it = pattern.chars().peekable();
    if it.next() != Some('[') {
        unsupported(pattern);
    }
    let mut chars: Vec<char> = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = it.next().unwrap_or_else(|| unsupported(pattern));
        match c {
            ']' => break,
            '\\' => {
                match it.next() {
                    // \PC: everything outside the Unicode "Other" category;
                    // approximated by printable ASCII, a safe subset.
                    Some('P') if it.peek() == Some(&'C') => {
                        it.next();
                        chars.extend((0x20u8..0x7f).map(char::from));
                        prev = None;
                    }
                    Some(esc @ ('\\' | '.' | '/' | '-' | ']' | '[')) => {
                        chars.push(esc);
                        prev = Some(esc);
                    }
                    _ => unsupported(pattern),
                }
            }
            '-' if prev.is_some() && it.peek().is_some() && it.peek() != Some(&']') => {
                let lo = prev.take().unwrap();
                let hi = it.next().unwrap();
                if (lo as u32) > (hi as u32) {
                    unsupported(pattern);
                }
                // `lo` is already in `chars`; add the rest of the range.
                for cp in (lo as u32 + 1)..=(hi as u32) {
                    chars.extend(char::from_u32(cp));
                }
            }
            other => {
                chars.push(other);
                prev = Some(other);
            }
        }
    }
    let (min, max) = match it.next() {
        None => (1, 1),
        Some('{') => {
            let rest: String = it.collect();
            let body = rest.strip_suffix('}').unwrap_or_else(|| unsupported(pattern));
            let (m, n) = match body.split_once(',') {
                Some((m, n)) => (m, n),
                None => (body, body),
            };
            (
                m.trim().parse().unwrap_or_else(|_| unsupported(pattern)),
                n.trim().parse().unwrap_or_else(|_| unsupported(pattern)),
            )
        }
        Some(_) => unsupported(pattern),
    };
    if chars.is_empty() || min > max {
        unsupported(pattern);
    }
    Parsed { chars, min, max }
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let parsed = parse(self);
        let len = parsed.min + rng.below((parsed.max - parsed.min + 1) as u64) as usize;
        (0..len)
            .map(|_| parsed.chars[rng.below(parsed.chars.len() as u64) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_and_literals() {
        let mut rng = TestRng::deterministic("string::class");
        for _ in 0..200 {
            let s = "[a-zA-Z0-9/_.]{0,40}".sample(&mut rng);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "/_.".contains(c)));
        }
    }

    #[test]
    fn printable_class() {
        let mut rng = TestRng::deterministic("string::printable");
        for _ in 0..200 {
            let s = "[\\PC]{0,20}".sample(&mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn bounded_lower_class() {
        let mut rng = TestRng::deterministic("string::lower");
        for _ in 0..200 {
            let s = "[a-z]{1,12}".sample(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
