//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The combinator behind [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy defined by a sampling closure (used by `prop_compose!`).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<F> std::fmt::Debug for FnStrategy<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnStrategy")
    }
}

/// A uniform choice between several strategies of one value type (the
/// combinator behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].sample(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

// --- range strategies ------------------------------------------------------

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

// --- tuple strategies ------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// Regex-literal string strategies live in crate::string; the impl is on
// `&'static str` there.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::deterministic("strategy::compose");
        let strat = (0u32..10, -5i64..5, 0.0f64..1.0).prop_map(|(a, b, c)| (a, b, c));
        for _ in 0..1_000 {
            let (a, b, c) = strat.sample(&mut rng);
            assert!(a < 10);
            assert!((-5..5).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::deterministic("strategy::union");
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
