//! Sampling helpers.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A size-independent index: generated once, projectable onto any
/// collection length via [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects the index onto a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}
