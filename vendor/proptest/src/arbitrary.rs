//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws one value uniformly from the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
