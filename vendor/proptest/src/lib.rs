//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored stub
//! implements the API subset the workspace's property tests use:
//!
//! - the [`proptest!`], [`prop_compose!`], [`prop_oneof!`],
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assert_ne!`] macros;
//! - [`strategy::Strategy`] with `prop_map` and `boxed`;
//! - range, tuple, [`strategy::Just`], regex-string, collection, option,
//!   and [`sample::Index`] strategies;
//! - [`test_runner::ProptestConfig`] with `with_cases` and the
//!   `PROPTEST_CASES` environment override.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the standard assert
//!   message; inputs are reproducible because every test's RNG stream is a
//!   pure function of its module path and name.
//! - **Fixed case counts** (default 32, or `PROPTEST_CASES`), not
//!   adaptively forked.
//! - **Regex strategies** support the subset actually used here: a single
//!   character class (ranges, literals, or `\PC` for printable ASCII)
//!   followed by an optional `{m,n}` repetition.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror of upstream's `prelude::prop`, so tests can write
/// `prop::collection::vec(..)` etc.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// One-stop imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// item becomes a `#[test]` running `body` over sampled inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Defines a function returning a composite strategy built from named
/// sub-strategy draws.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
        ($($arg:pat in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, __rng);)+
                $body
            })
        }
    };
}

/// A strategy choosing uniformly between the listed strategies (all of the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
