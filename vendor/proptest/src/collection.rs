//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications accepted by [`vec()`].
pub trait SizeRange {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

/// A strategy for vectors with element strategy `S`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors of `element` values with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}
