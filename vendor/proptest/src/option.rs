//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Some` half the time.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 1 {
            Some(self.0.sample(rng))
        } else {
            None
        }
    }
}

/// `Option<T>` values over an inner strategy, 50% `Some`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}
