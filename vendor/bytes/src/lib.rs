//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (a cheaply cloneable, sliceable, reference-counted
//! byte buffer), [`BytesMut`] (a growable builder), and the [`Buf`] /
//! [`BufMut`] cursor traits — the subset this workspace uses. Semantics
//! match upstream for these operations; zero-copy `slice`/`split_to` are
//! preserved via a shared `Arc` and view offsets.

#![warn(missing_docs)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
///
/// Clones and slices share one allocation; [`Buf`] reads advance a view
/// cursor without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Bytes {
        Bytes::from(slice.to_vec())
    }

    /// A buffer over static data (copied here; upstream borrows it, but
    /// nothing observable depends on that).
    pub fn from_static(slice: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(slice)
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `n` bytes; `self` keeps the rest.
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds the current length.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let front = self.slice(0..n);
        self.start += n;
        front
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes the builder into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor-style reads from a byte source. Reads consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// `true` while at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics on an exhausted source (as upstream does).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 2 bytes remain.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Append-style writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_data() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut rest = b.clone();
        let front = rest.split_to(2);
        assert_eq!(&front[..], &[1, 2]);
        assert_eq!(&rest[..], &[3, 4, 5]);
        assert_eq!(b.len(), 5, "originals are untouched");
    }

    #[test]
    fn cursor_reads_consume() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16_le(0x0102);
        b.put_u32_le(0xAABBCCDD);
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 7);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u16_le(), 0x0102);
        assert_eq!(frozen.get_u32_le(), 0xAABBCCDD);
        assert!(!frozen.has_remaining());
    }
}
