//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset this workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple adaptive timing loop instead of criterion's statistics.
//!
//! Behaviour:
//! - `cargo bench` runs each benchmark for ~`CRITERION_STUB_MS`
//!   milliseconds (default 300) after one warm-up call and prints the mean
//!   iteration time plus throughput when configured.
//! - `cargo bench -- --test` (the CI smoke mode) runs each benchmark body
//!   exactly once and prints nothing but a pass line, so benches cannot
//!   bit-rot without burning CI time.
//! - A positional CLI argument filters benchmarks by substring, as with
//!   real criterion.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{param}") }
    }

    /// A parameter-only id.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId { id: param.to_string() }
    }
}

/// Units-of-work declaration used to derive throughput from timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// Per-iteration timing driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    test_mode: bool,
    /// Mean wall-clock per iteration from the measured phase.
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly and records the mean wall-clock time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up (and the only call in --test mode)
        if self.test_mode {
            self.mean = Duration::ZERO;
            self.iters = 1;
            return;
        }
        let budget = Duration::from_millis(
            std::env::var("CRITERION_STUB_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(300),
        );
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < budget {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.mean = started.elapsed() / self.iters as u32;
    }
}

/// Top-level harness state: CLI mode and filter.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags the real harness accepts; ignore values by treating
                // unknown `--flag=value` tokens as no-ops.
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes its sample by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.id, &mut |b| f(b, input));
        self
    }

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            ..Bencher::default()
        };
        f(&mut b);
        if self.criterion.test_mode {
            println!("{full}: ok (1 iteration, --test mode)");
            return;
        }
        let per_iter = b.mean;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!("  {:.1} MiB/s", n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{full}: {per_iter:>12.3?}/iter  ({} iters){rate}", b.iters);
    }

    /// Ends the group (upstream finalizes reports here; the stub prints
    /// per-benchmark lines eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
