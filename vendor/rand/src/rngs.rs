//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++.
///
/// Streams are a pure function of the 64-bit seed (expanded through
/// SplitMix64), so simulations stay reproducible byte-for-byte.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro is undefined on the all-zero state; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}
