//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! provides exactly the API subset the workspace consumes: `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen` and `Rng::gen_range`. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically strong enough for every simulation and test in
//! this repository. It is **not** the upstream implementation and its
//! streams differ from upstream `SmallRng`; all consumers in this workspace
//! only rely on determinism for a fixed seed, never on specific draws.

#![warn(missing_docs)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: raw 64-bit draws.
pub trait RngCore {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit draw (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the full domain of their type.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unbiased draw in `[0, span)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Reject draws from the final partial copy of the span so every
    // residue is equally likely.
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Ranges a generator can sample uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn unit_interval_mean() {
        let mut r = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
