//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module subset this workspace uses is provided,
//! implemented over `std::sync::mpsc`. The observable semantics match
//! upstream for unbounded channels: sends never block, receivers support
//! blocking, non-blocking, and timed receives, and senders are cloneable.

#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer channels (unbounded only).

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns immediately with a value or an emptiness/disconnect report.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// A blocking iterator over received values, ending when all
        /// senders are gone.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_clone() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop((tx, tx2));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
