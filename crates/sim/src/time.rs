//! Simulated time.
//!
//! The Condor simulation runs on a discrete clock with **millisecond**
//! resolution. The paper's control plane works at coarse granularity
//! (30-second owner checks, 2-minute coordinator polls) but cost accounting
//! needs sub-second precision: a remote system call costs 10 ms of local
//! capacity on a VAXstation II. Milliseconds in a `u64` comfortably cover
//! simulated centuries, so overflow is not a practical concern.
//!
//! Two newtypes keep instants and spans apart ([`SimTime`] and
//! [`SimDuration`]); mixing them up is a compile error rather than a silent
//! unit bug.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An instant on the simulated clock, in milliseconds since the start of the
/// simulation.
///
/// # Examples
///
/// ```
/// use condor_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_hours(2);
/// assert_eq!(t.as_millis(), 2 * 60 * 60 * 1000);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
///
/// # Examples
///
/// ```
/// use condor_sim::time::SimDuration;
///
/// let d = SimDuration::from_minutes(2);
/// assert_eq!(d.as_secs_f64(), 120.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far away"
    /// sentinel for deadlines that are not currently armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis)
    }

    /// Creates an instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Creates an instant `hours` hours after the origin.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000)
    }

    /// Milliseconds since the origin.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, rounded down.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Hours since the origin as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// The span between two instants, saturating to zero when `earlier` is
    /// actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The instant rounded down to a multiple of `step` (e.g. the start of
    /// the containing hour when `step` is one hour).
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn align_down(self, step: SimDuration) -> SimTime {
        assert!(step.0 > 0, "align_down: zero step");
        SimTime(self.0 - self.0 % step.0)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One millisecond.
    pub const MILLISECOND: SimDuration = SimDuration(1);
    /// One second.
    pub const SECOND: SimDuration = SimDuration(1_000);
    /// One minute.
    pub const MINUTE: SimDuration = SimDuration(60_000);
    /// One hour.
    pub const HOUR: SimDuration = SimDuration(3_600_000);
    /// One 24-hour day.
    pub const DAY: SimDuration = SimDuration(86_400_000);
    /// One 7-day week.
    pub const WEEK: SimDuration = SimDuration(604_800_000);

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000)
    }

    /// Creates a span of `mins` minutes.
    pub const fn from_minutes(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Creates a span of `days` 24-hour days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400_000)
    }

    /// Creates a span from a whole-or-fractional number of seconds, rounding
    /// to the nearest millisecond. Negative and non-finite inputs clamp to
    /// zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1_000.0).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a span from a fractional number of hours (clamping like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_hours_f64(hours: f64) -> Self {
        Self::from_secs_f64(hours * 3_600.0)
    }

    /// The span in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in whole seconds, rounded down.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in minutes as a float.
    pub fn as_minutes_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// The span in hours as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// `true` when the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Lesser of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Greater of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Subtraction that stops at zero instead of underflowing.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative float, rounding to the nearest
    /// millisecond (clamping negatives and non-finite factors to zero).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration(((self.0 as f64) * factor).round().min(u64::MAX as f64) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `rhs` spans fit in `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimTime {
    type Output = SimDuration;
    /// Offset of the instant within its containing `rhs`-sized window
    /// (e.g. `t % SimDuration::DAY` is the time of day).
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000;
        let ms = self.0 % 1_000;
        let days = total_secs / 86_400;
        let hours = (total_secs / 3_600) % 24;
        let mins = (total_secs / 60) % 60;
        let secs = total_secs % 60;
        if days > 0 {
            write!(f, "{days}d {hours:02}:{mins:02}:{secs:02}.{ms:03}")
        } else {
            write!(f, "{hours:02}:{mins:02}:{secs:02}.{ms:03}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ms", self.0)
        } else if self.0 < 60_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 < 3_600_000 {
            write!(f, "{:.2}min", self.as_minutes_f64())
        } else {
            write!(f, "{:.2}h", self.as_hours_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_hours(1), SimTime::from_secs(3_600));
        assert_eq!(SimDuration::from_minutes(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_days(7), SimDuration::WEEK);
        assert_eq!(SimDuration::from_hours(24), SimDuration::DAY);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(100);
        let d = SimDuration::from_secs(40);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(10));
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_hours_f64(0.5).as_minutes_f64(), 30.0);
        let d = SimDuration::from_hours(3);
        assert!((d.as_hours_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        let d = SimDuration::from_millis(1_000);
        assert_eq!(d.mul_f64(2.5).as_millis(), 2_500);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(d.mul_f64(0.0004).as_millis(), 0);
    }

    #[test]
    fn align_down_buckets_instants() {
        let t = SimTime::from_millis(3_700_123);
        assert_eq!(t.align_down(SimDuration::HOUR), SimTime::from_millis(3_600_000));
        assert_eq!(
            SimTime::from_secs(59).align_down(SimDuration::MINUTE),
            SimTime::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "zero step")]
    fn align_down_rejects_zero_step() {
        let _ = SimTime::from_secs(1).align_down(SimDuration::ZERO);
    }

    #[test]
    fn time_of_day_via_rem() {
        let t = SimTime::from_hours(25);
        assert_eq!(t % SimDuration::DAY, SimDuration::from_hours(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(0).to_string(), "00:00:00.000");
        assert_eq!(
            SimTime::from_hours(26).to_string(),
            "1d 02:00:00.000"
        );
        assert_eq!(SimDuration::from_millis(5).to_string(), "5ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimDuration::from_minutes(5).to_string(), "5.00min");
        assert_eq!(SimDuration::from_hours(5).to_string(), "5.00h");
    }

    #[test]
    fn duration_division_counts_whole_windows() {
        assert_eq!(SimDuration::DAY / SimDuration::HOUR, 24);
        assert_eq!(SimDuration::from_minutes(5) / SimDuration::from_minutes(2), 2);
        assert_eq!(SimDuration::HOUR / 4, SimDuration::from_minutes(15));
        assert_eq!(SimDuration::MINUTE * 60, SimDuration::HOUR);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_hours(1_000_000));
        assert_eq!(
            SimDuration::from_secs(9).max(SimDuration::from_secs(10)),
            SimDuration::from_secs(10)
        );
        assert_eq!(
            SimDuration::from_secs(9).min(SimDuration::from_secs(10)),
            SimDuration::from_secs(9)
        );
    }
}
