//! Deterministic future-event queue.
//!
//! The queue is a binary heap keyed by `(time, sequence)`. The sequence
//! number is assigned at insertion, so two events scheduled for the same
//! instant are delivered in the order they were scheduled. This makes
//! simulation runs fully deterministic for a given seed — there is no
//! dependence on heap internals or hash ordering.
//!
//! # Cancellation without hashing
//!
//! Sequence numbers are dense (0, 1, 2, …), so per-event bookkeeping lives
//! in a ring buffer of one-byte states indexed by `seq - base` rather than
//! in hash sets. `base` advances over the settled prefix as old events
//! retire, keeping the ring proportional to the number of *outstanding*
//! events. Schedule, cancel, and pop therefore touch no hasher at all and
//! allocate only when the heap or ring grows past its high-water mark.
//!
//! Cancellation is lazy — a cancelled event stays in the heap until it
//! surfaces — but the head of the heap is kept live eagerly (cancelled
//! entries are drained whenever they reach the top). That *head-live
//! invariant* is what lets [`EventQueue::peek_time`] take `&self` and run
//! in O(1).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Handle to a scheduled event, usable for cancellation.
///
/// Tokens are unique within one [`EventQueue`] for its whole lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventToken(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

/// Scheduled, in the heap, will be delivered unless cancelled.
const PENDING: u8 = 0;
/// Cancelled while still physically in the heap; dropped when it surfaces.
const CANCELLED: u8 = 1;
/// Delivered, or cancelled and already drained from the heap.
const SETTLED: u8 = 2;

/// A future-event list with deterministic FIFO tie-breaking and O(log n)
/// insert/pop.
///
/// Cancellation is *lazy*: [`EventQueue::cancel`] marks the event's state
/// slot and the entry is silently dropped when it reaches the head of the
/// heap. The head itself is always live, so [`EventQueue::peek_time`] is a
/// pure O(1) read.
///
/// # Examples
///
/// ```
/// use condor_sim::event::EventQueue;
/// use condor_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "sooner"));
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// Per-event state, indexed by `seq - base`. Slot `i` describes the
    /// event with sequence number `base + i`.
    state: VecDeque<u8>,
    /// Sequence number of `state[0]`; everything below is settled.
    base: u64,
    /// Count of PENDING slots (the queue's logical length).
    pending: usize,
    cancelled_total: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            state: VecDeque::new(),
            base: 0,
            pending: 0,
            cancelled_total: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`; returns a token that
    /// can later be passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.state.push_back(PENDING);
        self.pending += 1;
        self.heap.push(Scheduled { at, seq, event });
        EventToken(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the token was
    /// still pending (i.e. not yet fired or cancelled); cancelling a token
    /// that already fired or was already cancelled is a no-op returning
    /// `false`.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(slot) = self.slot_mut(token.0) else {
            return false;
        };
        if *slot != PENDING {
            return false;
        }
        *slot = CANCELLED;
        self.pending -= 1;
        self.cancelled_total += 1;
        self.clean_head();
        true
    }

    /// Removes and returns the earliest pending event. Returns `None` when
    /// the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // The head-live invariant means the top of the heap, if any, is
        // PENDING — no skip loop needed here.
        let s = self.heap.pop()?;
        debug_assert_eq!(self.state[(s.seq - self.base) as usize], PENDING);
        self.settle(s.seq);
        self.pending -= 1;
        self.clean_head();
        Some((s.at, s.event))
    }

    /// The timestamp of the next pending event, without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Head-live invariant: the heap top is never cancelled.
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total events ever cancelled on this queue.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Restores the head-live invariant: drains cancelled entries off the
    /// top of the heap and compacts the settled prefix of the state ring.
    fn clean_head(&mut self) {
        while let Some(top) = self.heap.peek() {
            let idx = (top.seq - self.base) as usize;
            if self.state[idx] != CANCELLED {
                break;
            }
            let s = self.heap.pop().expect("peeked entry vanished");
            self.settle(s.seq);
        }
        // Amortized O(1): each slot is pushed and popped exactly once over
        // the queue's lifetime.
        while self.state.front() == Some(&SETTLED) {
            self.state.pop_front();
            self.base += 1;
        }
    }

    fn settle(&mut self, seq: u64) {
        self.state[(seq - self.base) as usize] = SETTLED;
    }

    /// The state slot for `seq`, or `None` for settled-and-compacted or
    /// never-issued sequence numbers.
    fn slot_mut(&mut self, seq: u64) -> Option<&mut u8> {
        let idx = seq.checked_sub(self.base)?;
        self.state.get_mut(idx as usize)
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("scheduled_total", &self.scheduled_total())
            .field("cancelled_total", &self.cancelled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let mut q = EventQueue::new();
        let keep = q.schedule(SimTime::from_secs(1), "keep");
        let drop_ = q.schedule(SimTime::from_secs(2), "drop");
        assert!(q.cancel(drop_));
        assert!(!q.cancel(drop_), "double-cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "keep")));
        assert_eq!(q.pop(), None);
        // Token for an already-fired event: cancel is a no-op.
        assert!(!q.cancel(keep));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let first = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(5), 2);
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), 2)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        q.cancel(a);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn bogus_token_is_rejected() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventToken(42)));
    }

    #[test]
    fn state_ring_compacts_as_events_settle() {
        // A long schedule/pop churn must not grow the state ring without
        // bound: after draining, the settled prefix is fully reclaimed.
        let mut q = EventQueue::new();
        for round in 0u64..1_000 {
            let t = SimTime::from_secs(round);
            let keep = q.schedule(t, round);
            let drop_ = q.schedule(t, round + 1_000_000);
            q.cancel(drop_);
            assert_eq!(q.pop(), Some((t, round)));
            let _ = keep;
        }
        assert!(q.is_empty());
        assert_eq!(q.state.len(), 0, "settled prefix was not compacted");
        assert_eq!(q.base, 2_000);
        // Tokens from the compacted prefix are still politely rejected.
        assert!(!q.cancel(EventToken(0)));
        assert!(!q.cancel(EventToken(1_999)));
    }

    #[test]
    fn head_live_invariant_survives_cancel_storms() {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = (0..64)
            .map(|i| q.schedule(SimTime::from_secs(i), i))
            .collect();
        // Cancel every even event, including a long cancelled prefix.
        for t in tokens.iter().step_by(2) {
            q.cancel(*t);
        }
        // peek_time (a &self read) must agree with what pop delivers.
        let mut popped = Vec::new();
        while let Some(at) = q.peek_time() {
            let (t, e) = q.pop().expect("peek said non-empty");
            assert_eq!(t, at);
            popped.push(e);
        }
        assert_eq!(popped, (1..64).step_by(2).collect::<Vec<_>>());
        assert_eq!(q.len(), 0);
    }
}
