//! Deterministic future-event queue.
//!
//! The queue is a binary heap keyed by `(time, sequence)`. The sequence
//! number is assigned at insertion, so two events scheduled for the same
//! instant are delivered in the order they were scheduled. This makes
//! simulation runs fully deterministic for a given seed — there is no
//! dependence on heap internals or hash ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle to a scheduled event, usable for cancellation.
///
/// Tokens are unique within one [`EventQueue`] for its whole lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventToken(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

/// A future-event list with deterministic FIFO tie-breaking and O(log n)
/// insert/pop.
///
/// Cancellation is *lazy*: [`EventQueue::cancel`] marks the token and the
/// event is silently dropped when it reaches the head of the heap.
///
/// # Examples
///
/// ```
/// use condor_sim::event::EventQueue;
/// use condor_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "sooner"));
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// Seqs scheduled but not yet fired or cancelled.
    live: std::collections::HashSet<u64>,
    /// Seqs cancelled but still physically in the heap.
    cancelled: std::collections::HashSet<u64>,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`; returns a token that
    /// can later be passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.live.insert(seq);
        self.heap.push(Scheduled { at, seq, event });
        EventToken(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the token was
    /// still pending (i.e. not yet fired or cancelled); cancelling a token
    /// that already fired or was already cancelled is a no-op returning
    /// `false`.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if !self.live.remove(&token.0) {
            return false;
        }
        self.cancelled.insert(token.0);
        self.cancelled_total += 1;
        true
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// ones. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.seq) {
                continue;
            }
            self.live.remove(&s.seq);
            return Some((s.at, s.event));
        }
        None
    }

    /// The timestamp of the next non-cancelled event, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let seq = self.heap.peek()?.seq;
            if self.cancelled.contains(&seq) {
                let s = self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(&s.seq);
            } else {
                return Some(self.heap.peek()?.at);
            }
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events ever cancelled on this queue.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("scheduled_total", &self.scheduled_total)
            .field("cancelled_total", &self.cancelled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let mut q = EventQueue::new();
        let keep = q.schedule(SimTime::from_secs(1), "keep");
        let drop_ = q.schedule(SimTime::from_secs(2), "drop");
        assert!(q.cancel(drop_));
        assert!(!q.cancel(drop_), "double-cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "keep")));
        assert_eq!(q.pop(), None);
        // Token for an already-fired event: cancel is a no-op.
        assert!(!q.cancel(keep));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let first = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(5), 2);
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), 2)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        q.cancel(a);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn bogus_token_is_rejected() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventToken(42)));
    }
}
