//! Probability distributions for workload and availability modelling.
//!
//! The paper's evaluation rests on a few distributional facts: job service
//! demands have mean ≈ 5 h but median < 3 h (right-skewed, so
//! hyperexponential), workstation available intervals are a mixture of long
//! and short regimes, and light users arrive in small batches. This module
//! provides the corresponding samplers behind one object-safe trait so that
//! configurations can mix and match them.

use crate::rng::SimRng;

/// A sampleable, non-negative real-valued distribution.
///
/// Implementations must return finite values `>= 0`.
pub trait Sample: std::fmt::Debug {
    /// Draws one value using `rng`.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The analytic mean of the distribution, used by calibration code and
    /// sanity tests.
    fn mean(&self) -> f64;
}

/// A distribution that always returns the same value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates the point distribution at `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or non-finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite() && value >= 0.0, "invalid point mass {value}");
        Deterministic { value }
    }
}

impl Sample for Deterministic {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }
    fn mean(&self) -> f64 {
        self.value
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, negative, or non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo < hi,
            "invalid uniform range [{lo}, {hi})"
        );
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.uniform_range_f64(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Exponential distribution with a given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "invalid exponential mean {mean}");
        Exponential { mean }
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.exponential(self.mean)
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// A finite mixture of exponentials (hyperexponential).
///
/// This is the classic model for right-skewed workloads: most draws come
/// from a short-mean branch, a minority from a long-mean branch, yielding
/// mean well above median — exactly the shape of the paper's Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperexponential {
    branches: Vec<(f64, f64)>, // (probability, mean)
}

impl Hyperexponential {
    /// Creates a mixture from `(probability, mean)` branches.
    ///
    /// # Panics
    ///
    /// Panics if the branch list is empty, any probability or mean is
    /// invalid, or the probabilities do not sum to 1 (within 1e-9).
    pub fn new(branches: Vec<(f64, f64)>) -> Self {
        assert!(!branches.is_empty(), "hyperexponential needs branches");
        let mut total = 0.0;
        for &(p, m) in &branches {
            assert!(p.is_finite() && (0.0..=1.0).contains(&p), "bad branch probability {p}");
            assert!(m.is_finite() && m > 0.0, "bad branch mean {m}");
            total += p;
        }
        assert!(
            (total - 1.0).abs() < 1e-9,
            "branch probabilities sum to {total}, expected 1"
        );
        Hyperexponential { branches }
    }

    /// Two-branch convenience constructor: probability `p_short` of mean
    /// `short_mean`, otherwise `long_mean`.
    pub fn two(p_short: f64, short_mean: f64, long_mean: f64) -> Self {
        Hyperexponential::new(vec![(p_short, short_mean), (1.0 - p_short, long_mean)])
    }
}

impl Sample for Hyperexponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let mut u = rng.uniform_f64();
        for &(p, m) in &self.branches {
            if u < p {
                return rng.exponential(m);
            }
            u -= p;
        }
        // Floating-point slack: fall through to the last branch.
        let (_, m) = *self.branches.last().expect("non-empty branches");
        rng.exponential(m)
    }

    fn mean(&self) -> f64 {
        self.branches.iter().map(|&(p, m)| p * m).sum()
    }
}

/// Bounded Pareto distribution on `[lo, hi]` with shape `alpha`.
///
/// Used for heavy-tailed checkpoint-image sizes and as an alternative
/// demand model in ablations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto with shape `alpha` on `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0`, `lo <= 0`, or `lo >= hi`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "invalid pareto shape {alpha}");
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi,
            "invalid pareto bounds [{lo}, {hi}]"
        );
        BoundedPareto { alpha, lo, hi }
    }
}

impl Sample for BoundedPareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF of the bounded Pareto.
        let u = rng.uniform_f64();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha);
        x.clamp(self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.lo, self.hi);
        let norm = l.powf(a) / (1.0 - (l / h).powf(a));
        if (a - 1.0).abs() < 1e-12 {
            // α = 1: ∫ₗʰ x · L·x⁻² / (1 − L/H) dx = norm · ln(H/L).
            norm * (h / l).ln()
        } else {
            norm * (a / (a - 1.0)) * (l.powf(1.0 - a) - h.powf(1.0 - a))
        }
    }
}

/// Log-normal distribution parameterised by the mean and sigma of the
/// underlying normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with underlying normal parameters `mu`, `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0, "invalid lognormal");
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal with a target *distribution* mean and a shape
    /// `sigma` of the underlying normal.
    ///
    /// # Panics
    ///
    /// Panics if `target_mean <= 0` or `sigma < 0`.
    pub fn with_mean(target_mean: f64, sigma: f64) -> Self {
        assert!(target_mean > 0.0, "lognormal mean must be positive");
        let mu = target_mean.ln() - sigma * sigma / 2.0;
        LogNormal::new(mu, sigma)
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Empirical distribution: resamples uniformly from observed values.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
}

impl Empirical {
    /// Creates an empirical distribution from observations.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains negative/non-finite entries.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empirical distribution needs data");
        for &v in &values {
            assert!(v.is_finite() && v >= 0.0, "bad empirical value {v}");
        }
        Empirical { values }
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        *rng.pick(&self.values)
    }
    fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }
}

/// A distribution scaled by a constant factor (e.g. convert hours → seconds
/// without re-deriving parameters).
#[derive(Debug)]
pub struct Scaled<D> {
    inner: D,
    factor: f64,
}

impl<D: Sample> Scaled<D> {
    /// Wraps `inner`, multiplying every draw by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn new(inner: D, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "invalid scale factor {factor}");
        Scaled { inner, factor }
    }
}

impl<D: Sample> Sample for Scaled<D> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.inner.sample(rng) * self.factor
    }
    fn mean(&self) -> f64 {
        self.inner.mean() * self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &dyn Sample, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(3.5);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let d = Uniform::new(2.0, 6.0);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        assert_eq!(d.mean(), 4.0);
        let m = empirical_mean(&d, 3, 100_000);
        assert!((m - 4.0).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn exponential_empirical_mean() {
        let d = Exponential::new(7.0);
        let m = empirical_mean(&d, 4, 200_000);
        assert!((m - 7.0).abs() / 7.0 < 0.02, "mean {m}");
    }

    #[test]
    fn hyperexponential_mean_and_skew() {
        // 70% short jobs (1 h), 30% long (15 h): mean 5.2 h like the paper.
        let d = Hyperexponential::two(0.7, 1.0, 15.0);
        assert!((d.mean() - 5.2).abs() < 1e-9);
        let m = empirical_mean(&d, 5, 300_000);
        assert!((m - 5.2).abs() / 5.2 < 0.03, "mean {m}");

        // Median well below mean (right skew).
        let mut rng = SimRng::seed_from(6);
        let mut xs: Vec<f64> = (0..50_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[25_000];
        assert!(median < 3.0, "median {median} should be < 3 h");
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn hyperexponential_validates_probabilities() {
        let _ = Hyperexponential::new(vec![(0.5, 1.0), (0.6, 2.0)]);
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let d = BoundedPareto::new(1.5, 0.1, 10.0);
        let mut rng = SimRng::seed_from(7);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((0.1..=10.0).contains(&x), "out of bounds {x}");
        }
    }

    #[test]
    fn bounded_pareto_analytic_mean_matches_empirical() {
        for &(alpha, lo, hi) in &[(1.5, 0.1, 10.0), (2.5, 1.0, 100.0), (1.0, 0.5, 8.0)] {
            let d = BoundedPareto::new(alpha, lo, hi);
            let m = empirical_mean(&d, 77, 400_000);
            let a = d.mean();
            assert!(
                (m - a).abs() / a < 0.03,
                "alpha={alpha}: analytic {a} vs empirical {m}"
            );
        }
    }

    #[test]
    fn lognormal_with_mean_hits_target() {
        let d = LogNormal::with_mean(0.5, 0.8);
        assert!((d.mean() - 0.5).abs() < 1e-12);
        let m = empirical_mean(&d, 8, 300_000);
        assert!((m - 0.5).abs() / 0.5 < 0.03, "mean {m}");
        let mut rng = SimRng::seed_from(9);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn empirical_resamples_observations() {
        let d = Empirical::new(vec![1.0, 2.0, 3.0]);
        let mut rng = SimRng::seed_from(10);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!(x == 1.0 || x == 2.0 || x == 3.0);
        }
        assert_eq!(d.mean(), 2.0);
    }

    #[test]
    fn scaled_multiplies_draws_and_mean() {
        let d = Scaled::new(Deterministic::new(2.0), 3.0);
        let mut rng = SimRng::seed_from(11);
        assert_eq!(d.sample(&mut rng), 6.0);
        assert_eq!(d.mean(), 6.0);
    }

    #[test]
    fn trait_objects_work() {
        let dists: Vec<Box<dyn Sample>> = vec![
            Box::new(Deterministic::new(1.0)),
            Box::new(Exponential::new(1.0)),
            Box::new(Uniform::new(0.0, 2.0)),
        ];
        let mut rng = SimRng::seed_from(12);
        for d in &dists {
            let x = d.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0);
        }
    }
}
