//! Seeded, splittable randomness.
//!
//! Everything stochastic in the reproduction flows through [`SimRng`], a thin
//! wrapper over a PCG-family generator seeded explicitly by the caller. No
//! simulation code ever consults OS entropy or wall-clock time, so a run is
//! a pure function of its configuration and seed.
//!
//! [`SimRng::substream`] derives independent child generators from string
//! labels (e.g. one per workstation, one per user). Adding a new consumer of
//! randomness therefore does not perturb the draws seen by existing
//! consumers — runs stay comparable across code changes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic random-number generator for simulations.
///
/// # Examples
///
/// ```
/// use condor_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent generator identified by `label`. The same
    /// `(seed, label)` pair always yields the same stream.
    pub fn substream(&self, base_seed: u64, label: &str) -> SimRng {
        SimRng::seed_from(base_seed ^ fnv1a(label.as_bytes()))
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 random mantissa bits → uniform in [0,1) with full double precision.
        (self.inner.gen::<u64>() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range_f64: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform_f64()
    }

    /// Uniform integer draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform_range_u64: empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform index draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty domain");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.uniform_f64() < p
    }

    /// Exponential draw with the given mean (inverse-CDF method).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential: mean must be positive and finite, got {mean}"
        );
        // 1 - U is in (0, 1], so ln never sees zero.
        -mean * (1.0 - self.uniform_f64()).ln()
    }

    /// Standard normal draw (Box–Muller; one of the pair is discarded for
    /// simplicity — generation speed is not a bottleneck here).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform_f64(); // (0, 1]
        let u2 = self.uniform_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

/// FNV-1a hash, used only to fold substream labels into seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_stable_and_distinct() {
        let root = SimRng::seed_from(99);
        let mut s1 = root.substream(99, "station-1");
        let mut s1_again = root.substream(99, "station-1");
        let mut s2 = root.substream(99, "station-2");
        assert_eq!(s1.next_u64(), s1_again.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let x = r.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_f64_mean_is_about_half() {
        let mut r = SimRng::seed_from(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::seed_from(5);
        let n = 200_000;
        let target = 42.0;
        let mean: f64 = (0..n).map(|_| r.exponential(target)).sum::<f64>() / n as f64;
        assert!((mean - target).abs() / target < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut r = SimRng::seed_from(6);
        for _ in 0..10_000 {
            assert!(r.exponential(1.0) >= 0.0);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SimRng::seed_from(8);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_frequency() {
        let mut r = SimRng::seed_from(10);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "seed 11 should shuffle");
    }

    #[test]
    fn pick_and_index_cover_domain() {
        let mut r = SimRng::seed_from(12);
        let items = ['a', 'b', 'c'];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*r.pick(&items));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn index_rejects_empty() {
        SimRng::seed_from(1).index(0);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn exponential_rejects_bad_mean() {
        SimRng::seed_from(1).exponential(0.0);
    }
}
