//! The discrete-event engine.
//!
//! A simulation is a [`Model`]: a bag of state plus a `handle` method that
//! reacts to one event at a time. The [`Engine`] owns the model, the clock,
//! and the future-event queue; it repeatedly pops the earliest event and
//! hands it to the model together with a [`Scheduler`] through which the
//! model plants future events.
//!
//! The split between `Model` (domain state) and `Scheduler` (event queue
//! view) sidesteps the classic borrow problem of callback-based simulators:
//! the model gets `&mut self` *and* the ability to schedule, without
//! `RefCell`s or `Rc` cycles.

use crate::event::{EventQueue, EventToken};
use crate::time::{SimDuration, SimTime};

/// A simulation model: domain state plus an event handler.
///
/// # Examples
///
/// A counter that re-arms itself until it has ticked five times:
///
/// ```
/// use condor_sim::engine::{Engine, Model, Scheduler};
/// use condor_sim::time::{SimDuration, SimTime};
///
/// struct Ticker { ticks: u32 }
/// #[derive(Debug)]
/// struct Tick;
///
/// impl Model for Ticker {
///     type Event = Tick;
///     fn handle(&mut self, _now: SimTime, _ev: Tick, sched: &mut Scheduler<Tick>) {
///         self.ticks += 1;
///         if self.ticks < 5 {
///             sched.after(SimDuration::SECOND, Tick);
///         }
///     }
/// }
///
/// let mut engine = Engine::new(Ticker { ticks: 0 });
/// engine.scheduler().at(SimTime::ZERO, Tick);
/// engine.run_to_completion();
/// assert_eq!(engine.model().ticks, 5);
/// assert_eq!(engine.now(), SimTime::from_secs(4));
/// ```
pub trait Model {
    /// The event alphabet of the model.
    type Event;

    /// Reacts to `ev`, which fires at simulated instant `now`. New events
    /// may be planted through `sched`.
    fn handle(&mut self, now: SimTime, ev: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// The model-facing view of the future-event queue.
///
/// Obtained from [`Engine::scheduler`] or passed into [`Model::handle`].
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` from now.
    pub fn after(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.queue.schedule(self.now + delay, event)
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — delivering events before the current
    /// clock would corrupt causality.
    pub fn at(&mut self, at: SimTime, event: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={at}",
            self.now
        );
        self.queue.schedule(at, event)
    }

    /// Schedules `event` to fire immediately (at the current instant, after
    /// all events already queued for this instant).
    pub fn immediately(&mut self, event: E) -> EventToken {
        self.queue.schedule(self.now, event)
    }

    /// Cancels a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.queue.cancel(token)
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Why [`Engine::run_until`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained before the horizon.
    QueueExhausted,
    /// The horizon was reached; events at or beyond it remain pending.
    HorizonReached,
    /// The per-run event budget was exhausted (runaway-model guard).
    EventBudgetExhausted,
}

/// Drives a [`Model`] through simulated time.
pub struct Engine<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    events_dispatched: u64,
    event_budget: Option<u64>,
}

impl<M: Model> Engine<M> {
    /// Creates an engine at time zero wrapping `model`.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            events_dispatched: 0,
            event_budget: None,
        }
    }

    /// Caps the total number of events a run may dispatch; exceeded budgets
    /// stop the run with [`StopReason::EventBudgetExhausted`]. Useful as a
    /// guard against accidentally self-perpetuating event storms in tests.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = Some(budget);
        self
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared view of the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive view of the model (e.g. to inject external stimulus
    /// between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Total events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Timestamp of the earliest queued event, if any.
    ///
    /// This is what makes a *windowed* multi-engine run cheap: a
    /// conservative space-parallel driver tiles [`Engine::run_until`]
    /// calls over fixed lookahead windows, and when every engine's next
    /// event lies beyond the current window the driver can skip empty
    /// windows in O(1) instead of stepping each engine through them.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// A [`Scheduler`] for planting events from outside the model (initial
    /// conditions, test stimulus).
    pub fn scheduler(&mut self) -> Scheduler<'_, M::Event> {
        Scheduler {
            now: self.now,
            queue: &mut self.queue,
        }
    }

    /// Runs until the queue drains or the clock would pass `horizon`.
    /// Events timestamped exactly at `horizon` are **not** delivered. On
    /// return the clock is at `horizon` (even if the queue drained earlier),
    /// so consecutive `run_until`/[`Engine::run_for`] calls tile cleanly.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        let reason = self.drain_until(horizon);
        if reason == StopReason::QueueExhausted && horizon != SimTime::MAX && self.now < horizon {
            self.now = horizon;
        }
        reason
    }

    fn drain_until(&mut self, horizon: SimTime) -> StopReason {
        loop {
            if let Some(budget) = self.event_budget {
                if self.events_dispatched >= budget {
                    return StopReason::EventBudgetExhausted;
                }
            }
            match self.queue.peek_time() {
                None => return StopReason::QueueExhausted,
                Some(t) if t >= horizon => {
                    self.now = horizon;
                    return StopReason::HorizonReached;
                }
                Some(_) => {
                    let (t, ev) = self.queue.pop().expect("peeked event vanished");
                    debug_assert!(t >= self.now, "event queue delivered out of order");
                    self.now = t;
                    self.events_dispatched += 1;
                    let mut sched = Scheduler {
                        now: self.now,
                        queue: &mut self.queue,
                    };
                    self.model.handle(t, ev, &mut sched);
                }
            }
        }
    }

    /// Runs for `span` of simulated time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) -> StopReason {
        let horizon = self.now + span;
        self.run_until(horizon)
    }

    /// Runs until the event queue is completely drained; the clock stops at
    /// the last delivered event.
    pub fn run_to_completion(&mut self) -> StopReason {
        self.drain_until(SimTime::MAX)
    }

    /// Dispatches at most one event. Returns the event's timestamp, or
    /// `None` if the queue is empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let (t, ev) = self.queue.pop()?;
        debug_assert!(t >= self.now);
        self.now = t;
        self.events_dispatched += 1;
        let mut sched = Scheduler {
            now: self.now,
            queue: &mut self.queue,
        };
        self.model.handle(t, ev, &mut sched);
        Some(t)
    }
}

impl<M: Model + std::fmt::Debug> std::fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("events_dispatched", &self.events_dispatched)
            .field("model", &self.model)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every (time, payload) it sees; optionally echoes events
    /// forward in time.
    #[derive(Debug, Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        echo_delay: Option<SimDuration>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now, ev));
            if let Some(d) = self.echo_delay {
                if ev > 0 {
                    sched.after(d, ev - 1);
                }
            }
        }
    }

    #[test]
    fn delivers_in_chronological_order() {
        let mut eng = Engine::new(Recorder::default());
        {
            let mut s = eng.scheduler();
            s.at(SimTime::from_secs(10), 1);
            s.at(SimTime::from_secs(5), 2);
            s.at(SimTime::from_secs(10), 3);
        }
        assert_eq!(eng.run_to_completion(), StopReason::QueueExhausted);
        let times: Vec<u64> = eng.model().seen.iter().map(|(t, _)| t.as_secs()).collect();
        assert_eq!(times, vec![5, 10, 10]);
        // FIFO at equal timestamps.
        assert_eq!(eng.model().seen[1].1, 1);
        assert_eq!(eng.model().seen[2].1, 3);
    }

    #[test]
    fn horizon_excludes_boundary_events() {
        let mut eng = Engine::new(Recorder::default());
        eng.scheduler().at(SimTime::from_secs(5), 7);
        let reason = eng.run_until(SimTime::from_secs(5));
        assert_eq!(reason, StopReason::HorizonReached);
        assert!(eng.model().seen.is_empty());
        assert_eq!(eng.now(), SimTime::from_secs(5));
        // A subsequent run picks the boundary event up.
        assert_eq!(eng.run_until(SimTime::from_secs(6)), StopReason::QueueExhausted);
        assert_eq!(eng.model().seen.len(), 1);
    }

    #[test]
    fn self_scheduling_chain_runs_out() {
        let mut eng = Engine::new(Recorder {
            seen: Vec::new(),
            echo_delay: Some(SimDuration::SECOND),
        });
        eng.scheduler().at(SimTime::ZERO, 4);
        eng.run_to_completion();
        assert_eq!(eng.model().seen.len(), 5); // 4,3,2,1,0
        assert_eq!(eng.now(), SimTime::from_secs(4));
        assert_eq!(eng.events_dispatched(), 5);
    }

    #[test]
    fn event_budget_stops_runaway() {
        let mut eng = Engine::new(Recorder {
            seen: Vec::new(),
            echo_delay: Some(SimDuration::MILLISECOND),
        })
        .with_event_budget(10);
        eng.scheduler().at(SimTime::ZERO, u32::MAX);
        assert_eq!(eng.run_to_completion(), StopReason::EventBudgetExhausted);
        assert_eq!(eng.events_dispatched(), 10);
    }

    #[test]
    fn run_for_tiles_cleanly() {
        let mut eng = Engine::new(Recorder::default());
        eng.scheduler().at(SimTime::from_secs(30), 1);
        for _ in 0..10 {
            eng.run_for(SimDuration::from_secs(10));
        }
        assert_eq!(eng.now(), SimTime::from_secs(100));
        assert_eq!(eng.model().seen.len(), 1);
    }

    #[test]
    fn step_dispatches_single_event() {
        let mut eng = Engine::new(Recorder::default());
        eng.scheduler().at(SimTime::from_secs(1), 1);
        eng.scheduler().at(SimTime::from_secs(2), 2);
        assert_eq!(eng.step(), Some(SimTime::from_secs(1)));
        assert_eq!(eng.model().seen.len(), 1);
        assert_eq!(eng.step(), Some(SimTime::from_secs(2)));
        assert_eq!(eng.step(), None);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut eng = Engine::new(Recorder::default());
        eng.scheduler().at(SimTime::from_secs(10), 1);
        eng.run_to_completion();
        eng.scheduler().at(SimTime::from_secs(1), 2);
    }

    #[test]
    fn immediately_preserves_fifo_with_same_instant() {
        #[derive(Debug, Default)]
        struct Chain(Vec<u32>);
        impl Model for Chain {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.0.push(ev);
                if ev < 3 {
                    sched.immediately(ev + 10); // fires after already-queued ev+1
                }
            }
        }
        let mut eng = Engine::new(Chain::default());
        {
            let mut s = eng.scheduler();
            s.at(SimTime::ZERO, 1);
            s.at(SimTime::ZERO, 2);
        }
        eng.run_to_completion();
        assert_eq!(eng.model().0, vec![1, 2, 11, 12]);
    }
}
