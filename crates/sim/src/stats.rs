//! Streaming and batch statistics.
//!
//! [`Running`] implements Welford's online algorithm (numerically stable
//! mean/variance without storing samples); [`Histogram`] and
//! [`percentile`]/[`Cdf`] support the distributional figures of the paper.

/// Online mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use condor_sim::stats::Running;
///
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 5.0);
/// assert_eq!(r.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Population variance (divides by *n*); 0 when fewer than 2 samples.
    pub fn population_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by *n − 1*); 0 when fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Running {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut r = Running::new();
        r.extend(iter);
        r
    }
}

/// The `q`-th percentile (0–100, linear interpolation) of unsorted data.
///
/// Returns `None` on empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]` or any value is NaN.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = q / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(v[lo] + (v[hi] - v[lo]) * frac)
}

/// The median (50th percentile) of unsorted data.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Fixed-bucket histogram over `[lo, hi)` with uniform bucket widths, plus
/// underflow/overflow bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` uniform cells over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or the range is empty/non-finite.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bucket counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The inclusive lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// The exclusive upper edge of bucket `i`.
    pub fn bucket_hi(&self, i: usize) -> f64 {
        self.bucket_lo(i + 1)
    }
}

/// A log₂-bucketed histogram over non-negative integer observations.
///
/// Designed for streaming telemetry at unbounded horizons: memory is a
/// fixed 65 buckets regardless of sample count, and every update is O(1).
/// Bucket *b* holds values whose bit length is *b* (bucket 0 holds the
/// value 0), so relative resolution is a factor of two everywhere — enough
/// for "is the queue wait minutes or hours?" questions, by design not for
/// exact percentiles (see [`LogHistogram::quantile`]).
///
/// # Examples
///
/// ```
/// use condor_sim::stats::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [1u64, 2, 3, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), Some(1000));
/// assert!((h.mean() - 251.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    /// counts[b] = observations with bit length b (b = 0 ⇒ value 0).
    counts: [u64; 65],
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; 65],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean (the sum is tracked exactly); 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the geometric midpoint of
    /// the bucket containing the `q`-th ranked observation, clamped to the
    /// observed min/max. Accurate to within a factor of two by
    /// construction. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if b == 0 {
                    return Some(0);
                }
                // Bucket b spans [2^(b-1), 2^b); geometric midpoint ≈
                // 2^(b-1) * √2.
                let lo = 1u64 << (b - 1);
                let mid = (lo as f64 * std::f64::consts::SQRT_2).round() as u64;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        unreachable!("rank within total")
    }

    /// Non-empty buckets as `(bucket_lo, bucket_hi_exclusive, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(b, &c)| {
            if b == 0 {
                (0, 1, c)
            } else {
                (1u64 << (b - 1), (1u128 << b).min(u64::MAX as u128) as u64, c)
            }
        })
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An empirical cumulative distribution function.
///
/// # Examples
///
/// ```
/// use condor_sim::stats::Cdf;
///
/// let cdf = Cdf::from_values(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_below(2.5), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from observations.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN.
    pub fn from_values(mut values: Vec<f64>) -> Self {
        values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        Cdf { sorted: values }
    }

    /// Fraction of observations strictly below `x` (0 when empty).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Evaluates the CDF at each grid point, returning `(x, F(x))` pairs —
    /// the series plotted in the paper's Figure 2.
    pub fn evaluate_on(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter().map(|&x| (x, self.fraction_below(x))).collect()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when built from no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-th percentile of the underlying data.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        percentile(&self.sorted, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_known_dataset() {
        let r: Running = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(r.count(), 8);
        assert_eq!(r.mean(), 5.0);
        assert_eq!(r.population_variance(), 4.0);
        assert_eq!(r.std_dev(), 2.0);
        assert!((r.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(9.0));
        assert_eq!(r.sum(), 40.0);
    }

    #[test]
    fn running_empty_and_single() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.min(), None);
        assert_eq!(r.population_variance(), 0.0);
        let mut r1 = Running::new();
        r1.push(3.0);
        assert_eq!(r1.mean(), 3.0);
        assert_eq!(r1.population_variance(), 0.0);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.7 - 20.0).collect();
        let seq: Running = data.iter().copied().collect();
        let mut a: Running = data[..37].iter().copied().collect();
        let b: Running = data[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.population_variance() - seq.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn running_merge_with_empty() {
        let mut a = Running::new();
        let b: Running = [1.0, 2.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.mean(), 1.5);
        let mut c: Running = [4.0].into_iter().collect();
        c.merge(&Running::new());
        assert_eq!(c.mean(), 4.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 50.0), Some(25.0));
        assert_eq!(median(&v), Some(25.0));
        assert_eq!(percentile(&[], 50.0), None);
        // Order-insensitive.
        let shuffled = vec![40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&shuffled, 50.0), Some(25.0));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_validates_q() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn histogram_buckets_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bucket_lo(0), 0.0);
        assert_eq!(h.bucket_hi(0), 2.0);
        assert_eq!(h.bucket_hi(4), 10.0);
    }

    #[test]
    fn cdf_fraction_and_percentiles() {
        let cdf = Cdf::from_values(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert_eq!(cdf.fraction_below(1.0), 0.0); // strictly below
        assert_eq!(cdf.fraction_below(2.5), 0.5);
        assert_eq!(cdf.fraction_below(100.0), 1.0);
        assert_eq!(cdf.len(), 4);
        assert!(!cdf.is_empty());
        assert_eq!(cdf.percentile(50.0), Some(2.5));
    }

    #[test]
    fn cdf_grid_evaluation_is_monotone() {
        let cdf = Cdf::from_values((0..100).map(|i| i as f64).collect());
        let grid: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
        let pts = cdf.evaluate_on(&grid);
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be monotone: {pts:?}");
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_empty() {
        let cdf = Cdf::from_values(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_below(1.0), 0.0);
        assert_eq!(cdf.percentile(50.0), None);
    }

    #[test]
    fn log_histogram_exact_aggregates() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for v in [0u64, 1, 5, 5, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1_000_000));
        assert_eq!(h.sum(), 1_000_011);
        assert!((h.mean() - 200_002.2).abs() < 1e-6);
    }

    #[test]
    fn log_histogram_quantiles_within_factor_of_two() {
        let mut h = LogHistogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap() as f64;
        assert!((250.0..=1_000.0).contains(&p50), "p50 {p50}");
        let p0 = h.quantile(0.0).unwrap();
        assert!(p0 >= 1, "clamped to observed min, got {p0}");
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 <= 1_000, "clamped to observed max, got {p100}");
    }

    #[test]
    fn log_histogram_buckets_and_merge() {
        let mut a = LogHistogram::new();
        a.record(0);
        a.record(3);
        let mut b = LogHistogram::new();
        b.record(3);
        b.record(1 << 40);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        let buckets: Vec<_> = a.buckets().collect();
        // Value 0 → bucket [0,1); values 3 → [2,4); 2^40 → [2^40, 2^41).
        assert_eq!(
            buckets,
            vec![(0, 1, 1), (2, 4, 2), (1 << 40, 1 << 41, 1)]
        );
        let empty = LogHistogram::default();
        a.merge(&empty);
        assert_eq!(a.count(), 4);
    }
}
