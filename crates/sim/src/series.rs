//! Time-series recording.
//!
//! The paper's figures are time series (queue length per hour, utilization
//! per day) and time-weighted averages. Two recorders cover both needs:
//!
//! * [`StepSeries`] — a piecewise-constant signal (queue length, busy/idle
//!   flags). Records every change; supports time-weighted averaging and
//!   resampling onto a fixed grid for plotting.
//! * [`BucketAccumulator`] — accumulates amounts (CPU-milliseconds consumed)
//!   into fixed-width time buckets; used for utilization-per-hour curves.
//! * [`CoarseSeries`] — a bounded-memory sampled series for streaming
//!   telemetry: keeps at most a fixed number of points by averaging ever
//!   wider windows as more samples arrive.

use crate::time::{SimDuration, SimTime};

/// A piecewise-constant time series: the value set at time *t* holds until
/// the next set.
///
/// # Examples
///
/// ```
/// use condor_sim::series::StepSeries;
/// use condor_sim::time::{SimDuration, SimTime};
///
/// let mut s = StepSeries::new(0.0);
/// s.set(SimTime::from_secs(10), 2.0);
/// s.set(SimTime::from_secs(20), 4.0);
/// // 0 for 10 s, 2 for 10 s, 4 for 10 s → time-weighted mean of 2.
/// let mean = s.time_weighted_mean(SimTime::ZERO, SimTime::from_secs(30));
/// assert!((mean - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StepSeries {
    points: Vec<(SimTime, f64)>,
}

impl StepSeries {
    /// Creates a series whose value is `initial` from time zero.
    pub fn new(initial: f64) -> Self {
        StepSeries {
            points: vec![(SimTime::ZERO, initial)],
        }
    }

    /// Sets the value from `at` onward.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded change (the series is
    /// append-only).
    pub fn set(&mut self, at: SimTime, value: f64) {
        let (last_t, last_v) = *self.points.last().expect("series is never empty");
        assert!(at >= last_t, "StepSeries::set out of order: {at} < {last_t}");
        if value == last_v {
            return; // no-op change, keep the series compact
        }
        if at == last_t {
            // Overwrite a same-instant change.
            self.points.last_mut().expect("non-empty").1 = value;
            // Collapse if this made it equal to the previous point.
            if self.points.len() >= 2 && self.points[self.points.len() - 2].1 == value {
                self.points.pop();
            }
        } else {
            self.points.push((at, value));
        }
    }

    /// Adds `delta` to the current value, effective at `at`.
    pub fn add(&mut self, at: SimTime, delta: f64) {
        let v = self.value_at_end();
        self.set(at, v + delta);
    }

    /// The value after all recorded changes.
    pub fn value_at_end(&self) -> f64 {
        self.points.last().expect("non-empty").1
    }

    /// The value in effect at instant `t`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1, // before first point: initial value
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Number of recorded change points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if only the initial value has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.len() == 1
    }

    /// Point-wise sum of several step series — the merged series' value at
    /// any instant equals the sum of every part's value there.
    ///
    /// Used by the space-parallel cluster runner to combine per-pool queue
    /// series into the fleet-wide series the serial simulator would have
    /// produced. Deterministic: depends only on the parts' contents.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn merge_sum(parts: &[&StepSeries]) -> StepSeries {
        assert!(!parts.is_empty(), "merge_sum needs at least one series");
        // Gather every change instant across all parts, then sweep.
        let mut instants: Vec<SimTime> = parts
            .iter()
            .flat_map(|p| p.points.iter().map(|&(t, _)| t))
            .collect();
        instants.sort_unstable();
        instants.dedup();
        let initial: f64 = parts.iter().map(|p| p.points[0].1).sum();
        let mut merged = StepSeries::new(initial);
        for &t in &instants {
            let total: f64 = parts.iter().map(|p| p.value_at(t)).sum();
            merged.set(t, total);
        }
        merged
    }

    /// Time-weighted mean over `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to`.
    pub fn time_weighted_mean(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from < to, "empty averaging window [{from}, {to})");
        let mut acc = 0.0;
        let mut cursor = from;
        let mut value = self.value_at(from);
        // Walk the change points inside the window.
        let start = match self.points.binary_search_by(|&(pt, _)| pt.cmp(&from)) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        for &(pt, v) in &self.points[start..] {
            if pt >= to {
                break;
            }
            acc += value * pt.since(cursor).as_millis() as f64;
            cursor = pt;
            value = v;
        }
        acc += value * to.since(cursor).as_millis() as f64;
        acc / to.since(from).as_millis() as f64
    }

    /// Samples the series onto a fixed grid: one point per `step`, covering
    /// `[from, to)`, each point being the **time-weighted mean** within its
    /// cell (not the instantaneous value), which is what the paper's hourly
    /// queue-length plots show.
    pub fn resample_mean(&self, from: SimTime, to: SimTime, step: SimDuration) -> Vec<f64> {
        assert!(!step.is_zero(), "zero resampling step");
        let mut out = Vec::new();
        let mut cell = from;
        while cell < to {
            let cell_end = (cell + step).min(to);
            out.push(self.time_weighted_mean(cell, cell_end));
            cell = cell_end;
        }
        out
    }

    /// Maximum value attained in `[from, to)` (including the value carried
    /// into the window).
    pub fn max_in(&self, from: SimTime, to: SimTime) -> f64 {
        let mut m = self.value_at(from);
        for &(pt, v) in &self.points {
            if pt >= from && pt < to {
                m = m.max(v);
            }
        }
        m
    }

    /// Iterates over the recorded `(time, value)` change points.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }
}

/// Accumulates amounts into fixed-width time buckets.
///
/// Typical use: charge CPU-milliseconds of useful work into hourly buckets,
/// then divide by capacity to get a utilization curve.
///
/// # Examples
///
/// ```
/// use condor_sim::series::BucketAccumulator;
/// use condor_sim::time::{SimDuration, SimTime};
///
/// let mut acc = BucketAccumulator::new(SimDuration::HOUR);
/// acc.deposit_point(SimTime::from_secs(10), 5.0);
/// acc.deposit_point(SimTime::from_hours(1), 7.0);
/// assert_eq!(acc.bucket_totals(2), vec![5.0, 7.0]);
/// ```
#[derive(Debug, Clone)]
pub struct BucketAccumulator {
    width: SimDuration,
    buckets: Vec<f64>,
}

impl BucketAccumulator {
    /// Creates an accumulator with buckets of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "zero bucket width");
        BucketAccumulator {
            width,
            buckets: Vec::new(),
        }
    }

    /// Bucket width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    fn bucket_index(&self, t: SimTime) -> usize {
        (t.as_millis() / self.width.as_millis()) as usize
    }

    fn ensure(&mut self, idx: usize) {
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0.0);
        }
    }

    /// Deposits `amount` entirely into the bucket containing instant `t`.
    pub fn deposit_point(&mut self, t: SimTime, amount: f64) {
        let idx = self.bucket_index(t);
        self.ensure(idx);
        self.buckets[idx] += amount;
    }

    /// Spreads `amount` uniformly over the interval `[from, to)`, splitting
    /// it across buckets pro-rata. An empty interval deposits at `from`.
    pub fn deposit_interval(&mut self, from: SimTime, to: SimTime, amount: f64) {
        if to <= from {
            self.deposit_point(from, amount);
            return;
        }
        let total_ms = to.since(from).as_millis() as f64;
        let mut cursor = from;
        while cursor < to {
            let bucket_end = cursor.align_down(self.width) + self.width;
            let seg_end = bucket_end.min(to);
            let frac = seg_end.since(cursor).as_millis() as f64 / total_ms;
            self.deposit_point(cursor, amount * frac);
            cursor = seg_end;
        }
    }

    /// Adds every bucket of `other` into this accumulator.
    ///
    /// Both accumulators must share a bucket width; used to combine
    /// per-pool busy-time ledgers into the fleet-wide one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ.
    pub fn absorb(&mut self, other: &BucketAccumulator) {
        assert_eq!(
            self.width, other.width,
            "cannot absorb a BucketAccumulator of different bucket width"
        );
        if other.buckets.is_empty() {
            return;
        }
        self.ensure(other.buckets.len() - 1);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Totals of the first `n` buckets (zero-padded beyond the data).
    pub fn bucket_totals(&self, n: usize) -> Vec<f64> {
        let mut v = self.buckets.clone();
        v.resize(n.max(v.len()), 0.0);
        v.truncate(n);
        v
    }

    /// Sum over all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Number of buckets touched so far.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// `true` if nothing has been deposited.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// A bounded-memory sampled time series.
///
/// Built for telemetry sinks that watch a gauge (bus backlog, scheduling
/// index) over arbitrarily long runs: memory never exceeds `capacity`
/// points. Samples are averaged in windows of `stride` consecutive pushes;
/// when the point buffer fills, adjacent points are pair-merged and the
/// stride doubles, halving resolution instead of growing. Each stored point
/// is `(time of first sample in window, mean of window)`. Fully
/// deterministic: the stored points depend only on the push sequence.
///
/// # Examples
///
/// ```
/// use condor_sim::series::CoarseSeries;
/// use condor_sim::time::SimTime;
///
/// let mut s = CoarseSeries::new(4);
/// for i in 0..100u64 {
///     s.push(SimTime::from_secs(i), i as f64);
/// }
/// assert!(s.len() <= 4);
/// assert_eq!(s.samples(), 100);
/// assert!((s.mean() - 49.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseSeries {
    capacity: usize,
    points: Vec<(SimTime, f64)>,
    stride: u64,
    pending_at: SimTime,
    pending_sum: f64,
    pending_count: u64,
    samples: u64,
    total_sum: f64,
    max: f64,
}

impl CoarseSeries {
    /// Default point capacity used by the telemetry layer.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// Creates a series holding at most `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (pair-merging needs room to halve).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "CoarseSeries capacity must be at least 2");
        CoarseSeries {
            capacity,
            points: Vec::new(),
            stride: 1,
            pending_at: SimTime::ZERO,
            pending_sum: 0.0,
            pending_count: 0,
            samples: 0,
            total_sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Samples are assumed to arrive in time order.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.samples += 1;
        self.total_sum += value;
        self.max = self.max.max(value);
        if self.pending_count == 0 {
            self.pending_at = at;
        }
        self.pending_sum += value;
        self.pending_count += 1;
        if self.pending_count >= self.stride {
            self.flush_pending();
            if self.points.len() >= self.capacity {
                self.coarsen();
            }
        }
    }

    fn flush_pending(&mut self) {
        if self.pending_count == 0 {
            return;
        }
        let mean = self.pending_sum / self.pending_count as f64;
        self.points.push((self.pending_at, mean));
        self.pending_sum = 0.0;
        self.pending_count = 0;
    }

    fn coarsen(&mut self) {
        let merged: Vec<(SimTime, f64)> = self
            .points
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    (pair[0].0, (pair[0].1 + pair[1].1) / 2.0)
                } else {
                    pair[0]
                }
            })
            .collect();
        self.points = merged;
        self.stride *= 2;
    }

    /// The stored points as `(window start, window mean)`, oldest first.
    /// Includes any partially filled window at the end.
    pub fn points(&self) -> Vec<(SimTime, f64)> {
        let mut v = self.points.clone();
        if self.pending_count > 0 {
            v.push((self.pending_at, self.pending_sum / self.pending_count as f64));
        }
        v
    }

    /// Number of stored points (including a partial window).
    pub fn len(&self) -> usize {
        self.points.len() + usize::from(self.pending_count > 0)
    }

    /// `true` when no sample has been pushed.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Total number of samples pushed (not points stored).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Exact mean of every sample ever pushed; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_sum / self.samples as f64
        }
    }

    /// Largest sample ever pushed; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.max)
    }

    /// Current samples-per-point coarsening factor (1 until the first merge).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Merges `other` into this series, interleaving stored points by time.
    ///
    /// The exact aggregates (`samples`, `mean`, `max`) combine losslessly;
    /// the stored point shape is rebuilt by replaying both point lists in
    /// time order, so it carries the same bounded-memory approximation any
    /// single-writer series has. Deterministic: depends only on the two
    /// series' contents, never on call timing.
    pub fn absorb(&mut self, other: &CoarseSeries) {
        if other.samples == 0 {
            return;
        }
        if self.samples == 0 {
            *self = other.clone();
            return;
        }
        let mine = self.points();
        let theirs = other.points();
        let mut rebuilt = CoarseSeries::new(self.capacity.max(other.capacity));
        let (mut i, mut j) = (0, 0);
        while i < mine.len() || j < theirs.len() {
            let take_mine = j >= theirs.len() || (i < mine.len() && mine[i].0 <= theirs[j].0);
            let (t, v) = if take_mine { mine[i] } else { theirs[j] };
            if take_mine {
                i += 1;
            } else {
                j += 1;
            }
            rebuilt.push(t, v);
        }
        // The replay above rebuilt the *shape*; restore the exact
        // aggregates from both sources.
        rebuilt.samples = self.samples + other.samples;
        rebuilt.total_sum = self.total_sum + other.total_sum;
        rebuilt.max = self.max.max(other.max);
        *self = rebuilt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_series_value_lookup() {
        let mut s = StepSeries::new(1.0);
        s.set(SimTime::from_secs(10), 5.0);
        s.set(SimTime::from_secs(20), 3.0);
        assert_eq!(s.value_at(SimTime::ZERO), 1.0);
        assert_eq!(s.value_at(SimTime::from_secs(9)), 1.0);
        assert_eq!(s.value_at(SimTime::from_secs(10)), 5.0);
        assert_eq!(s.value_at(SimTime::from_secs(15)), 5.0);
        assert_eq!(s.value_at(SimTime::from_secs(25)), 3.0);
        assert_eq!(s.value_at_end(), 3.0);
    }

    #[test]
    fn step_series_compacts_redundant_sets() {
        let mut s = StepSeries::new(1.0);
        s.set(SimTime::from_secs(5), 1.0); // no change
        assert_eq!(s.len(), 1);
        s.set(SimTime::from_secs(6), 2.0);
        s.set(SimTime::from_secs(6), 1.0); // same-instant overwrite back to 1
        assert_eq!(s.len(), 1, "overwrite collapsing to previous value");
    }

    #[test]
    fn add_accumulates_deltas() {
        let mut s = StepSeries::new(0.0);
        s.add(SimTime::from_secs(1), 1.0);
        s.add(SimTime::from_secs(2), 1.0);
        s.add(SimTime::from_secs(3), -2.0);
        assert_eq!(s.value_at(SimTime::from_millis(2_500)), 2.0);
        assert_eq!(s.value_at_end(), 0.0);
    }

    #[test]
    fn time_weighted_mean_partial_windows() {
        let mut s = StepSeries::new(0.0);
        s.set(SimTime::from_secs(10), 10.0);
        // Window [5, 15): 5 s at 0, 5 s at 10 → mean 5.
        let m = s.time_weighted_mean(SimTime::from_secs(5), SimTime::from_secs(15));
        assert!((m - 5.0).abs() < 1e-12);
        // Window fully before any change.
        let m0 = s.time_weighted_mean(SimTime::ZERO, SimTime::from_secs(5));
        assert_eq!(m0, 0.0);
        // Window fully after the last change.
        let m1 = s.time_weighted_mean(SimTime::from_secs(20), SimTime::from_secs(30));
        assert_eq!(m1, 10.0);
    }

    #[test]
    fn resample_mean_grid() {
        let mut s = StepSeries::new(0.0);
        s.set(SimTime::from_secs(30), 2.0); // halfway through first minute
        let cells = s.resample_mean(SimTime::ZERO, SimTime::from_secs(120), SimDuration::MINUTE);
        assert_eq!(cells.len(), 2);
        assert!((cells[0] - 1.0).abs() < 1e-12);
        assert!((cells[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_in_window() {
        let mut s = StepSeries::new(1.0);
        s.set(SimTime::from_secs(10), 9.0);
        s.set(SimTime::from_secs(20), 2.0);
        assert_eq!(s.max_in(SimTime::ZERO, SimTime::from_secs(5)), 1.0);
        assert_eq!(s.max_in(SimTime::ZERO, SimTime::from_secs(15)), 9.0);
        // Value carried into the window counts.
        assert_eq!(s.max_in(SimTime::from_secs(12), SimTime::from_secs(18)), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn step_series_rejects_time_travel() {
        let mut s = StepSeries::new(0.0);
        s.set(SimTime::from_secs(10), 1.0);
        s.set(SimTime::from_secs(5), 2.0);
    }

    #[test]
    fn bucket_point_deposits() {
        let mut acc = BucketAccumulator::new(SimDuration::MINUTE);
        acc.deposit_point(SimTime::from_secs(10), 1.0);
        acc.deposit_point(SimTime::from_secs(59), 2.0);
        acc.deposit_point(SimTime::from_secs(60), 4.0);
        assert_eq!(acc.bucket_totals(3), vec![3.0, 4.0, 0.0]);
        assert_eq!(acc.total(), 7.0);
        assert_eq!(acc.len(), 2);
    }

    #[test]
    fn bucket_interval_splits_pro_rata() {
        let mut acc = BucketAccumulator::new(SimDuration::MINUTE);
        // 90 s interval straddling the boundary: 2/3 in bucket 0, 1/3 in 1.
        acc.deposit_interval(SimTime::ZERO, SimTime::from_secs(90), 3.0);
        let t = acc.bucket_totals(2);
        assert!((t[0] - 2.0).abs() < 1e-9, "{t:?}");
        assert!((t[1] - 1.0).abs() < 1e-9, "{t:?}");
        assert!((acc.total() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_interval_empty_becomes_point() {
        let mut acc = BucketAccumulator::new(SimDuration::MINUTE);
        let t = SimTime::from_secs(30);
        acc.deposit_interval(t, t, 5.0);
        assert_eq!(acc.bucket_totals(1), vec![5.0]);
    }

    #[test]
    fn bucket_interval_spanning_many_buckets_conserves_mass() {
        let mut acc = BucketAccumulator::new(SimDuration::HOUR);
        acc.deposit_interval(SimTime::from_secs(1_000), SimTime::from_hours(10), 42.0);
        assert!((acc.total() - 42.0).abs() < 1e-9);
        assert_eq!(acc.len(), 10);
    }

    #[test]
    fn coarse_series_stays_within_capacity() {
        let mut s = CoarseSeries::new(8);
        for i in 0..10_000u64 {
            s.push(SimTime::from_secs(i), (i % 7) as f64);
        }
        assert!(s.len() <= 8, "len {} exceeds capacity", s.len());
        assert_eq!(s.samples(), 10_000);
        assert!(s.stride() > 1, "must have coarsened");
    }

    #[test]
    fn coarse_series_exact_aggregates_survive_coarsening() {
        let mut s = CoarseSeries::new(4);
        for i in 0..1_000u64 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        assert!((s.mean() - 499.5).abs() < 1e-9);
        assert_eq!(s.max(), Some(999.0));
    }

    #[test]
    fn coarse_series_small_runs_keep_full_resolution() {
        let mut s = CoarseSeries::new(16);
        s.push(SimTime::from_secs(1), 10.0);
        s.push(SimTime::from_secs(2), 20.0);
        s.push(SimTime::from_secs(3), 30.0);
        assert_eq!(s.stride(), 1);
        assert_eq!(
            s.points(),
            vec![
                (SimTime::from_secs(1), 10.0),
                (SimTime::from_secs(2), 20.0),
                (SimTime::from_secs(3), 30.0),
            ]
        );
    }

    #[test]
    fn coarse_series_points_preserve_window_means() {
        let mut s = CoarseSeries::new(2);
        for i in 0..8u64 {
            s.push(SimTime::from_secs(i), 1.0);
        }
        // All samples are 1.0, so every coarsened point's mean is exactly 1.
        for (_, v) in s.points() {
            assert!((v - 1.0).abs() < 1e-12);
        }
        assert!(s.len() <= 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn merge_sum_adds_step_series_pointwise() {
        let mut a = StepSeries::new(1.0);
        a.add(SimTime::from_secs(10), 2.0); // 3 from t=10
        let mut b = StepSeries::new(0.0);
        b.add(SimTime::from_secs(5), 5.0); // 5 from t=5
        b.add(SimTime::from_secs(10), -5.0); // back to 0 at t=10
        let m = StepSeries::merge_sum(&[&a, &b]);
        assert_eq!(m.value_at(SimTime::ZERO), 1.0);
        assert_eq!(m.value_at(SimTime::from_secs(7)), 6.0);
        assert_eq!(m.value_at(SimTime::from_secs(10)), 3.0);
        assert_eq!(m.value_at_end(), 3.0);
    }

    #[test]
    fn bucket_absorb_adds_bucketwise() {
        let mut a = BucketAccumulator::new(SimDuration::HOUR);
        a.deposit_point(SimTime::from_secs(30 * 60), 2.0);
        let mut b = BucketAccumulator::new(SimDuration::HOUR);
        b.deposit_point(SimTime::from_secs(30 * 60), 1.0);
        b.deposit_point(SimTime::from_secs(90 * 60), 4.0);
        a.absorb(&b);
        assert_eq!(a.bucket_totals(2), vec![3.0, 4.0]);
        assert_eq!(a.total(), 7.0);
    }

    #[test]
    fn coarse_absorb_preserves_exact_aggregates() {
        let mut a = CoarseSeries::new(8);
        let mut b = CoarseSeries::new(8);
        for k in 0..10u64 {
            a.push(SimTime::from_secs(2 * k), k as f64);
            b.push(SimTime::from_secs(2 * k + 1), 100.0);
        }
        let (sa, sb) = (a.samples(), b.samples());
        let (ma, mb) = (a.mean(), b.mean());
        a.absorb(&b);
        assert_eq!(a.samples(), sa + sb);
        let expect = (ma * sa as f64 + mb * sb as f64) / (sa + sb) as f64;
        assert!((a.mean() - expect).abs() < 1e-9);
        assert_eq!(a.max(), Some(100.0));
        // Absorbing into an empty series copies the other side verbatim.
        let mut empty = CoarseSeries::new(8);
        empty.absorb(&b);
        assert_eq!(empty.samples(), sb);
    }
}
