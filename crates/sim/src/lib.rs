//! # condor-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under the Condor reproduction: a millisecond-resolution
//! simulated clock ([`time`]), a future-event queue with deterministic
//! FIFO tie-breaking ([`event`]), a model/engine split that lets domain code
//! schedule events while holding `&mut self` ([`engine`]), seeded and
//! splittable randomness ([`rng`]), the probability distributions the
//! workload models need ([`dist`]), and the recorders behind every figure in
//! the paper ([`series`], [`stats`]).
//!
//! Determinism is a hard guarantee: the same model, configuration, and seed
//! produce the same trace, byte for byte. Nothing in this crate reads the OS
//! clock or entropy pool.
//!
//! ## Example
//!
//! ```
//! use condor_sim::prelude::*;
//!
//! /// An M/M/1-ish toy: arrivals every second, service takes 300 ms.
//! struct Queue { depth: u32, served: u32 }
//! enum Ev { Arrive, Depart }
//!
//! impl Model for Queue {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: SimTime, ev: Ev, s: &mut Scheduler<Ev>) {
//!         match ev {
//!             Ev::Arrive => {
//!                 self.depth += 1;
//!                 if self.depth == 1 {
//!                     s.after(SimDuration::from_millis(300), Ev::Depart);
//!                 }
//!             }
//!             Ev::Depart => {
//!                 self.depth -= 1;
//!                 self.served += 1;
//!                 if self.depth > 0 {
//!                     s.after(SimDuration::from_millis(300), Ev::Depart);
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut eng = Engine::new(Queue { depth: 0, served: 0 });
//! for i in 0..10 {
//!     eng.scheduler().at(SimTime::from_secs(i), Ev::Arrive);
//! }
//! eng.run_to_completion();
//! assert_eq!(eng.model().served, 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
pub mod engine;
pub mod event;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

/// One-stop imports for simulation authors.
pub mod prelude {
    pub use crate::dist::Sample;
    pub use crate::engine::{Engine, Model, Scheduler, StopReason};
    pub use crate::event::{EventQueue, EventToken};
    pub use crate::rng::SimRng;
    pub use crate::series::{BucketAccumulator, CoarseSeries, StepSeries};
    pub use crate::stats::{Cdf, Histogram, LogHistogram, Running};
    pub use crate::time::{SimDuration, SimTime};
}
