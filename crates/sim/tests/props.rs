//! Property-based tests for the simulation kernel's core invariants.

use condor_sim::event::EventQueue;
use condor_sim::rng::SimRng;
use condor_sim::series::{BucketAccumulator, StepSeries};
use condor_sim::stats::{percentile, Running};
use condor_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always come out of the queue in non-decreasing time order,
    /// and same-time events come out in insertion order.
    #[test]
    fn queue_delivery_is_chronological_and_stable(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_millis(t));
            if let Some((lt, li)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(i > li, "FIFO violated at equal timestamps");
                }
            }
            last = Some((at, i));
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn queue_cancellation_is_exact(
        times in prop::collection::vec(0u64..1_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_millis(t), i)))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, tok) in &tokens {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(*tok));
            } else {
                expect.push(*i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            delivered.push(i);
        }
        delivered.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(delivered, expect);
    }

    /// Welford accumulator matches the naive two-pass computation.
    #[test]
    fn running_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let r: Running = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((r.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((r.population_variance() - var).abs() <= 1e-4 * (1.0 + var));
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn running_merge_associativity(
        a in prop::collection::vec(-1e3f64..1e3, 0..100),
        b in prop::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut merged: Running = a.iter().copied().collect();
        merged.merge(&b.iter().copied().collect());
        let seq: Running = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.count(), seq.count());
        prop_assert!((merged.mean() - seq.mean()).abs() < 1e-6);
        prop_assert!((merged.population_variance() - seq.population_variance()).abs() < 1e-6);
    }

    /// Percentile is bounded by min/max and monotone in q.
    #[test]
    fn percentile_bounds_and_monotonicity(xs in prop::collection::vec(0.0f64..1e4, 1..200)) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let p = percentile(&xs, q).unwrap();
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            prop_assert!(p >= prev - 1e-9, "percentile not monotone in q");
            prev = p;
        }
    }

    /// Time-weighted mean of a step series lies within [min, max] of its
    /// values, and resampling conserves the overall mean.
    #[test]
    fn step_series_mean_bounds(changes in prop::collection::vec((1u64..100_000, 0.0f64..50.0), 1..50)) {
        let mut s = StepSeries::new(0.0);
        let mut t = 0u64;
        let mut values = vec![0.0];
        for (dt, v) in changes {
            t += dt;
            s.set(SimTime::from_millis(t), v);
            values.push(v);
        }
        let end = SimTime::from_millis(t + 1_000);
        let m = s.time_weighted_mean(SimTime::ZERO, end);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);

        // Resampling onto any grid and averaging the cells reproduces the
        // overall mean when cells are equal width and tile the window.
        let step = SimDuration::from_millis(250);
        let cells_end = end.align_down(step);
        if cells_end > SimTime::ZERO {
            let cells = s.resample_mean(SimTime::ZERO, cells_end, step);
            let cell_mean = cells.iter().sum::<f64>() / cells.len() as f64;
            let direct = s.time_weighted_mean(SimTime::ZERO, cells_end);
            prop_assert!((cell_mean - direct).abs() < 1e-6);
        }
    }

    /// Interval deposits conserve mass regardless of bucket alignment.
    #[test]
    fn bucket_deposits_conserve_mass(
        intervals in prop::collection::vec((0u64..500_000, 1u64..500_000, 0.0f64..100.0), 1..40),
        width_ms in 1u64..100_000,
    ) {
        let mut acc = BucketAccumulator::new(SimDuration::from_millis(width_ms));
        let mut total = 0.0;
        for (start, len, amount) in intervals {
            acc.deposit_interval(
                SimTime::from_millis(start),
                SimTime::from_millis(start + len),
                amount,
            );
            total += amount;
        }
        prop_assert!((acc.total() - total).abs() < 1e-6 * (1.0 + total));
    }

    /// The queue agrees with a naive reference model (a sorted Vec scanned
    /// linearly) under an arbitrary interleaving of schedule / cancel /
    /// pop / peek operations, including len() and the activity counters.
    #[test]
    fn queue_matches_reference_model(
        ops in prop::collection::vec((0u8..100, 0u64..5_000, any::<prop::sample::Index>()), 1..300),
    ) {
        // Reference: (time, seq, id) triples still pending, scanned for the
        // minimum on every pop/peek. Quadratic and obviously correct.
        let mut model: Vec<(SimTime, u64, usize)> = Vec::new();
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        let mut next_id = 0usize;
        let mut scheduled = 0u64;
        let mut cancelled = 0u64;
        for (choice, t, pick) in ops {
            match choice {
                // Schedule a fresh event.
                0..=54 => {
                    let at = SimTime::from_millis(t);
                    let tok = q.schedule(at, next_id);
                    model.push((at, tokens.len() as u64, next_id));
                    tokens.push(tok);
                    next_id += 1;
                    scheduled += 1;
                }
                // Cancel an arbitrary already-issued token (possibly one
                // that has fired or was cancelled before).
                55..=79 if !tokens.is_empty() => {
                    let victim = pick.index(tokens.len());
                    let was_live = model.iter().any(|&(_, s, _)| s == victim as u64);
                    prop_assert_eq!(q.cancel(tokens[victim]), was_live);
                    if was_live {
                        model.retain(|&(_, s, _)| s != victim as u64);
                        cancelled += 1;
                    }
                }
                // Pop and compare against the model's minimum (time, seq).
                80..=94 => {
                    let want = model.iter().min().copied();
                    match want {
                        None => prop_assert_eq!(q.pop(), None),
                        Some((at, seq, id)) => {
                            prop_assert_eq!(q.pop(), Some((at, id)));
                            model.retain(|&(_, s, _)| s != seq);
                        }
                    }
                }
                // Pure peek.
                _ => {
                    let want = model.iter().min().map(|&(at, _, _)| at);
                    prop_assert_eq!(q.peek_time(), want);
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
            prop_assert_eq!(q.scheduled_total(), scheduled);
            prop_assert_eq!(q.cancelled_total(), cancelled);
        }
        // Drain: remaining events come out exactly in model order.
        model.sort_unstable();
        for (at, _, id) in model {
            prop_assert_eq!(q.pop(), Some((at, id)));
        }
        prop_assert_eq!(q.pop(), None);
    }

    /// Identical seeds yield identical streams; the substream derivation is
    /// label-stable.
    #[test]
    fn rng_determinism(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut s1 = a.substream(seed, &label);
        let mut s2 = b.substream(seed, &label);
        for _ in 0..8 {
            prop_assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }
}
