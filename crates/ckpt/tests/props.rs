//! Property-based tests: checkpoint images survive any roundtrip, and the
//! codec rejects arbitrary corruption rather than mis-decoding.

use bytes::Bytes;
use condor_ckpt::codec::{crc32, Decoder, Encoder};
use condor_ckpt::image::{CheckpointBuilder, CheckpointImage, FileMode, SegmentKind};
use condor_ckpt::store::CheckpointStore;
use proptest::prelude::*;

fn arb_segment_kind() -> impl Strategy<Value = SegmentKind> {
    prop_oneof![
        Just(SegmentKind::Text),
        Just(SegmentKind::Data),
        Just(SegmentKind::Bss),
        Just(SegmentKind::Stack),
    ]
}

fn arb_file_mode() -> impl Strategy<Value = FileMode> {
    prop_oneof![
        Just(FileMode::Read),
        Just(FileMode::Write),
        Just(FileMode::ReadWrite),
        Just(FileMode::Append),
    ]
}

prop_compose! {
    fn arb_image()(
        job_id in any::<u64>(),
        sequence in any::<u32>(),
        segments in prop::collection::vec(
            (arb_segment_kind(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..512)),
            0..6,
        ),
        pc in any::<u64>(),
        sp in any::<u64>(),
        gprs in prop::collection::vec(any::<u64>(), 0..32),
        files in prop::collection::vec(
            (any::<u32>(), "[a-zA-Z0-9/_.]{0,40}", arb_file_mode(), any::<u64>()),
            0..8,
        ),
    ) -> CheckpointImage {
        let mut b = CheckpointBuilder::new(job_id, sequence).registers(pc, sp, gprs);
        for (kind, base, payload) in segments {
            b = b.segment(kind, base, payload);
        }
        for (fd, path, mode, offset) in files {
            b = b.open_file(fd, path, mode, offset);
        }
        b.build().expect("no outstanding replies")
    }
}

proptest! {
    /// encode → decode is the identity for arbitrary images.
    #[test]
    fn image_roundtrip(img in arb_image()) {
        let frame = img.encode();
        let back = CheckpointImage::decode(frame).expect("decode");
        prop_assert_eq!(back, img);
    }

    /// Encoding is deterministic: equal images produce equal bytes.
    #[test]
    fn encoding_is_deterministic(img in arb_image()) {
        prop_assert_eq!(img.encode(), img.clone().encode());
    }

    /// Flipping any single bit of the frame is detected (never decodes to a
    /// *different* valid image).
    #[test]
    fn single_bitflip_never_silently_accepted(img in arb_image(), flip in any::<prop::sample::Index>()) {
        let frame = img.encode().to_vec();
        let bit = flip.index(frame.len() * 8);
        let mut corrupted = frame.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        if let Ok(decoded) = CheckpointImage::decode(Bytes::from(corrupted)) {
            // Only acceptable if the flip landed somewhere ignored and the
            // image is still byte-identical in meaning.
            prop_assert_eq!(decoded, img, "corruption produced a different image");
        } // rejected: good

    }

    /// Truncating the frame anywhere is always rejected.
    #[test]
    fn truncation_always_rejected(img in arb_image(), cut in any::<prop::sample::Index>()) {
        let frame = img.encode();
        let cut_at = cut.index(frame.len().max(1));
        if cut_at < frame.len() {
            let truncated = frame.slice(0..cut_at);
            prop_assert!(CheckpointImage::decode(truncated).is_err());
        }
    }

    /// Arbitrary garbage never decodes.
    #[test]
    fn garbage_never_decodes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // The odds of random bytes passing length, CRC, magic, and version
        // checks are negligible; assert rejection outright.
        prop_assert!(CheckpointImage::decode(Bytes::from(bytes)).is_err());
    }

    /// Varint roundtrip over the full u64 domain.
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut e = Encoder::new();
        e.put_varint(v);
        let mut d = Decoder::new(e.finish());
        prop_assert_eq!(d.get_varint("v").unwrap(), v);
        d.finish().unwrap();
    }

    /// Mixed field sequences roundtrip in order.
    #[test]
    fn field_sequence_roundtrip(
        strings in prop::collection::vec("[\\PC]{0,20}", 0..8),
        blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8),
    ) {
        let mut e = Encoder::new();
        for s in &strings { e.put_str(s); }
        for b in &blobs { e.put_bytes(b); }
        let mut d = Decoder::new(e.finish());
        for s in &strings {
            prop_assert_eq!(&d.get_str("s").unwrap(), s);
        }
        for b in &blobs {
            let got = d.get_bytes("b").unwrap();
            prop_assert_eq!(got.as_ref(), b.as_slice());
        }
        d.finish().unwrap();
    }

    /// CRC differs for different payloads almost surely; identical payloads
    /// always match.
    #[test]
    fn crc_consistency(a in prop::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(crc32(&a), crc32(&a.clone()));
    }

    /// Store capacity accounting: used() equals the sum of stored frame
    /// sizes after any sequence of puts and removes.
    #[test]
    fn store_accounting_is_exact(ops in prop::collection::vec((0u64..8, 0usize..300, any::<bool>()), 1..40)) {
        let mut store = CheckpointStore::new(1 << 22);
        let mut seqs = std::collections::HashMap::new();
        let mut expected: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (job, len, remove) in ops {
            if remove {
                let freed = store.remove(job);
                if let Some(f) = freed {
                    prop_assert_eq!(f, expected.remove(&job).unwrap());
                } else {
                    prop_assert!(!expected.contains_key(&job));
                }
            } else {
                let seq = seqs.entry(job).and_modify(|s| *s += 1).or_insert(1u32);
                let img = CheckpointBuilder::new(job, *seq)
                    .segment(SegmentKind::Data, 0, vec![1u8; len])
                    .build()
                    .unwrap();
                store.put(&img).unwrap();
                expected.insert(job, img.size_bytes());
            }
            let total: u64 = expected.values().sum();
            prop_assert_eq!(store.used(), total);
            prop_assert_eq!(store.len(), expected.len());
        }
    }
}

// ---------------------------------------------------------------------------
// Delta checkpoints

use condor_ckpt::delta::Delta;

prop_compose! {
    /// A pair of same-job images where the second mutates, grows, or
    /// shrinks the first's segments.
    fn arb_image_pair()(
        base_data in prop::collection::vec(any::<u8>(), 0..20_000),
        mutations in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..20),
        resize in -5_000i64..5_000,
        stack in prop::collection::vec(any::<u8>(), 0..4_096),
    ) -> (CheckpointImage, CheckpointImage) {
        let base = CheckpointBuilder::new(11, 1)
            .segment(SegmentKind::Text, 0, vec![0x90u8; 8_192])
            .segment(SegmentKind::Data, 0x10_000, base_data.clone())
            .segment(SegmentKind::Stack, 0xF0_000, stack.clone())
            .registers(1, 2, vec![3, 4])
            .open_file(3, "/u/x", FileMode::Append, 100)
            .build()
            .unwrap();
        let mut new_data = base_data;
        for (idx, byte) in mutations {
            if !new_data.is_empty() {
                let i = idx.index(new_data.len());
                new_data[i] = byte;
            }
        }
        let new_len = (new_data.len() as i64 + resize).max(0) as usize;
        new_data.resize(new_len, 0xEE);
        let new = CheckpointBuilder::new(11, 2)
            .segment(SegmentKind::Text, 0, vec![0x90u8; 8_192])
            .segment(SegmentKind::Data, 0x10_000, new_data)
            .segment(SegmentKind::Stack, 0xF0_000, stack)
            .registers(9, 8, vec![7])
            .open_file(3, "/u/x", FileMode::Append, 200)
            .build()
            .unwrap();
        (base, new)
    }
}

proptest! {
    /// apply(diff(base, new), base) == new, for arbitrary mutations,
    /// growth, and shrinkage.
    #[test]
    fn delta_roundtrip((base, new) in arb_image_pair()) {
        let delta = Delta::diff(&base, &new);
        let rebuilt = delta.apply(&base).expect("apply");
        prop_assert_eq!(rebuilt, new);
    }

    /// Deltas survive their own encode/decode.
    #[test]
    fn delta_encoding_roundtrip((base, new) in arb_image_pair()) {
        let delta = Delta::diff(&base, &new);
        let decoded = Delta::decode(delta.encode()).expect("decode");
        prop_assert_eq!(&decoded, &delta);
        prop_assert_eq!(decoded.apply(&base).expect("apply"), new);
    }

    /// A delta is never (much) larger than the full image it replaces, and
    /// identical images produce near-empty deltas.
    #[test]
    fn delta_size_is_bounded((base, new) in arb_image_pair()) {
        let delta = Delta::diff(&base, &new);
        prop_assert!(delta.encoded_size() <= new.size_bytes() + 1_024);
    }
}
