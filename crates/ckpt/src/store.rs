//! Checkpoint storage with disk-capacity accounting.
//!
//! Paper §4 is largely about disk space: checkpoint files live on the
//! *submitting* workstation's disk, a full disk blocks placements, and the
//! number of simultaneously running background jobs is limited by the space
//! their checkpoints need. [`CheckpointStore`] models exactly that — a
//! fixed-capacity volume holding the latest image per job — and exposes the
//! occupancy numbers the scheduler needs for its placement decisions.
//!
//! Only the most recent checkpoint per job is retained (restoring an old
//! sequence would repeat work the job already completed); replacing an image
//! frees the old one's space first, and a store refuses writes that would
//! exceed its capacity.

use std::collections::HashMap;

use bytes::Bytes;

use crate::error::StoreError;
use crate::image::CheckpointImage;

/// A fixed-capacity checkpoint volume, keyed by job id.
///
/// # Examples
///
/// ```
/// use condor_ckpt::image::CheckpointBuilder;
/// use condor_ckpt::store::CheckpointStore;
///
/// let mut store = CheckpointStore::new(1 << 20);
/// let img = CheckpointBuilder::new(1, 1).build().unwrap();
/// store.put(&img)?;
/// let restored = store.get(1)?;
/// assert_eq!(restored.job_id(), 1);
/// # Ok::<(), condor_ckpt::error::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    capacity: u64,
    used: u64,
    images: HashMap<u64, StoredImage>,
    puts: u64,
    rejected_full: u64,
}

#[derive(Debug, Clone)]
struct StoredImage {
    sequence: u32,
    frame: Bytes,
}

impl CheckpointStore {
    /// Creates an empty store with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        CheckpointStore {
            capacity,
            used: 0,
            images: HashMap::new(),
            puts: 0,
            rejected_full: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied by stored images.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of distinct jobs with a stored checkpoint.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// `true` when no checkpoints are stored.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Whether an image of `size` bytes would fit right now, accounting for
    /// the space freed by replacing job `job_id`'s existing image (if any).
    pub fn would_fit(&self, job_id: u64, size: u64) -> bool {
        let freed = self.images.get(&job_id).map_or(0, |s| s.frame.len() as u64);
        size <= self.capacity - self.used + freed
    }

    /// Stores (or replaces) the checkpoint for the image's job.
    ///
    /// Replacement is atomic with respect to capacity: the old image's
    /// space is reclaimed as part of the same operation, so a store sized
    /// for one image can hold successive checkpoints of the same job. A
    /// stale image (sequence lower than the one stored) is rejected as
    /// corrupt bookkeeping in debug builds and ignored in release builds.
    ///
    /// # Errors
    ///
    /// [`StoreError::DiskFull`] when the image does not fit even after
    /// reclaiming the replaced one.
    pub fn put(&mut self, image: &CheckpointImage) -> Result<(), StoreError> {
        let frame = image.encode();
        let size = frame.len() as u64;
        let freed = self
            .images
            .get(&image.job_id())
            .map_or(0, |s| s.frame.len() as u64);
        if let Some(existing) = self.images.get(&image.job_id()) {
            debug_assert!(
                existing.sequence <= image.sequence(),
                "storing checkpoint seq {} over newer seq {}",
                image.sequence(),
                existing.sequence,
            );
            if existing.sequence > image.sequence() {
                return Ok(()); // never clobber a newer checkpoint
            }
        }
        if size > self.capacity - self.used + freed {
            self.rejected_full += 1;
            return Err(StoreError::DiskFull {
                needed: size,
                available: self.capacity - self.used + freed,
            });
        }
        self.used = self.used - freed + size;
        self.images.insert(
            image.job_id(),
            StoredImage {
                sequence: image.sequence(),
                frame,
            },
        );
        self.puts += 1;
        Ok(())
    }

    /// Retrieves and decodes the latest checkpoint for `job_id`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when no image is stored, or
    /// [`StoreError::Corrupt`] if the stored frame fails validation.
    pub fn get(&self, job_id: u64) -> Result<CheckpointImage, StoreError> {
        let stored = self.images.get(&job_id).ok_or_else(|| StoreError::NotFound {
            key: format!("job {job_id}"),
        })?;
        Ok(CheckpointImage::decode(stored.frame.clone())?)
    }

    /// The stored sequence number for `job_id`, if any.
    pub fn sequence_of(&self, job_id: u64) -> Option<u32> {
        self.images.get(&job_id).map(|s| s.sequence)
    }

    /// Removes the checkpoint for `job_id` (e.g. when the job completes),
    /// returning the bytes freed.
    pub fn remove(&mut self, job_id: u64) -> Option<u64> {
        self.images.remove(&job_id).map(|s| {
            let freed = s.frame.len() as u64;
            self.used -= freed;
            freed
        })
    }

    /// Total successful writes over the store's lifetime.
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// Writes rejected because the volume was full.
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full
    }

    /// Job ids with stored checkpoints, in unspecified order.
    pub fn job_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.images.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{CheckpointBuilder, SegmentKind};

    fn image(job: u64, seq: u32, payload_len: usize) -> CheckpointImage {
        CheckpointBuilder::new(job, seq)
            .segment(SegmentKind::Data, 0, vec![7u8; payload_len])
            .build()
            .unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = CheckpointStore::new(10_000);
        let img = image(1, 1, 100);
        s.put(&img).unwrap();
        assert_eq!(s.get(1).unwrap(), img);
        assert_eq!(s.len(), 1);
        assert_eq!(s.sequence_of(1), Some(1));
        assert!(s.used() > 100);
        assert_eq!(s.puts(), 1);
    }

    #[test]
    fn get_missing_is_not_found() {
        let s = CheckpointStore::new(100);
        match s.get(9) {
            Err(StoreError::NotFound { key }) => assert!(key.contains('9')),
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn replacement_reclaims_space() {
        let first = image(1, 1, 500);
        let capacity = first.size_bytes() + 64; // room for one image plus slack
        let mut s = CheckpointStore::new(capacity);
        s.put(&first).unwrap();
        let used_after_first = s.used();
        // A same-size successor must fit by reclaiming the original.
        s.put(&image(1, 2, 500)).unwrap();
        assert_eq!(s.used(), used_after_first);
        assert_eq!(s.sequence_of(1), Some(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn disk_full_rejected_and_counted() {
        let img = image(1, 1, 300);
        let mut s = CheckpointStore::new(img.size_bytes() - 1);
        match s.put(&img) {
            Err(StoreError::DiskFull { needed, available }) => {
                assert!(needed > available);
            }
            other => panic!("expected DiskFull, got {other:?}"),
        }
        assert_eq!(s.rejected_full(), 1);
        assert_eq!(s.len(), 0);
        assert_eq!(s.used(), 0);
    }

    #[test]
    fn would_fit_accounts_for_replacement() {
        let img = image(1, 1, 400);
        let size = img.size_bytes();
        let mut s = CheckpointStore::new(size);
        assert!(s.would_fit(1, size));
        s.put(&img).unwrap();
        // No room for a second job...
        assert!(!s.would_fit(2, size));
        // ...but the same job can checkpoint again.
        assert!(s.would_fit(1, size));
    }

    #[test]
    fn remove_frees_space() {
        let mut s = CheckpointStore::new(100_000);
        s.put(&image(1, 1, 100)).unwrap();
        s.put(&image(2, 1, 100)).unwrap();
        let freed = s.remove(1).expect("was stored");
        assert!(freed > 100);
        assert_eq!(s.len(), 1);
        assert!(s.get(1).is_err());
        assert!(s.get(2).is_ok());
        assert_eq!(s.remove(1), None);
    }

    #[test]
    fn stale_sequence_never_clobbers_newer() {
        let mut s = CheckpointStore::new(100_000);
        s.put(&image(1, 5, 100)).unwrap();
        // Debug builds assert; emulate release behaviour via catch_unwind.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.put(&image(1, 3, 100));
        }));
        if result.is_ok() {
            // Release build: silently ignored.
            assert_eq!(s.sequence_of(1), Some(5));
        }
    }

    #[test]
    fn multiple_jobs_tracked_independently() {
        let mut s = CheckpointStore::new(1 << 20);
        for job in 0..10 {
            s.put(&image(job, 1, 64)).unwrap();
        }
        assert_eq!(s.len(), 10);
        let mut ids: Vec<u64> = s.job_ids().collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert_eq!(s.available(), s.capacity() - s.used());
    }
}
