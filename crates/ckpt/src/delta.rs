//! Delta checkpoints: ship only what changed.
//!
//! §4 of the paper worries about the cost of placing and checkpointing
//! images ("our implementation does not try to place or checkpoint several
//! jobs simultaneously") and floats periodic checkpointing as a strategy —
//! which multiplies transfer volume. A classic remedy (adopted by later
//! checkpointing systems) is the **delta checkpoint**: against the previous
//! image, only changed blocks travel.
//!
//! A [`Delta`] is computed per segment at fixed block granularity: blocks
//! equal to the base image are encoded as references, changed blocks as
//! literals. Text segments (immutable during execution) therefore cost a
//! few bytes; a long-running simulation that touches a fraction of its data
//! segment ships only that fraction.
//!
//! `apply(diff(base, new), base) == new` is enforced by property tests.

use bytes::Bytes;

use crate::codec::{Decoder, Encoder};
use crate::error::DecodeError;
use crate::image::{CheckpointImage, SegmentKind};

/// Block granularity of the differ (4 KiB, a period page size).
pub const BLOCK: usize = 4096;

/// Magic bytes of an encoded delta ("CKDL").
pub const DELTA_MAGIC: [u8; 4] = *b"CKDL";

/// One segment's delta: a block map plus literal data.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SegmentDelta {
    kind: SegmentKind,
    base: u64,
    /// New payload length in bytes.
    new_len: u64,
    /// Per-block instructions, one per block of the new payload:
    /// `true` = copy from base at the same offset, `false` = take the next
    /// literal run.
    copy_from_base: Vec<bool>,
    /// Concatenated literal blocks (in order).
    literals: Bytes,
}

/// A delta between two checkpoint images of the same job.
///
/// # Examples
///
/// ```
/// use condor_ckpt::delta::Delta;
/// use condor_ckpt::image::{CheckpointBuilder, SegmentKind};
///
/// let base = CheckpointBuilder::new(1, 1)
///     .segment(SegmentKind::Data, 0, vec![0u8; 40_960])
///     .build()
///     .unwrap();
/// let mut changed = vec![0u8; 40_960];
/// changed[5_000] = 7; // one page touched
/// let new = CheckpointBuilder::new(1, 2)
///     .segment(SegmentKind::Data, 0, changed)
///     .build()
///     .unwrap();
///
/// let delta = Delta::diff(&base, &new);
/// assert!(delta.encoded_size() < new.size_bytes() / 2);
/// assert_eq!(delta.apply(&base).unwrap(), new);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    job_id: u64,
    base_sequence: u32,
    new_sequence: u32,
    segments: Vec<SegmentDelta>,
    /// Registers and open files are tiny; always carried verbatim as the
    /// re-encoded remainder of the new image.
    registers_and_files: Bytes,
}

impl Delta {
    /// Computes the delta from `base` to `new`.
    ///
    /// # Panics
    ///
    /// Panics if the images belong to different jobs — a delta across jobs
    /// is always a logic error.
    pub fn diff(base: &CheckpointImage, new: &CheckpointImage) -> Delta {
        assert_eq!(
            base.job_id(),
            new.job_id(),
            "delta across different jobs ({} vs {})",
            base.job_id(),
            new.job_id()
        );
        let mut segments = Vec::with_capacity(new.segments().len());
        for seg in new.segments() {
            let base_payload = base
                .segment(seg.kind())
                .filter(|b| b.base() == seg.base())
                .map(|b| b.payload().as_ref())
                .unwrap_or(&[]);
            let payload = seg.payload().as_ref();
            let n_blocks = payload.len().div_ceil(BLOCK);
            let mut copy_from_base = Vec::with_capacity(n_blocks);
            let mut literals = Vec::new();
            for b in 0..n_blocks {
                let lo = b * BLOCK;
                let hi = (lo + BLOCK).min(payload.len());
                let same = base_payload.len() >= hi && base_payload[lo..hi] == payload[lo..hi];
                copy_from_base.push(same);
                if !same {
                    literals.extend_from_slice(&payload[lo..hi]);
                }
            }
            segments.push(SegmentDelta {
                kind: seg.kind(),
                base: seg.base(),
                new_len: payload.len() as u64,
                copy_from_base,
                literals: Bytes::from(literals),
            });
        }
        // Re-encode registers + open files by building a segment-free twin
        // image; cheap because those tables are tiny.
        let mut meta = Encoder::new();
        encode_meta(new, &mut meta);
        Delta {
            job_id: new.job_id(),
            base_sequence: base.sequence(),
            new_sequence: new.sequence(),
            segments,
            registers_and_files: meta.finish(),
        }
    }

    /// Reconstructs the new image from `base`.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] when the delta does not match the base (wrong job,
    /// wrong base sequence, or base segments shorter than referenced).
    pub fn apply(&self, base: &CheckpointImage) -> Result<CheckpointImage, DecodeError> {
        if base.job_id() != self.job_id {
            return Err(DecodeError::InvalidDiscriminant {
                what: "delta job id",
                value: base.job_id(),
            });
        }
        if base.sequence() != self.base_sequence {
            return Err(DecodeError::InvalidDiscriminant {
                what: "delta base sequence",
                value: u64::from(base.sequence()),
            });
        }
        let mut builder = crate::image::CheckpointBuilder::new(self.job_id, self.new_sequence);
        for sd in &self.segments {
            let base_payload = base
                .segment(sd.kind)
                .filter(|b| b.base() == sd.base)
                .map(|b| b.payload().as_ref())
                .unwrap_or(&[]);
            let mut payload = Vec::with_capacity(sd.new_len as usize);
            let mut lit_cursor = 0usize;
            for (b, &copy) in sd.copy_from_base.iter().enumerate() {
                let lo = b * BLOCK;
                let hi = ((b + 1) * BLOCK).min(sd.new_len as usize);
                if copy {
                    if base_payload.len() < hi {
                        return Err(DecodeError::UnexpectedEof {
                            context: "delta base segment",
                        });
                    }
                    payload.extend_from_slice(&base_payload[lo..hi]);
                } else {
                    let len = hi - lo;
                    if self_literals_short(&sd.literals, lit_cursor, len) {
                        return Err(DecodeError::UnexpectedEof {
                            context: "delta literals",
                        });
                    }
                    payload.extend_from_slice(&sd.literals[lit_cursor..lit_cursor + len]);
                    lit_cursor += len;
                }
            }
            builder = builder.segment(sd.kind, sd.base, payload);
        }
        // Registers and open files.
        let mut d = Decoder::new(self.registers_and_files.clone());
        let (pc, sp, gprs, files) = decode_meta(&mut d)?;
        builder = builder.registers(pc, sp, gprs);
        for f in files {
            builder = builder.open_file(f.fd, f.path, f.mode, f.offset);
        }
        Ok(builder.build().expect("applied delta is quiescent"))
    }

    /// The job both images belong to.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Sequence of the required base image.
    pub fn base_sequence(&self) -> u32 {
        self.base_sequence
    }

    /// Sequence of the image this delta produces.
    pub fn new_sequence(&self) -> u32 {
        self.new_sequence
    }

    /// Bytes of literal (changed) data carried.
    pub fn literal_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.literals.len() as u64).sum()
    }

    /// Serialises the delta into a checksummed frame.
    pub fn encode(&self) -> Bytes {
        let mut e = Encoder::with_capacity(64 + self.literal_bytes() as usize);
        e.put_raw(&DELTA_MAGIC);
        e.put_varint(self.job_id);
        e.put_varint(u64::from(self.base_sequence));
        e.put_varint(u64::from(self.new_sequence));
        e.put_varint(self.segments.len() as u64);
        for s in &self.segments {
            e.put_varint(match s.kind {
                SegmentKind::Text => 0,
                SegmentKind::Data => 1,
                SegmentKind::Bss => 2,
                SegmentKind::Stack => 3,
            });
            e.put_varint(s.base);
            e.put_varint(s.new_len);
            // Bitmap, packed.
            e.put_varint(s.copy_from_base.len() as u64);
            let mut packed = vec![0u8; s.copy_from_base.len().div_ceil(8)];
            for (i, &c) in s.copy_from_base.iter().enumerate() {
                if c {
                    packed[i / 8] |= 1 << (i % 8);
                }
            }
            e.put_bytes(&packed);
            e.put_bytes(&s.literals);
        }
        e.put_bytes(&self.registers_and_files);
        e.finish_frame()
    }

    /// Size of the encoded delta (for transfer-cost comparisons).
    pub fn encoded_size(&self) -> u64 {
        self.encode().len() as u64
    }

    /// Decodes a delta frame.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on corruption or malformed structure.
    pub fn decode(frame: Bytes) -> Result<Delta, DecodeError> {
        let mut d = Decoder::from_frame(frame)?;
        let magic = d.get_raw(4, "delta magic")?;
        if magic.as_ref() != DELTA_MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&magic);
            return Err(DecodeError::BadMagic { found });
        }
        let job_id = d.get_varint("job id")?;
        let base_sequence = d.get_varint("base seq")? as u32;
        let new_sequence = d.get_varint("new seq")? as u32;
        let n = d.get_varint("segment count")?;
        if n > 64 {
            return Err(DecodeError::LengthOutOfBounds { len: n, max: 64 });
        }
        let mut segments = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let kind = match d.get_varint("kind")? {
                0 => SegmentKind::Text,
                1 => SegmentKind::Data,
                2 => SegmentKind::Bss,
                3 => SegmentKind::Stack,
                v => {
                    return Err(DecodeError::InvalidDiscriminant {
                        what: "SegmentKind",
                        value: v,
                    })
                }
            };
            let base = d.get_varint("base addr")?;
            let new_len = d.get_varint("new len")?;
            let n_blocks = d.get_varint("block count")? as usize;
            if n_blocks != (new_len as usize).div_ceil(BLOCK) {
                return Err(DecodeError::LengthOutOfBounds {
                    len: n_blocks as u64,
                    max: (new_len as usize).div_ceil(BLOCK) as u64,
                });
            }
            let packed = d.get_bytes("block bitmap")?;
            if packed.len() != n_blocks.div_ceil(8) {
                return Err(DecodeError::UnexpectedEof { context: "block bitmap" });
            }
            let copy_from_base: Vec<bool> =
                (0..n_blocks).map(|i| packed[i / 8] & (1 << (i % 8)) != 0).collect();
            let literals = d.get_bytes("literals")?;
            segments.push(SegmentDelta {
                kind,
                base,
                new_len,
                copy_from_base,
                literals,
            });
        }
        let registers_and_files = d.get_bytes("meta")?;
        d.finish()?;
        Ok(Delta {
            job_id,
            base_sequence,
            new_sequence,
            segments,
            registers_and_files,
        })
    }
}

fn self_literals_short(lit: &Bytes, cursor: usize, len: usize) -> bool {
    lit.len() < cursor + len
}

fn encode_meta(img: &CheckpointImage, e: &mut Encoder) {
    let regs = img.registers();
    e.put_varint(regs.pc);
    e.put_varint(regs.sp);
    e.put_varint(regs.gprs.len() as u64);
    for &g in &regs.gprs {
        e.put_varint(g);
    }
    e.put_varint(img.open_files().len() as u64);
    for f in img.open_files() {
        e.put_varint(u64::from(f.fd));
        e.put_str(&f.path);
        e.put_varint(match f.mode {
            crate::image::FileMode::Read => 0,
            crate::image::FileMode::Write => 1,
            crate::image::FileMode::ReadWrite => 2,
            crate::image::FileMode::Append => 3,
        });
        e.put_varint(f.offset);
    }
}

type Meta = (u64, u64, Vec<u64>, Vec<crate::image::OpenFile>);

fn decode_meta(d: &mut Decoder) -> Result<Meta, DecodeError> {
    let pc = d.get_varint("pc")?;
    let sp = d.get_varint("sp")?;
    let n = d.get_varint("gprs")?;
    if n > 4096 {
        return Err(DecodeError::LengthOutOfBounds { len: n, max: 4096 });
    }
    let mut gprs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        gprs.push(d.get_varint("gpr")?);
    }
    let nf = d.get_varint("files")?;
    if nf > 65_536 {
        return Err(DecodeError::LengthOutOfBounds { len: nf, max: 65_536 });
    }
    let mut files = Vec::with_capacity(nf as usize);
    for _ in 0..nf {
        let fd = d.get_varint("fd")? as u32;
        let path = d.get_str("path")?;
        let mode = match d.get_varint("mode")? {
            0 => crate::image::FileMode::Read,
            1 => crate::image::FileMode::Write,
            2 => crate::image::FileMode::ReadWrite,
            3 => crate::image::FileMode::Append,
            v => {
                return Err(DecodeError::InvalidDiscriminant {
                    what: "FileMode",
                    value: v,
                })
            }
        };
        let offset = d.get_varint("offset")?;
        files.push(crate::image::OpenFile::new(fd, path, mode, offset));
    }
    if d.remaining() > 0 {
        return Err(DecodeError::TrailingBytes { remaining: d.remaining() });
    }
    Ok((pc, sp, gprs, files))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{CheckpointBuilder, FileMode};

    fn image(seq: u32, data: Vec<u8>, stack: Vec<u8>) -> CheckpointImage {
        CheckpointBuilder::new(7, seq)
            .segment(SegmentKind::Text, 0, vec![0x90; 10_000])
            .segment(SegmentKind::Data, 0x10_000, data)
            .segment(SegmentKind::Stack, 0xF0_000, stack)
            .registers(seq as u64 * 100, 0xFF, vec![1, 2, 3])
            .open_file(3, "/u/out.dat", FileMode::Append, u64::from(seq) * 512)
            .build()
            .unwrap()
    }

    #[test]
    fn identical_images_produce_tiny_delta() {
        let base = image(1, vec![5u8; 100_000], vec![9u8; 20_000]);
        let new = image(2, vec![5u8; 100_000], vec![9u8; 20_000]);
        let delta = Delta::diff(&base, &new);
        assert_eq!(delta.literal_bytes(), 0);
        assert!(delta.encoded_size() < 500, "delta {} bytes", delta.encoded_size());
        assert_eq!(delta.apply(&base).unwrap(), new);
    }

    #[test]
    fn single_page_change_ships_one_block() {
        let base = image(1, vec![5u8; 100_000], vec![9u8; 20_000]);
        let mut data = vec![5u8; 100_000];
        data[50_123] = 42;
        let new = image(2, data, vec![9u8; 20_000]);
        let delta = Delta::diff(&base, &new);
        assert_eq!(delta.literal_bytes(), BLOCK as u64);
        assert_eq!(delta.apply(&base).unwrap(), new);
        // Versus ~130 kB full image.
        assert!(delta.encoded_size() < 6_000);
    }

    #[test]
    fn growth_and_shrink_roundtrip() {
        let base = image(1, vec![1u8; 10_000], vec![2u8; 5_000]);
        // Data grows, stack shrinks.
        let new = image(2, vec![1u8; 50_000], vec![2u8; 1_000]);
        let delta = Delta::diff(&base, &new);
        assert_eq!(delta.apply(&base).unwrap(), new);
        // Shrink-only:
        let smaller = image(3, vec![1u8; 4_000], vec![2u8; 100]);
        let d2 = Delta::diff(&new, &smaller);
        assert_eq!(d2.apply(&new).unwrap(), smaller);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let base = image(1, vec![3u8; 30_000], vec![4u8; 8_000]);
        let mut data = vec![3u8; 30_000];
        for i in (0..30_000).step_by(7_000) {
            data[i] ^= 0xFF;
        }
        let new = image(2, data, vec![4u8; 8_000]);
        let delta = Delta::diff(&base, &new);
        let decoded = Delta::decode(delta.encode()).unwrap();
        assert_eq!(decoded, delta);
        assert_eq!(decoded.apply(&base).unwrap(), new);
    }

    #[test]
    fn wrong_base_is_rejected() {
        let base1 = image(1, vec![1u8; 10_000], vec![0u8; 100]);
        let base2 = image(5, vec![2u8; 10_000], vec![0u8; 100]);
        let new = image(2, vec![1u8; 10_000], vec![0u8; 100]);
        let delta = Delta::diff(&base1, &new);
        assert!(delta.apply(&base2).is_err(), "wrong sequence must fail");
        let other_job = CheckpointBuilder::new(99, 1).build().unwrap();
        assert!(delta.apply(&other_job).is_err(), "wrong job must fail");
    }

    #[test]
    #[should_panic(expected = "delta across different jobs")]
    fn diff_across_jobs_panics() {
        let a = CheckpointBuilder::new(1, 1).build().unwrap();
        let b = CheckpointBuilder::new(2, 1).build().unwrap();
        let _ = Delta::diff(&a, &b);
    }

    #[test]
    fn corrupt_delta_frame_rejected() {
        let base = image(1, vec![1u8; 10_000], vec![0u8; 100]);
        let new = image(2, vec![2u8; 10_000], vec![0u8; 100]);
        let mut bytes = Delta::diff(&base, &new).encode().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(Delta::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn accessors() {
        let base = image(3, vec![0u8; 100], vec![0u8; 100]);
        let new = image(4, vec![1u8; 100], vec![0u8; 100]);
        let d = Delta::diff(&base, &new);
        assert_eq!(d.job_id(), 7);
        assert_eq!(d.base_sequence(), 3);
        assert_eq!(d.new_sequence(), 4);
        assert!(d.literal_bytes() > 0);
    }
}
