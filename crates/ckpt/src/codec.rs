//! A small, self-describing binary codec for checkpoint images.
//!
//! The 1988 implementation wrote raw `a.out` core segments to disk; we keep
//! the same spirit — a compact binary format with no external schema — but
//! add the robustness a modern library needs: explicit magic/version,
//! varint-compressed integers, length-prefixed byte fields with sanity
//! bounds, and a CRC-32 frame checksum so truncated or bit-flipped images
//! are rejected instead of restoring a corrupt process.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::DecodeError;

/// Sanity bound on any single length field (1 GiB). A VAXstation II had a
/// few megabytes of memory; even generous modern images stay far below this.
pub const MAX_FIELD_LEN: u64 = 1 << 30;

/// Encoder half of the codec: a thin, append-only wrapper over `BytesMut`.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: BytesMut::new() }
    }

    /// Creates an encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Appends a fixed-width little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Appends a fixed-width little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Appends a length-prefixed byte field.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.put_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes encoding, returning the immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Finishes encoding into a checksummed frame: `payload-len (u32) ||
    /// crc32(payload) (u32) || payload`. The matching reader is
    /// [`Decoder::from_frame`].
    pub fn finish_frame(self) -> Bytes {
        let payload = self.buf.freeze();
        let mut framed = BytesMut::with_capacity(payload.len() + 8);
        framed.put_u32_le(payload.len() as u32);
        framed.put_u32_le(crc32(&payload));
        framed.put_slice(&payload);
        framed.freeze()
    }
}

/// Decoder half of the codec.
#[derive(Debug)]
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Wraps a raw (unframed) buffer.
    pub fn new(buf: Bytes) -> Self {
        Decoder { buf }
    }

    /// Opens a checksummed frame produced by [`Encoder::finish_frame`],
    /// verifying length and CRC before any field is decoded.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if the frame header or payload
    /// is truncated, and [`DecodeError::ChecksumMismatch`] on corruption.
    pub fn from_frame(mut framed: Bytes) -> Result<Self, DecodeError> {
        if framed.remaining() < 8 {
            return Err(DecodeError::UnexpectedEof { context: "frame header" });
        }
        let len = framed.get_u32_le() as usize;
        let expected = framed.get_u32_le();
        if framed.remaining() < len {
            return Err(DecodeError::UnexpectedEof { context: "frame payload" });
        }
        let payload = framed.split_to(len);
        let actual = crc32(&payload);
        if actual != expected {
            return Err(DecodeError::ChecksumMismatch { expected, actual });
        }
        Ok(Decoder { buf: payload })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Fails with [`DecodeError::TrailingBytes`] unless fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.buf.has_remaining() {
            Err(DecodeError::TrailingBytes {
                remaining: self.buf.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] when fewer than `n` bytes remain.
    pub fn get_raw(&mut self, n: usize, context: &'static str) -> Result<Bytes, DecodeError> {
        if self.buf.remaining() < n {
            return Err(DecodeError::UnexpectedEof { context });
        }
        Ok(self.buf.split_to(n))
    }

    /// Reads a fixed-width little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] on truncation.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, DecodeError> {
        if self.buf.remaining() < 2 {
            return Err(DecodeError::UnexpectedEof { context });
        }
        Ok(self.buf.get_u16_le())
    }

    /// Reads a fixed-width little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] on truncation.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        if self.buf.remaining() < 4 {
            return Err(DecodeError::UnexpectedEof { context });
        }
        Ok(self.buf.get_u32_le())
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] on truncation,
    /// [`DecodeError::VarintOverflow`] past 64 bits.
    pub fn get_varint(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        let mut shift = 0u32;
        let mut out = 0u64;
        loop {
            if !self.buf.has_remaining() {
                return Err(DecodeError::UnexpectedEof { context });
            }
            let byte = self.buf.get_u8();
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(DecodeError::VarintOverflow);
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Reads a length-prefixed byte field, enforcing [`MAX_FIELD_LEN`].
    ///
    /// # Errors
    ///
    /// Propagates varint errors, [`DecodeError::LengthOutOfBounds`] when the
    /// prefix exceeds the sanity bound, and
    /// [`DecodeError::UnexpectedEof`] when the payload is truncated.
    pub fn get_bytes(&mut self, context: &'static str) -> Result<Bytes, DecodeError> {
        let len = self.get_varint(context)?;
        if len > MAX_FIELD_LEN {
            return Err(DecodeError::LengthOutOfBounds { len, max: MAX_FIELD_LEN });
        }
        self.get_raw(len as usize, context)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// As for [`Decoder::get_bytes`], plus [`DecodeError::InvalidUtf8`].
    pub fn get_str(&mut self, context: &'static str) -> Result<String, DecodeError> {
        let raw = self.get_bytes(context)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    // Build the table once.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut e = Encoder::new();
            e.put_varint(v);
            let mut d = Decoder::new(e.finish());
            assert_eq!(d.get_varint("v").unwrap(), v);
            d.finish().unwrap();
        }
    }

    #[test]
    fn varint_is_compact() {
        let mut e = Encoder::new();
        e.put_varint(5);
        assert_eq!(e.len(), 1);
        let mut e = Encoder::new();
        e.put_varint(300);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn varint_overflow_rejected() {
        // Eleven continuation bytes encode more than 64 bits.
        let bad = Bytes::from_static(&[0xFF; 11]);
        let mut d = Decoder::new(bad);
        assert_eq!(d.get_varint("x"), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn varint_truncation_rejected() {
        let bad = Bytes::from_static(&[0x80]); // continuation with no next byte
        let mut d = Decoder::new(bad);
        assert_eq!(
            d.get_varint("trunc"),
            Err(DecodeError::UnexpectedEof { context: "trunc" })
        );
    }

    #[test]
    fn string_and_bytes_roundtrip() {
        let mut e = Encoder::new();
        e.put_str("héllo wörld");
        e.put_bytes(&[1, 2, 3]);
        e.put_u32(0xDEAD_BEEF);
        e.put_u16(42);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_str("s").unwrap(), "héllo wörld");
        assert_eq!(d.get_bytes("b").unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(d.get_u32("u").unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u16("w").unwrap(), 42);
        d.finish().unwrap();
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xFF, 0xFE]);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_str("s"), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut e = Encoder::new();
        e.put_varint(MAX_FIELD_LEN + 1);
        let mut d = Decoder::new(e.finish());
        assert!(matches!(
            d.get_bytes("big"),
            Err(DecodeError::LengthOutOfBounds { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.put_varint(1);
        e.put_raw(&[9, 9]);
        let mut d = Decoder::new(e.finish());
        d.get_varint("v").unwrap();
        assert_eq!(d.finish(), Err(DecodeError::TrailingBytes { remaining: 2 }));
    }

    #[test]
    fn frame_roundtrip() {
        let mut e = Encoder::new();
        e.put_str("payload");
        let framed = e.finish_frame();
        let mut d = Decoder::from_frame(framed).unwrap();
        assert_eq!(d.get_str("p").unwrap(), "payload");
        d.finish().unwrap();
    }

    #[test]
    fn frame_detects_corruption() {
        let mut e = Encoder::new();
        e.put_str("payload");
        let framed = e.finish_frame();
        let mut bytes = framed.to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        match Decoder::from_frame(Bytes::from(bytes)) {
            Err(DecodeError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn frame_detects_truncation() {
        let mut e = Encoder::new();
        e.put_bytes(&[0u8; 100]);
        let framed = e.finish_frame();
        let truncated = framed.slice(0..framed.len() - 10);
        assert!(matches!(
            Decoder::from_frame(truncated),
            Err(DecodeError::UnexpectedEof { .. })
        ));
        let tiny = framed.slice(0..4);
        assert!(matches!(
            Decoder::from_frame(tiny),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encoder_capacity_and_empty() {
        let e = Encoder::with_capacity(64);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}
