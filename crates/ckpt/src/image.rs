//! The checkpoint image: everything needed to restart a job elsewhere.
//!
//! Paper §2.3: *"The state of an RU program is the text, data, bss, and the
//! stack segments of the program, the registers, the status of open files,
//! and any messages sent by the program to its shadow for which a reply has
//! not been received."* Condor sidesteps the last item by deferring the
//! checkpoint until all shadow replies have arrived; we encode that rule in
//! [`CheckpointBuilder::build`], which refuses to produce an image while
//! replies are outstanding.
//!
//! The text segment is included even though it is immutable (paper §2.3):
//! jobs may run for months, and the user must be free to recompile the
//! executable while an old copy is still running remotely.

use bytes::Bytes;

use crate::codec::{Decoder, Encoder};
use crate::error::DecodeError;

/// Magic bytes at the start of every checkpoint image ("CKPT").
pub const MAGIC: [u8; 4] = *b"CKPT";

/// Current format version.
pub const VERSION: u16 = 1;

/// The kind of a memory segment in a checkpoint image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Executable code (immutable during execution, but saved anyway so
    /// the on-disk binary may be recompiled while the job runs).
    Text,
    /// Initialised variables.
    Data,
    /// Uninitialised variables (stored run-length-compressed in spirit; we
    /// store the payload verbatim but it is typically zeros).
    Bss,
    /// The stack.
    Stack,
}

impl SegmentKind {
    fn discriminant(self) -> u64 {
        match self {
            SegmentKind::Text => 0,
            SegmentKind::Data => 1,
            SegmentKind::Bss => 2,
            SegmentKind::Stack => 3,
        }
    }

    fn from_discriminant(v: u64) -> Result<Self, DecodeError> {
        Ok(match v {
            0 => SegmentKind::Text,
            1 => SegmentKind::Data,
            2 => SegmentKind::Bss,
            3 => SegmentKind::Stack,
            _ => {
                return Err(DecodeError::InvalidDiscriminant {
                    what: "SegmentKind",
                    value: v,
                })
            }
        })
    }

    /// All segment kinds, in canonical image order.
    pub const ALL: [SegmentKind; 4] = [
        SegmentKind::Text,
        SegmentKind::Data,
        SegmentKind::Bss,
        SegmentKind::Stack,
    ];
}

impl std::fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SegmentKind::Text => "text",
            SegmentKind::Data => "data",
            SegmentKind::Bss => "bss",
            SegmentKind::Stack => "stack",
        };
        f.write_str(s)
    }
}

/// One memory segment of a checkpointed process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    kind: SegmentKind,
    /// Virtual base address at which the segment must be restored.
    base: u64,
    payload: Bytes,
}

impl Segment {
    /// Creates a segment of `kind` at virtual base `base`.
    pub fn new(kind: SegmentKind, base: u64, payload: impl Into<Bytes>) -> Self {
        Segment {
            kind,
            base,
            payload: payload.into(),
        }
    }

    /// The segment's kind.
    pub fn kind(&self) -> SegmentKind {
        self.kind
    }

    /// The virtual base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The segment contents.
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Length of the contents in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// `true` when the segment carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    fn encode(&self, e: &mut Encoder) {
        e.put_varint(self.kind.discriminant());
        e.put_varint(self.base);
        e.put_bytes(&self.payload);
    }

    fn decode(d: &mut Decoder) -> Result<Self, DecodeError> {
        let kind = SegmentKind::from_discriminant(d.get_varint("segment kind")?)?;
        let base = d.get_varint("segment base")?;
        let payload = d.get_bytes("segment payload")?;
        Ok(Segment { kind, base, payload })
    }
}

/// Saved CPU register file.
///
/// Registers are stored as an opaque ordered list — the set differs per
/// architecture (the paper targeted the VAX; the live runtime stores its
/// virtual-machine registers here).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegisterFile {
    /// Program counter.
    pub pc: u64,
    /// Stack pointer.
    pub sp: u64,
    /// General-purpose registers.
    pub gprs: Vec<u64>,
}

impl RegisterFile {
    /// Creates a register file.
    pub fn new(pc: u64, sp: u64, gprs: Vec<u64>) -> Self {
        RegisterFile { pc, sp, gprs }
    }

    fn encode(&self, e: &mut Encoder) {
        e.put_varint(self.pc);
        e.put_varint(self.sp);
        e.put_varint(self.gprs.len() as u64);
        for &g in &self.gprs {
            e.put_varint(g);
        }
    }

    fn decode(d: &mut Decoder) -> Result<Self, DecodeError> {
        let pc = d.get_varint("pc")?;
        let sp = d.get_varint("sp")?;
        let n = d.get_varint("gpr count")?;
        if n > 4096 {
            return Err(DecodeError::LengthOutOfBounds { len: n, max: 4096 });
        }
        let mut gprs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            gprs.push(d.get_varint("gpr")?);
        }
        Ok(RegisterFile { pc, sp, gprs })
    }
}

/// Access mode of an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileMode {
    /// Opened read-only.
    Read,
    /// Opened write-only.
    Write,
    /// Opened read-write.
    ReadWrite,
    /// Opened write-only in append mode.
    Append,
}

impl FileMode {
    fn discriminant(self) -> u64 {
        match self {
            FileMode::Read => 0,
            FileMode::Write => 1,
            FileMode::ReadWrite => 2,
            FileMode::Append => 3,
        }
    }

    fn from_discriminant(v: u64) -> Result<Self, DecodeError> {
        Ok(match v {
            0 => FileMode::Read,
            1 => FileMode::Write,
            2 => FileMode::ReadWrite,
            3 => FileMode::Append,
            _ => {
                return Err(DecodeError::InvalidDiscriminant {
                    what: "FileMode",
                    value: v,
                })
            }
        })
    }
}

/// The saved status of one open file descriptor.
///
/// Remote jobs do their I/O through the shadow on the home machine, so the
/// path is interpreted relative to the *submitting* workstation when the job
/// is restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenFile {
    /// Descriptor number in the process.
    pub fd: u32,
    /// Path on the home workstation.
    pub path: String,
    /// Open mode.
    pub mode: FileMode,
    /// Current seek offset.
    pub offset: u64,
}

impl OpenFile {
    /// Creates an open-file record.
    pub fn new(fd: u32, path: impl Into<String>, mode: FileMode, offset: u64) -> Self {
        OpenFile {
            fd,
            path: path.into(),
            mode,
            offset,
        }
    }

    fn encode(&self, e: &mut Encoder) {
        e.put_varint(u64::from(self.fd));
        e.put_str(&self.path);
        e.put_varint(self.mode.discriminant());
        e.put_varint(self.offset);
    }

    fn decode(d: &mut Decoder) -> Result<Self, DecodeError> {
        let fd = d.get_varint("fd")? as u32;
        let path = d.get_str("file path")?;
        let mode = FileMode::from_discriminant(d.get_varint("file mode")?)?;
        let offset = d.get_varint("file offset")?;
        Ok(OpenFile { fd, path, mode, offset })
    }
}

/// A complete, restorable checkpoint of a running job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    job_id: u64,
    /// Monotonic checkpoint sequence number for this job; restores must use
    /// the highest sequence available.
    sequence: u32,
    segments: Vec<Segment>,
    registers: RegisterFile,
    open_files: Vec<OpenFile>,
}

impl CheckpointImage {
    /// The id of the checkpointed job.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The checkpoint sequence number (higher = more recent).
    pub fn sequence(&self) -> u32 {
        self.sequence
    }

    /// The memory segments, in canonical order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Looks up a segment by kind.
    pub fn segment(&self, kind: SegmentKind) -> Option<&Segment> {
        self.segments.iter().find(|s| s.kind() == kind)
    }

    /// The saved registers.
    pub fn registers(&self) -> &RegisterFile {
        &self.registers
    }

    /// The saved open-file table.
    pub fn open_files(&self) -> &[OpenFile] {
        &self.open_files
    }

    /// Total size of the encoded image in bytes (the quantity the paper's
    /// 5 s/MB transfer-cost model applies to).
    pub fn size_bytes(&self) -> u64 {
        self.encode().len() as u64
    }

    /// Encodes the image into a checksummed byte frame.
    pub fn encode(&self) -> Bytes {
        let mut e = Encoder::with_capacity(
            64 + self.segments.iter().map(|s| s.len() + 16).sum::<usize>(),
        );
        e.put_raw(&MAGIC);
        e.put_u16(VERSION);
        e.put_varint(self.job_id);
        e.put_varint(u64::from(self.sequence));
        e.put_varint(self.segments.len() as u64);
        for s in &self.segments {
            s.encode(&mut e);
        }
        self.registers.encode(&mut e);
        e.put_varint(self.open_files.len() as u64);
        for f in &self.open_files {
            f.encode(&mut e);
        }
        e.finish_frame()
    }

    /// Decodes and validates an image from a checksummed frame.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`]: corruption (checksum), truncation, bad magic or
    /// version, malformed fields, or trailing garbage.
    pub fn decode(frame: Bytes) -> Result<Self, DecodeError> {
        let mut d = Decoder::from_frame(frame)?;
        let magic = d.get_raw(4, "magic")?;
        if magic.as_ref() != MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&magic);
            return Err(DecodeError::BadMagic { found });
        }
        let version = d.get_u16("version")?;
        if version != VERSION {
            return Err(DecodeError::UnsupportedVersion { found: version });
        }
        let job_id = d.get_varint("job id")?;
        let sequence = d.get_varint("sequence")? as u32;
        let n_segs = d.get_varint("segment count")?;
        if n_segs > 64 {
            return Err(DecodeError::LengthOutOfBounds { len: n_segs, max: 64 });
        }
        let mut segments = Vec::with_capacity(n_segs as usize);
        for _ in 0..n_segs {
            segments.push(Segment::decode(&mut d)?);
        }
        let registers = RegisterFile::decode(&mut d)?;
        let n_files = d.get_varint("open file count")?;
        if n_files > 65_536 {
            return Err(DecodeError::LengthOutOfBounds { len: n_files, max: 65_536 });
        }
        let mut open_files = Vec::with_capacity(n_files as usize);
        for _ in 0..n_files {
            open_files.push(OpenFile::decode(&mut d)?);
        }
        d.finish()?;
        Ok(CheckpointImage {
            job_id,
            sequence,
            segments,
            registers,
            open_files,
        })
    }
}

/// Incrementally assembles a [`CheckpointImage`].
///
/// # Examples
///
/// ```
/// use condor_ckpt::image::{CheckpointBuilder, SegmentKind, FileMode};
///
/// let image = CheckpointBuilder::new(7, 1)
///     .segment(SegmentKind::Text, 0x1000, vec![0x90; 128])
///     .segment(SegmentKind::Data, 0x8000, vec![1, 2, 3])
///     .registers(0x1010, 0xFF00, vec![0; 16])
///     .open_file(3, "/u/mike/output.dat", FileMode::Append, 4096)
///     .build()
///     .expect("no replies outstanding");
/// assert_eq!(image.job_id(), 7);
/// let bytes = image.encode();
/// let back = condor_ckpt::image::CheckpointImage::decode(bytes).unwrap();
/// assert_eq!(back, image);
/// ```
#[derive(Debug)]
pub struct CheckpointBuilder {
    job_id: u64,
    sequence: u32,
    segments: Vec<Segment>,
    registers: RegisterFile,
    open_files: Vec<OpenFile>,
    outstanding_replies: u32,
}

impl CheckpointBuilder {
    /// Starts a checkpoint for `job_id` with the given sequence number.
    pub fn new(job_id: u64, sequence: u32) -> Self {
        CheckpointBuilder {
            job_id,
            sequence,
            segments: Vec::new(),
            registers: RegisterFile::default(),
            open_files: Vec::new(),
            outstanding_replies: 0,
        }
    }

    /// Adds a memory segment.
    pub fn segment(mut self, kind: SegmentKind, base: u64, payload: impl Into<Bytes>) -> Self {
        self.segments.push(Segment::new(kind, base, payload));
        self
    }

    /// Sets the register file.
    pub fn registers(mut self, pc: u64, sp: u64, gprs: Vec<u64>) -> Self {
        self.registers = RegisterFile::new(pc, sp, gprs);
        self
    }

    /// Records an open file descriptor.
    pub fn open_file(
        mut self,
        fd: u32,
        path: impl Into<String>,
        mode: FileMode,
        offset: u64,
    ) -> Self {
        self.open_files.push(OpenFile::new(fd, path, mode, offset));
        self
    }

    /// Declares that `n` shadow replies are still in flight. Condor defers
    /// checkpoints until the count is zero (paper §2.3), so a non-zero
    /// count makes [`CheckpointBuilder::build`] fail.
    pub fn outstanding_replies(mut self, n: u32) -> Self {
        self.outstanding_replies = n;
        self
    }

    /// Finalises the image.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::RepliesOutstanding`] if shadow replies are in
    /// flight — checkpointing now would have to save in-transit messages.
    pub fn build(self) -> Result<CheckpointImage, BuildError> {
        if self.outstanding_replies > 0 {
            return Err(BuildError::RepliesOutstanding {
                count: self.outstanding_replies,
            });
        }
        Ok(CheckpointImage {
            job_id: self.job_id,
            sequence: self.sequence,
            segments: self.segments,
            registers: self.registers,
            open_files: self.open_files,
        })
    }
}

/// Errors from [`CheckpointBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// Shadow replies are still in flight; defer the checkpoint.
    RepliesOutstanding {
        /// Number of unanswered messages.
        count: u32,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::RepliesOutstanding { count } => write!(
                f,
                "cannot checkpoint with {count} shadow replies outstanding; defer until quiescent"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> CheckpointImage {
        CheckpointBuilder::new(42, 3)
            .segment(SegmentKind::Text, 0x0, vec![0xAA; 64])
            .segment(SegmentKind::Data, 0x1000, vec![0xBB; 32])
            .segment(SegmentKind::Bss, 0x2000, vec![0x00; 16])
            .segment(SegmentKind::Stack, 0xF000, vec![0xCC; 48])
            .registers(0x24, 0xF020, vec![1, 2, 3, 4])
            .open_file(0, "/dev/tty", FileMode::Read, 0)
            .open_file(3, "/u/sim/results.out", FileMode::Append, 12_345)
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let img = sample_image();
        let back = CheckpointImage::decode(img.encode()).unwrap();
        assert_eq!(back, img);
        assert_eq!(back.job_id(), 42);
        assert_eq!(back.sequence(), 3);
        assert_eq!(back.segments().len(), 4);
        assert_eq!(back.open_files().len(), 2);
        assert_eq!(back.registers().pc, 0x24);
    }

    #[test]
    fn segment_lookup_by_kind() {
        let img = sample_image();
        assert_eq!(img.segment(SegmentKind::Stack).unwrap().len(), 48);
        assert_eq!(img.segment(SegmentKind::Text).unwrap().base(), 0x0);
        let no_text = CheckpointBuilder::new(1, 1).build().unwrap();
        assert!(no_text.segment(SegmentKind::Text).is_none());
    }

    #[test]
    fn size_matches_encoding() {
        let img = sample_image();
        assert_eq!(img.size_bytes(), img.encode().len() as u64);
        assert!(img.size_bytes() > 64 + 32 + 16 + 48);
    }

    #[test]
    fn outstanding_replies_block_build() {
        let err = CheckpointBuilder::new(1, 1)
            .outstanding_replies(2)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::RepliesOutstanding { count: 2 });
        assert!(err.to_string().contains("2 shadow replies"));
        // Once replies drain, the build succeeds.
        let ok = CheckpointBuilder::new(1, 1).outstanding_replies(0).build();
        assert!(ok.is_ok());
    }

    #[test]
    fn bad_magic_rejected() {
        let img = sample_image();
        let frame = img.encode();
        // Rebuild the frame with clobbered magic (and fixed checksum so we
        // exercise the magic check, not the CRC).
        let mut d = crate::codec::Decoder::from_frame(frame).unwrap();
        let mut payload = d.get_raw(d.remaining(), "all").unwrap().to_vec();
        payload[0] = b'X';
        let mut e = Encoder::new();
        e.put_raw(&payload);
        match CheckpointImage::decode(e.finish_frame()) {
            Err(DecodeError::BadMagic { found }) => assert_eq!(found[0], b'X'),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn future_version_rejected() {
        let img = sample_image();
        let mut d = crate::codec::Decoder::from_frame(img.encode()).unwrap();
        let mut payload = d.get_raw(d.remaining(), "all").unwrap().to_vec();
        payload[4] = 0xFF; // version low byte
        let mut e = Encoder::new();
        e.put_raw(&payload);
        assert!(matches!(
            CheckpointImage::decode(e.finish_frame()),
            Err(DecodeError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn corrupted_frame_rejected() {
        let img = sample_image();
        let mut bytes = img.encode().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            CheckpointImage::decode(Bytes::from(bytes)),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn empty_image_is_valid() {
        let img = CheckpointBuilder::new(0, 0).build().unwrap();
        let back = CheckpointImage::decode(img.encode()).unwrap();
        assert_eq!(back, img);
        assert!(back.segments().is_empty());
        assert!(back.open_files().is_empty());
    }

    #[test]
    fn segment_kind_display_and_all() {
        let names: Vec<String> = SegmentKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, vec!["text", "data", "bss", "stack"]);
    }

    #[test]
    fn higher_sequence_means_newer() {
        let a = CheckpointBuilder::new(9, 1).build().unwrap();
        let b = CheckpointBuilder::new(9, 2).build().unwrap();
        assert!(b.sequence() > a.sequence());
    }
}
