//! # condor-ckpt — checkpoint images for migratable jobs
//!
//! The defining feature of Condor's Remote Unix facility is
//! **checkpointing**: saving a running job's complete state so it can be
//! restarted *at any time, on any machine* (paper §2.3). This crate provides:
//!
//! * [`image`] — the [`image::CheckpointImage`] structure (text/data/bss/
//!   stack segments, registers, open-file table) and a builder that enforces
//!   the paper's quiescence rule (no checkpoint while shadow replies are in
//!   flight);
//! * [`codec`] — the self-describing binary format with CRC-32 framing, so
//!   truncated or corrupted images are rejected rather than restored;
//! * [`store`] — a fixed-capacity checkpoint volume with the disk-space
//!   accounting that drives the placement constraints of paper §4;
//! * [`delta`] — block-level delta checkpoints, shipping only changed
//!   pages between successive images (the natural answer to §4's concern
//!   about periodic-checkpoint transfer costs).
//!
//! ## Example
//!
//! ```
//! use condor_ckpt::image::{CheckpointBuilder, CheckpointImage, SegmentKind};
//! use condor_ckpt::store::CheckpointStore;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A job checkpoints on preemption...
//! let image = CheckpointBuilder::new(17, 1)
//!     .segment(SegmentKind::Data, 0x1000, vec![42u8; 1024])
//!     .registers(0x2000, 0xF000, vec![0; 8])
//!     .build()?;
//!
//! // ...the image travels back to the submitting machine's disk...
//! let mut home_disk = CheckpointStore::new(10 << 20);
//! home_disk.put(&image)?;
//!
//! // ...and is later restored on a different idle workstation.
//! let restored = home_disk.get(17)?;
//! assert_eq!(restored, image);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod delta;
pub mod error;
pub mod image;
pub mod store;

pub use delta::Delta;
pub use error::{DecodeError, StoreError};
pub use image::{
    CheckpointBuilder, CheckpointImage, FileMode, OpenFile, RegisterFile, Segment, SegmentKind,
};
pub use store::CheckpointStore;
