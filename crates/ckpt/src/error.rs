//! Error types for checkpoint encoding, decoding, and storage.

use std::fmt;

/// Errors arising while decoding a checkpoint image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    UnexpectedEof {
        /// What was being decoded when the data ran out.
        context: &'static str,
    },
    /// The leading magic bytes did not identify a checkpoint image.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The format version is not supported by this library.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// A checksum mismatch: the image is corrupt or truncated.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        expected: u32,
        /// Checksum recomputed over the payload.
        actual: u32,
    },
    /// A varint was longer than the maximum for its type.
    VarintOverflow,
    /// A length field exceeded the sanity bound.
    LengthOutOfBounds {
        /// The offending length.
        len: u64,
        /// The maximum allowed.
        max: u64,
    },
    /// An enum discriminant had no corresponding variant.
    InvalidDiscriminant {
        /// The type being decoded.
        what: &'static str,
        /// The raw value found.
        value: u64,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// Trailing bytes remained after the structure was fully decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            DecodeError::BadMagic { found } => {
                write!(f, "bad magic bytes {found:02x?}, not a checkpoint image")
            }
            DecodeError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            DecodeError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: recorded {expected:#010x}, computed {actual:#010x}")
            }
            DecodeError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            DecodeError::LengthOutOfBounds { len, max } => {
                write!(f, "length field {len} exceeds sanity bound {max}")
            }
            DecodeError::InvalidDiscriminant { what, value } => {
                write!(f, "invalid {what} discriminant {value}")
            }
            DecodeError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after complete image")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors arising from the checkpoint store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Not enough free space on the destination disk.
    DiskFull {
        /// Bytes the image needs.
        needed: u64,
        /// Bytes actually free.
        available: u64,
    },
    /// No checkpoint is stored under the requested key.
    NotFound {
        /// The missing key, rendered for diagnostics.
        key: String,
    },
    /// A stored image failed validation when read back.
    Corrupt(DecodeError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DiskFull { needed, available } => {
                write!(f, "disk full: need {needed} bytes, {available} available")
            }
            StoreError::NotFound { key } => write!(f, "no checkpoint stored for {key}"),
            StoreError::Corrupt(e) => write!(f, "stored checkpoint is corrupt: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> Self {
        StoreError::Corrupt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DecodeError::ChecksumMismatch { expected: 1, actual: 2 };
        assert!(e.to_string().contains("checksum mismatch"));
        let e = DecodeError::BadMagic { found: *b"ELF\x7f" };
        assert!(e.to_string().contains("magic"));
        let e = StoreError::DiskFull { needed: 100, available: 10 };
        assert!(e.to_string().contains("disk full"));
        let e = StoreError::NotFound { key: "job-7".into() };
        assert!(e.to_string().contains("job-7"));
    }

    #[test]
    fn store_error_sources_chain() {
        use std::error::Error;
        let inner = DecodeError::InvalidUtf8;
        let outer: StoreError = inner.clone().into();
        assert_eq!(
            outer.source().expect("has source").to_string(),
            inner.to_string()
        );
        assert!(StoreError::NotFound { key: "x".into() }.source().is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecodeError>();
        assert_send_sync::<StoreError>();
    }
}
