//! Speculative replication and opportunistic checkpointing.
//!
//! Condor's core bet is that remote cycles are cheap; this module spends a
//! few of them on purpose. Following the speculative-replication model of
//! Xu et al. (arXiv:1707.01655), the [`Redundant`](crate::config::PolicyKind::Redundant)
//! policy places up to `k` extra copies of a queued whole-machine job on
//! stations that would otherwise sit idle, under *cancel-on-first-finish*:
//! the first copy (primary or replica) to complete wins, and every other
//! copy is cancelled on the spot. Replicas are strictly parasitic — they
//! spawn only when every queue in the fleet is empty, are reclaimed at
//! the top of each poll whenever waiting demand outstrips the free
//! machines (arriving copies first, then the youngest running), yield
//! during coordinator outages to a station's own runnable local work,
//! and evaporate the instant the station's owner returns (no grace
//! period, no checkpoint: their work is the redundancy budget). Hosts
//! are chosen by expected *remaining* idle time — the station's EWMA of
//! past idle intervals minus its current streak — so speculation lands
//! on the machines statistically furthest from an owner's return.
//!
//! The same module also hosts the *opportunistic* checkpoint timer: instead
//! of checkpointing every fixed interval, checkpoint when the owner-return
//! hazard crosses a threshold. The hazard estimate is the ratio of the
//! current idle streak to the station's EWMA of past idle intervals — the
//! same signal history-aware placement uses — so a job checkpoints exactly
//! when its host has been idle *longer than usual*, i.e. when the owner is
//! statistically overdue.
//!
//! Accounting: every spawn emits
//! [`TraceKind::ReplicaSpawned`](crate::trace::TraceKind::ReplicaSpawned),
//! every loser emits
//! [`TraceKind::ReplicaCancelled`](crate::trace::TraceKind::ReplicaCancelled)
//! carrying the burst progress it had accrued, and
//! [`Totals::wasted_replica_work`](crate::cluster::Totals::wasted_replica_work)
//! sums those losses. The [`AuditSink`](crate::audit::AuditSink) enforces
//! conservation: every spawn matched by exactly one cancellation or one
//! completion, wasted work equal to the cancelled copies' progress.
//!
//! With `replicas == 0` and [`CkptTiming::Inherited`] the policy is
//! bit-identical to plain Up-Down — the golden-trace guard pins this.

use condor_sim::time::SimDuration;

use crate::config::ConfigError;
use crate::updown::UpDownConfig;

/// When a running job writes periodic checkpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CkptTiming {
    /// Keep the cluster-wide behavior: checkpoint on the fixed interval of
    /// [`EvictionStrategy::ImmediateKill`](crate::config::EvictionStrategy::ImmediateKill),
    /// or not at all under grace-then-checkpoint eviction. Bit-identical
    /// to not using the redundancy policy.
    Inherited,
    /// Checkpoint when the owner-return hazard crosses a threshold. Every
    /// `check_every`, compare the host's current idle streak against its
    /// EWMA of completed idle intervals; when
    /// `streak / ewma >= hazard_threshold` the owner is overdue and the
    /// job checkpoints. Stations with no idle history yet never trigger.
    Opportunistic {
        /// How often the hazard is evaluated.
        check_every: SimDuration,
        /// Hazard level that triggers a checkpoint. `1.0` fires once the
        /// idle streak reaches the EWMA; lower is more anxious, higher
        /// more relaxed. Must be finite and positive.
        hazard_threshold: f64,
    },
}

/// Configuration of the replication-aware policy
/// ([`PolicyKind::Redundant`](crate::config::PolicyKind::Redundant)).
///
/// Wraps the paper's Up-Down allocator: primary placements and fairness
/// are exactly Up-Down's; replication only spends stations Up-Down left
/// idle after its placement pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedundancyConfig {
    /// Maximum replicas (extra copies beyond the primary) kept alive per
    /// job. `0` disables replication entirely — bit-identical to
    /// [`PolicyKind::UpDown`](crate::config::PolicyKind::UpDown) with the
    /// same inner config.
    pub replicas: u32,
    /// The inner Up-Down fairness configuration.
    pub updown: UpDownConfig,
    /// Checkpoint-timer selection for running jobs.
    pub checkpointing: CkptTiming,
}

impl Default for RedundancyConfig {
    fn default() -> Self {
        RedundancyConfig {
            replicas: 2,
            updown: UpDownConfig::default(),
            checkpointing: CkptTiming::Inherited,
        }
    }
}

impl RedundancyConfig {
    /// A configuration with replication and opportunistic checkpointing
    /// both off — the audit anchor proven bit-identical to plain Up-Down.
    pub fn off() -> Self {
        RedundancyConfig { replicas: 0, ..Default::default() }
    }

    /// Checks the configuration for structural impossibilities.
    pub fn check(&self) -> Result<(), ConfigError> {
        if let CkptTiming::Opportunistic { check_every, hazard_threshold } = self.checkpointing {
            if check_every.is_zero() {
                return Err(ConfigError::RedundancyZeroCheckInterval);
            }
            if !(hazard_threshold.is_finite() && hazard_threshold > 0.0) {
                return Err(ConfigError::RedundancyBadHazardThreshold {
                    threshold: hazard_threshold,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_disables_replication() {
        let c = RedundancyConfig::off();
        assert_eq!(c.replicas, 0);
        assert_eq!(c.checkpointing, CkptTiming::Inherited);
        assert!(c.check().is_ok());
    }

    #[test]
    fn opportunistic_timer_rejects_degenerate_knobs() {
        let zero_interval = RedundancyConfig {
            checkpointing: CkptTiming::Opportunistic {
                check_every: SimDuration::ZERO,
                hazard_threshold: 1.0,
            },
            ..Default::default()
        };
        assert_eq!(
            zero_interval.check(),
            Err(ConfigError::RedundancyZeroCheckInterval)
        );
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = RedundancyConfig {
                checkpointing: CkptTiming::Opportunistic {
                    check_every: SimDuration::from_minutes(10),
                    hazard_threshold: bad,
                },
                ..Default::default()
            };
            assert!(c.check().is_err(), "threshold {bad} accepted");
        }
    }
}
