//! Deterministic chaos: seed-driven fault injection and a shrinking
//! schedule-search harness.
//!
//! The paper's robustness story (§2.1, §4) is that failure is *contained*:
//! a crashed or unreachable machine costs only the work since the last
//! checkpoint, and the rest of the cluster keeps operating. This module
//! injects the failure modes that matter in a non-dedicated NOW —
//! control-message loss, delay and duplication, corrupted checkpoint
//! transfers (detected and retried with capped exponential backoff),
//! transient network partitions, and coordinator outage windows during
//! which local schedulers keep starting their own queued jobs — and checks
//! that the protocol invariants survive all of them.
//!
//! # Determinism and replay
//!
//! A [`ChaosSchedule`] is *data*: an explicit, time-sorted list of
//! [`ChaosEntry`] values. [`ChaosSchedule::generate`] derives one from a
//! seed, but the cluster only ever consumes the expanded list — fault
//! injection draws **no** random numbers at run time and perturbs none of
//! the model's RNG substreams. Two consequences:
//!
//! * A run with `chaos: None` and a run with an **empty** schedule are
//!   bit-identical (the golden-trace digest is unchanged).
//! * A schedule serialized with [`ChaosSchedule::to_json`] and read back
//!   with [`ChaosSchedule::from_json`] replays the exact same trace —
//!   failing schedules are portable bug reports.
//!
//! # The harness
//!
//! [`explore`] runs one seeded schedule per seed, verifying every run with
//! the online [`AuditSink`] plus the [`verify_conservation`] balance
//! checks. When a run fails, [`shrink_schedule`] greedily drops entries —
//! keeping each removal that preserves the failure — until no single
//! removal does, yielding a minimal replayable schedule.
//!
//! # Reading a shrunk schedule
//!
//! The shrunk JSON lists only the faults that are jointly *necessary* to
//! reproduce the failure. Start from the last entry (the fault closest to
//! the violation), replay with `condor chaos --replay file.json`, and read
//! the reported violations against the trace around each entry's `at_ms`.

use condor_sim::rng::SimRng;
use condor_sim::time::{SimDuration, SimTime};

use crate::audit::AuditSink;
use crate::cluster::{Run, RunOutput};
use crate::config::{ClusterConfig, ConfigError, EvictionStrategy};
use crate::job::{JobSpec, JobState};
use crate::telemetry::{SharedSink, TraceSink};
use crate::trace::TraceKind;

/// One injectable fault.
///
/// Faults with a `duration` open a window starting at the entry's time;
/// instantaneous faults arm a one-shot effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Control-message loss: coordinator polls scheduled inside the window
    /// are dropped (each emits [`TraceKind::ChaosPollLost`]). The cadence
    /// gap stays a whole multiple of the poll interval, exactly like
    /// coordinator-host downtime.
    CtrlLoss {
        /// Window length.
        duration: SimDuration,
    },
    /// Control-message delay: the next on-grid poll is skipped and its
    /// body runs `delay` later (off the grid), announced by
    /// [`TraceKind::ChaosPollDelayed`]. The poll after it is back on the
    /// grid.
    CtrlDelay {
        /// How late the delayed poll body runs. Avoid whole multiples of
        /// the poll interval, which would collide with an on-grid poll.
        delay: SimDuration,
    },
    /// Control-message duplication: the next executed poll receives a
    /// duplicate of its own request, detects it by sequence number, and
    /// discards it ([`TraceKind::ChaosDupDropped`]) — no state changes.
    CtrlDup,
    /// Checkpoint-transfer corruption: non-gang checkpoint transfers
    /// *completing* inside the window are detected as corrupt
    /// ([`TraceKind::ChaosCkptCorrupted`]) and re-sent after a capped
    /// exponential backoff ([`ChaosConfig::retry_backoff_base`] doubling
    /// per attempt up to [`ChaosConfig::retry_backoff_max`]). No work is
    /// lost; the job stays mid-checkpoint until a clean transfer lands.
    CkptCorrupt {
        /// Window length.
        duration: SimDuration,
    },
    /// Transient network partition: stations `first_station ..
    /// first_station + machines` lose contact with the coordinator for the
    /// window ([`TraceKind::ChaosLinkDown`]/[`TraceKind::ChaosLinkUp`] per
    /// station). Partitioned stations take no new placements and their
    /// queues go dark to the coordinator, but local execution — and local
    /// autonomous starts — continue.
    Partition {
        /// First station in the cut-off range.
        first_station: u32,
        /// Number of consecutive stations cut off.
        machines: u32,
        /// Window length.
        duration: SimDuration,
    },
    /// Coordinator outage: polls stop for the window
    /// ([`TraceKind::ChaosCoordDown`]/[`TraceKind::ChaosCoordUp`]), local
    /// schedulers keep running autonomously (idle home stations start
    /// their own queued jobs — [`TraceKind::ChaosLocalStart`]), and polls
    /// resume on the grid at recovery.
    CoordinatorOutage {
        /// Window length.
        duration: SimDuration,
    },
}

impl Fault {
    /// Short stable name used in the JSON encoding.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::CtrlLoss { .. } => "ctrl_loss",
            Fault::CtrlDelay { .. } => "ctrl_delay",
            Fault::CtrlDup => "ctrl_dup",
            Fault::CkptCorrupt { .. } => "ckpt_corrupt",
            Fault::Partition { .. } => "partition",
            Fault::CoordinatorOutage { .. } => "coord_outage",
        }
    }
}

/// One `(time, fault)` schedule entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEntry {
    /// Injection instant.
    pub at: SimTime,
    /// The fault injected.
    pub fault: Fault,
}

/// A time-sorted list of faults to inject — the unit of replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosSchedule {
    /// Entries, sorted ascending by [`ChaosEntry::at`].
    pub entries: Vec<ChaosEntry>,
}

/// Knobs for seed-driven schedule generation.
#[derive(Debug, Clone, Copy)]
pub struct ChaosGen {
    /// Injection times are drawn uniformly over `[0, horizon)`.
    pub horizon: SimDuration,
    /// Fleet size partitions are drawn against.
    pub stations: u32,
    /// Number of faults to draw.
    pub faults: usize,
}

impl ChaosSchedule {
    /// Derives a schedule from `seed`: `gen.faults` entries with uniform
    /// injection times, fault kinds drawn uniformly, and window lengths in
    /// fault-appropriate ranges. Deterministic — same seed, same schedule.
    pub fn generate(seed: u64, gen: &ChaosGen) -> ChaosSchedule {
        let mut rng = SimRng::seed_from(seed).substream(seed, "chaos-schedule");
        let span_ms = gen.horizon.as_millis().max(1);
        let secs = |lo: u64, hi: u64, rng: &mut SimRng| {
            SimDuration::from_secs(rng.uniform_range_u64(lo, hi))
        };
        let mut entries = Vec::with_capacity(gen.faults);
        for _ in 0..gen.faults {
            let at = SimTime::from_millis(rng.uniform_range_u64(0, span_ms));
            let fault = match rng.index(6) {
                0 => Fault::CtrlLoss { duration: secs(120, 900, &mut rng) },
                // 5–90 s: never a whole multiple of the (minutes-scale)
                // poll interval, so the delayed poll lands off-grid.
                1 => Fault::CtrlDelay { delay: secs(5, 90, &mut rng) },
                2 => Fault::CtrlDup,
                3 => Fault::CkptCorrupt { duration: secs(300, 1800, &mut rng) },
                4 => {
                    let first_station = rng.uniform_range_u64(0, gen.stations.max(1) as u64) as u32;
                    let span = (gen.stations - first_station).max(1);
                    let machines = 1 + rng.index(span.min(3) as usize) as u32;
                    Fault::Partition { first_station, machines, duration: secs(300, 3600, &mut rng) }
                }
                _ => Fault::CoordinatorOutage { duration: secs(300, 3600, &mut rng) },
            };
            entries.push(ChaosEntry { at, fault });
        }
        entries.sort_by_key(|e| e.at);
        ChaosSchedule { entries }
    }

    /// Checks the schedule against a fleet of `stations` machines:
    /// entries sorted, windows non-zero, partitions inside the fleet.
    pub fn check(&self, stations: usize) -> Result<(), ConfigError> {
        let mut prev = SimTime::ZERO;
        for e in &self.entries {
            if e.at < prev {
                return Err(ConfigError::ChaosScheduleUnsorted);
            }
            prev = e.at;
            match e.fault {
                Fault::CtrlLoss { duration }
                | Fault::CkptCorrupt { duration }
                | Fault::CoordinatorOutage { duration } => {
                    if duration.is_zero() {
                        return Err(ConfigError::ChaosZeroDuration);
                    }
                }
                Fault::CtrlDelay { delay } => {
                    if delay.is_zero() {
                        return Err(ConfigError::ChaosZeroDuration);
                    }
                }
                Fault::CtrlDup => {}
                Fault::Partition { first_station, machines, duration } => {
                    if duration.is_zero() {
                        return Err(ConfigError::ChaosZeroDuration);
                    }
                    if machines == 0 {
                        return Err(ConfigError::ChaosPartitionZeroMachines);
                    }
                    if first_station as usize + machines as usize > stations {
                        return Err(ConfigError::ChaosPartitionOutsideFleet {
                            first_station,
                            machines,
                            stations,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes the schedule as one line of JSON.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\"entries\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"at_ms\":{},\"fault\":\"{}\"", e.at.as_millis(), e.fault.name());
            match e.fault {
                Fault::CtrlLoss { duration }
                | Fault::CkptCorrupt { duration }
                | Fault::CoordinatorOutage { duration } => {
                    let _ = write!(s, ",\"duration_ms\":{}", duration.as_millis());
                }
                Fault::CtrlDelay { delay } => {
                    let _ = write!(s, ",\"delay_ms\":{}", delay.as_millis());
                }
                Fault::CtrlDup => {}
                Fault::Partition { first_station, machines, duration } => {
                    let _ = write!(
                        s,
                        ",\"first_station\":{first_station},\"machines\":{machines},\"duration_ms\":{}",
                        duration.as_millis()
                    );
                }
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Parses a schedule produced by [`ChaosSchedule::to_json`].
    pub fn from_json(text: &str) -> Result<ChaosSchedule, ChaosParseError> {
        let start = text
            .find("\"entries\"")
            .ok_or_else(|| ChaosParseError::Malformed("no \"entries\" key".into()))?;
        let rest = &text[start..];
        let open = rest
            .find('[')
            .ok_or_else(|| ChaosParseError::Malformed("no entries array".into()))?;
        let close = rest
            .rfind(']')
            .ok_or_else(|| ChaosParseError::Malformed("unterminated entries array".into()))?;
        if close < open {
            return Err(ChaosParseError::Malformed("unterminated entries array".into()));
        }
        let body = &rest[open + 1..close];
        let mut entries = Vec::new();
        let mut depth = 0usize;
        let mut obj_start = 0usize;
        for (i, c) in body.char_indices() {
            match c {
                '{' => {
                    if depth == 0 {
                        obj_start = i;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| ChaosParseError::Malformed("unbalanced braces".into()))?;
                    if depth == 0 {
                        entries.push(parse_entry(&body[obj_start..=i])?);
                    }
                }
                _ => {}
            }
        }
        if depth != 0 {
            return Err(ChaosParseError::Malformed("unbalanced braces".into()));
        }
        Ok(ChaosSchedule { entries })
    }
}

fn parse_entry(obj: &str) -> Result<ChaosEntry, ChaosParseError> {
    let at = SimTime::from_millis(field_u64(obj, "at_ms")?);
    let ms = |name| field_u64(obj, name).map(SimDuration::from_millis);
    let fault = match field_str(obj, "fault")? {
        "ctrl_loss" => Fault::CtrlLoss { duration: ms("duration_ms")? },
        "ctrl_delay" => Fault::CtrlDelay { delay: ms("delay_ms")? },
        "ctrl_dup" => Fault::CtrlDup,
        "ckpt_corrupt" => Fault::CkptCorrupt { duration: ms("duration_ms")? },
        "partition" => {
            let first = field_u64(obj, "first_station")?;
            let machines = field_u64(obj, "machines")?;
            Fault::Partition {
                first_station: u32::try_from(first)
                    .map_err(|_| ChaosParseError::BadValue("first_station", first.to_string()))?,
                machines: u32::try_from(machines)
                    .map_err(|_| ChaosParseError::BadValue("machines", machines.to_string()))?,
                duration: ms("duration_ms")?,
            }
        }
        "coord_outage" => Fault::CoordinatorOutage { duration: ms("duration_ms")? },
        other => return Err(ChaosParseError::UnknownFault(other.into())),
    };
    Ok(ChaosEntry { at, fault })
}

fn field_u64(obj: &str, name: &'static str) -> Result<u64, ChaosParseError> {
    let pat = format!("\"{name}\":");
    let pos = obj.find(&pat).ok_or(ChaosParseError::MissingField(name))?;
    let rest = obj[pos + pat.len()..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|_| ChaosParseError::BadValue(name, rest.chars().take(16).collect()))
}

fn field_str<'a>(obj: &'a str, name: &'static str) -> Result<&'a str, ChaosParseError> {
    let pat = format!("\"{name}\":");
    let pos = obj.find(&pat).ok_or(ChaosParseError::MissingField(name))?;
    let rest = obj[pos + pat.len()..].trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| ChaosParseError::BadValue(name, rest.chars().take(16).collect()))?;
    let end = rest
        .find('"')
        .ok_or_else(|| ChaosParseError::BadValue(name, rest.chars().take(16).collect()))?;
    Ok(&rest[..end])
}

/// Why a chaos-schedule JSON document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosParseError {
    /// Structurally broken document.
    Malformed(String),
    /// Unrecognized fault name.
    UnknownFault(String),
    /// A required field was absent.
    MissingField(&'static str),
    /// A field value failed to parse.
    BadValue(&'static str, String),
}

impl std::fmt::Display for ChaosParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosParseError::Malformed(why) => write!(f, "malformed chaos schedule: {why}"),
            ChaosParseError::UnknownFault(k) => write!(f, "unknown chaos fault: {k}"),
            ChaosParseError::MissingField(name) => write!(f, "missing chaos field: {name}"),
            ChaosParseError::BadValue(name, v) => {
                write!(f, "bad value for chaos field {name}: {v}")
            }
        }
    }
}

impl std::error::Error for ChaosParseError {}

/// Chaos configuration carried by
/// [`ClusterConfig::chaos`](crate::config::ClusterConfig::chaos).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// The faults to inject.
    pub schedule: ChaosSchedule,
    /// First checkpoint-retry backoff; doubles per corrupted attempt.
    pub retry_backoff_base: SimDuration,
    /// Backoff cap.
    pub retry_backoff_max: SimDuration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            schedule: ChaosSchedule::default(),
            retry_backoff_base: SimDuration::from_secs(30),
            retry_backoff_max: SimDuration::from_minutes(10),
        }
    }
}

impl ChaosConfig {
    /// Wraps a schedule with the default retry backoffs.
    pub fn new(schedule: ChaosSchedule) -> Self {
        ChaosConfig { schedule, ..ChaosConfig::default() }
    }

    /// Checks the configuration against a fleet of `stations` machines.
    pub fn check(&self, stations: usize) -> Result<(), ConfigError> {
        if self.retry_backoff_base.is_zero() {
            return Err(ConfigError::ChaosZeroBackoff);
        }
        self.schedule.check(stations)
    }
}

/// Splits a chaos configuration across pool shards (see [`crate::shard`]).
///
/// Station-scoped faults ([`Fault::Partition`]) go to every pool whose
/// station range they intersect, with `first_station` remapped to
/// shard-local ids and the machine count clipped to the overlap.
/// Control-plane faults ([`Fault::CtrlLoss`], [`Fault::CtrlDelay`],
/// [`Fault::CtrlDup`], [`Fault::CoordinatorOutage`]) hit exactly one
/// coordinator, so they go to the pool owning the global coordinator
/// host. [`Fault::CkptCorrupt`] models shared-medium corruption and
/// broadcasts to every pool. Entry order is preserved within each shard,
/// so a one-pool topology gets back a config identical to the input.
pub fn route_to_pools(
    cfg: &ChaosConfig,
    ranges: &[std::ops::Range<usize>],
    coordinator_pool: usize,
) -> Vec<ChaosConfig> {
    let mut out: Vec<ChaosConfig> = ranges
        .iter()
        .map(|_| ChaosConfig { schedule: ChaosSchedule::default(), ..cfg.clone() })
        .collect();
    for entry in &cfg.schedule.entries {
        match entry.fault {
            Fault::Partition { first_station, machines, duration } => {
                let lo = first_station as usize;
                let hi = lo + machines as usize;
                for (p, range) in ranges.iter().enumerate() {
                    let s = lo.max(range.start);
                    let e = hi.min(range.end);
                    if s < e {
                        out[p].schedule.entries.push(ChaosEntry {
                            at: entry.at,
                            fault: Fault::Partition {
                                first_station: (s - range.start) as u32,
                                machines: (e - s) as u32,
                                duration,
                            },
                        });
                    }
                }
            }
            Fault::CkptCorrupt { .. } => {
                for shard in &mut out {
                    shard.schedule.entries.push(*entry);
                }
            }
            Fault::CtrlLoss { .. }
            | Fault::CtrlDelay { .. }
            | Fault::CtrlDup
            | Fault::CoordinatorOutage { .. } => {
                out[coordinator_pool].schedule.entries.push(*entry);
            }
        }
    }
    out
}

/// Conservation checks over a finished run: work delivered, work lost,
/// and bus/rollback accounting reconciled against the trace.
///
/// Returns one human-readable line per breach (empty = balanced). The
/// trace-based bus reconciliation needs `record_trace: true`; it is
/// skipped on trace-less runs.
pub fn verify_conservation(config: &ClusterConfig, out: &RunOutput) -> Vec<String> {
    let mut bad = Vec::new();
    for job in &out.jobs {
        if job.state == JobState::Completed && job.work_done < job.spec.demand {
            bad.push(format!(
                "job {} completed with {} of {} demand delivered",
                job.spec.id.0,
                job.work_done,
                job.spec.demand
            ));
        }
    }
    // Under grace-then-checkpoint with no station crashes, no fault in
    // this module may lose work: corrupted transfers are re-sent, not
    // dropped, and outages only defer placement.
    let lossless = matches!(config.eviction, EvictionStrategy::GraceThenCheckpoint { .. })
        && config.failures.is_none();
    if lossless {
        for job in &out.jobs {
            if !job.work_lost.is_zero() {
                bad.push(format!("job {} lost {} of work", job.spec.id.0, job.work_lost));
            }
        }
    }
    if out.trace.is_empty() {
        return bad;
    }
    // Every transfer put on the bus is announced by exactly one trace
    // event: a placement fan-out member, a checkpoint-out, or a corrupted
    // transfer's retry. A missing retry (a lost transfer) or a double
    // booking breaks these equalities.
    let mut transfers = 0u64;
    let mut bytes = 0u64;
    let mut rollbacks = 0u64;
    let knobs = config.chaos.clone().unwrap_or_default();
    for ev in out.trace.events() {
        match ev.kind {
            TraceKind::PlacementStarted { job, .. } => {
                transfers += 1;
                bytes += out.jobs[job.0 as usize].spec.image_bytes;
            }
            TraceKind::CheckpointStarted { bytes: b, .. } => {
                transfers += 1;
                bytes += b;
            }
            TraceKind::ChaosCkptCorrupted { job, attempt, .. } => {
                // A corruption books its re-send one backoff later — but
                // only if that instant is still inside the run. A retry
                // pending at the horizon is patience, not loss.
                let factor = 1u64 << (attempt - 1).min(20);
                let backoff_ms = knobs
                    .retry_backoff_max
                    .as_millis()
                    .min(knobs.retry_backoff_base.as_millis().saturating_mul(factor));
                if ev.at + SimDuration::from_millis(backoff_ms) < out.horizon {
                    transfers += 1;
                    bytes += out.jobs[job.0 as usize].spec.image_bytes;
                }
            }
            TraceKind::PeriodicCheckpoint { job, .. } => {
                transfers += 1;
                bytes += out.jobs[job.0 as usize].spec.image_bytes;
            }
            TraceKind::CrashRollback { .. } => rollbacks += 1,
            _ => {}
        }
    }
    if transfers != out.bus_transfers {
        bad.push(format!(
            "bus booked {} transfers but the trace accounts for {transfers}",
            out.bus_transfers
        ));
    }
    if bytes != out.bus_bytes_moved {
        bad.push(format!(
            "bus moved {} bytes but the trace accounts for {bytes}",
            out.bus_bytes_moved
        ));
    }
    if rollbacks != out.totals.crash_rollbacks {
        bad.push(format!(
            "totals count {} crash rollbacks but the trace has {rollbacks}",
            out.totals.crash_rollbacks
        ));
    }
    bad
}

/// Runs `base` (+ `schedule`) over `specs`, auditing online and checking
/// conservation. Returns one line per violation; empty means clean.
pub fn verify_schedule(
    base: &ClusterConfig,
    specs: &[JobSpec],
    horizon: SimDuration,
    schedule: &ChaosSchedule,
) -> Vec<String> {
    let mut config = base.clone();
    let mut chaos = config.chaos.take().unwrap_or_default();
    chaos.schedule = schedule.clone();
    config.chaos = Some(chaos);
    config.record_trace = true;
    let audit = SharedSink::new(
        AuditSink::new()
            .with_poll_interval(config.costs.coordinator_poll_interval)
            .with_pools(config.topology.as_ref().map_or(1, |t| t.pools)),
    );
    let handle = audit.clone();
    let out = Run::new(config.clone())
        .specs(specs.to_vec())
        .horizon(horizon)
        .sink(Box::new(audit) as Box<dyn TraceSink + Send>)
        .execute();
    let mut failures: Vec<String> =
        handle.with(|a| a.violations().iter().map(|v| v.to_string()).collect());
    let total = handle.with(|a| a.total_violations());
    if total as usize > failures.len() {
        failures.push(format!("… and {} more audit violations", total as usize - failures.len()));
    }
    failures.extend(verify_conservation(&config, &out));
    failures
}

/// Greedily minimizes a failing schedule: repeatedly drop any single entry
/// whose removal preserves the failure, until no removal does.
///
/// The result still fails [`verify_schedule`] (assuming `schedule` did)
/// and is 1-minimal: dropping any one remaining entry makes the run pass.
pub fn shrink_schedule(
    base: &ClusterConfig,
    specs: &[JobSpec],
    horizon: SimDuration,
    schedule: &ChaosSchedule,
) -> ChaosSchedule {
    let mut current = schedule.clone();
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.entries.len() {
            let mut candidate = current.clone();
            candidate.entries.remove(i);
            if !verify_schedule(base, specs, horizon, &candidate).is_empty() {
                current = candidate;
                removed_any = true;
            } else {
                i += 1;
            }
        }
        if !removed_any {
            return current;
        }
    }
}

/// A failing seed found by [`explore`], with its minimal reproduction.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The seed whose generated schedule failed.
    pub seed: u64,
    /// The schedule as generated.
    pub schedule: ChaosSchedule,
    /// The 1-minimal shrunk schedule (still failing).
    pub shrunk: ChaosSchedule,
    /// Violations from the original failing run.
    pub violations: Vec<String>,
}

/// Outcome of an [`explore`] sweep.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Seeded schedules run.
    pub cases: usize,
    /// Failures found, each with a shrunk reproduction.
    pub failures: Vec<ChaosFailure>,
}

impl ExploreReport {
    /// Whether every seeded schedule ran clean.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs one generated schedule per seed against `base` + `specs`,
/// verifying audit-cleanliness and conservation, and shrinking every
/// failure to a minimal replayable schedule.
pub fn explore(
    base: &ClusterConfig,
    specs: &[JobSpec],
    horizon: SimDuration,
    gen: &ChaosGen,
    seeds: impl IntoIterator<Item = u64>,
) -> ExploreReport {
    let mut report = ExploreReport::default();
    for seed in seeds {
        report.cases += 1;
        let schedule = ChaosSchedule::generate(seed, gen);
        let violations = verify_schedule(base, specs, horizon, &schedule);
        if !violations.is_empty() {
            let shrunk = shrink_schedule(base, specs, horizon, &schedule);
            report.failures.push(ChaosFailure { seed, schedule, shrunk, violations });
        }
    }
    report
}

#[cfg(test)]
pub(crate) mod test_hooks {
    //! Intentional protocol mutations, compiled only into unit tests, so
    //! the harness can prove it catches broken recovery paths.
    use std::cell::Cell;

    thread_local! {
        /// When set, a corrupted checkpoint transfer is detected but the
        /// retry is never booked — the transfer is silently lost.
        pub static BREAK_CKPT_RETRY: Cell<bool> = const { Cell::new(false) };
    }

    /// Runs `f` with the broken-retry mutation enabled.
    pub fn with_broken_ckpt_retry<R>(f: impl FnOnce() -> R) -> R {
        BREAK_CKPT_RETRY.with(|b| b.set(true));
        let out = f();
        BREAK_CKPT_RETRY.with(|b| b.set(false));
        out
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::cluster::run_cluster;
    use crate::job::{JobId, UserId};
    use condor_model::diurnal::DiurnalProfile;
    use condor_model::owner::OwnerConfig;
    use condor_net::NodeId;

    fn gen(stations: u32, faults: usize) -> ChaosGen {
        ChaosGen { horizon: SimDuration::from_days(4), stations, faults }
    }

    #[test]
    fn generation_is_deterministic_sorted_and_valid() {
        let g = gen(23, 12);
        let a = ChaosSchedule::generate(7, &g);
        let b = ChaosSchedule::generate(7, &g);
        assert_eq!(a, b);
        assert_eq!(a.entries.len(), 12);
        assert!(a.entries.windows(2).all(|w| w[0].at <= w[1].at));
        a.check(23).expect("generated schedules are valid");
        assert_ne!(a, ChaosSchedule::generate(8, &g));
    }

    #[test]
    fn json_round_trips_exactly() {
        for seed in 0..20 {
            let schedule = ChaosSchedule::generate(seed, &gen(23, 9));
            let replayed = ChaosSchedule::from_json(&schedule.to_json()).expect("parses");
            assert_eq!(schedule, replayed, "seed {seed}");
        }
        // Empty schedules round-trip too.
        let empty = ChaosSchedule::default();
        assert_eq!(ChaosSchedule::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn json_parse_errors_are_typed() {
        assert!(matches!(
            ChaosSchedule::from_json("{}"),
            Err(ChaosParseError::Malformed(_))
        ));
        assert!(matches!(
            ChaosSchedule::from_json(r#"{"entries":[{"at_ms":5,"fault":"nope"}]}"#),
            Err(ChaosParseError::UnknownFault(_))
        ));
        assert!(matches!(
            ChaosSchedule::from_json(r#"{"entries":[{"fault":"ctrl_dup"}]}"#),
            Err(ChaosParseError::MissingField("at_ms"))
        ));
        assert!(matches!(
            ChaosSchedule::from_json(r#"{"entries":[{"at_ms":5,"fault":"ctrl_loss"}]}"#),
            Err(ChaosParseError::MissingField("duration_ms"))
        ));
    }

    #[test]
    fn schedule_check_rejects_bad_shapes() {
        let at = SimTime::from_secs(10);
        let dur = SimDuration::MINUTE;
        let unsorted = ChaosSchedule {
            entries: vec![
                ChaosEntry { at: SimTime::from_secs(20), fault: Fault::CtrlDup },
                ChaosEntry { at, fault: Fault::CtrlDup },
            ],
        };
        assert_eq!(unsorted.check(4), Err(ConfigError::ChaosScheduleUnsorted));
        let zero = ChaosSchedule {
            entries: vec![ChaosEntry { at, fault: Fault::CtrlLoss { duration: SimDuration::ZERO } }],
        };
        assert_eq!(zero.check(4), Err(ConfigError::ChaosZeroDuration));
        let outside = ChaosSchedule {
            entries: vec![ChaosEntry {
                at,
                fault: Fault::Partition { first_station: 3, machines: 2, duration: dur },
            }],
        };
        assert_eq!(
            outside.check(4),
            Err(ConfigError::ChaosPartitionOutsideFleet {
                first_station: 3,
                machines: 2,
                stations: 4
            })
        );
        let zero_backoff = ChaosConfig {
            retry_backoff_base: SimDuration::ZERO,
            ..ChaosConfig::default()
        };
        assert_eq!(zero_backoff.check(4), Err(ConfigError::ChaosZeroBackoff));
        ChaosConfig::default().check(4).expect("defaults are valid");
    }

    /// Busy, flappy owners so evictions — and checkpoint traffic — happen.
    fn stormy(stations: usize) -> ClusterConfig {
        ClusterConfig {
            stations,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.5),
                mean_active_period: SimDuration::from_minutes(8),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        }
    }

    fn jobs(n: u64, stations: u64) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                id: JobId(i),
                user: UserId(0),
                home: NodeId::new((i % stations) as u32),
                arrival: SimTime::from_secs(600 * i),
                demand: SimDuration::from_hours(2),
                image_bytes: 400_000,
                syscalls_per_cpu_sec: 1.0,
                binaries: Default::default(),
                depends_on: Vec::new(),
                width: 1,
                resources: Default::default(),
                speedup: Default::default(),
            })
            .collect()
    }

    /// The whole-run corruption window used by the broken-path tests.
    fn corrupt_everything() -> ChaosSchedule {
        ChaosSchedule {
            entries: vec![ChaosEntry {
                at: SimTime::ZERO,
                fault: Fault::CkptCorrupt { duration: SimDuration::from_days(30) },
            }],
        }
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_no_chaos() {
        let horizon = SimDuration::from_days(2);
        let plain = run_cluster(stormy(6), jobs(8, 6), horizon);
        let chaotic = run_cluster(
            ClusterConfig {
                chaos: Some(ChaosConfig::default()),
                ..stormy(6)
            },
            jobs(8, 6),
            horizon,
        );
        assert_eq!(plain.trace.len(), chaotic.trace.len());
        for (a, b) in plain.trace.events().iter().zip(chaotic.trace.events()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn working_retry_path_survives_corruption_cleanly() {
        let base = stormy(6);
        let specs = jobs(10, 6);
        let horizon = SimDuration::from_days(4);
        let schedule = corrupt_everything();
        let violations = verify_schedule(&base, &specs, horizon, &schedule);
        assert!(violations.is_empty(), "{violations:?}");
        // The window must actually bite for this test to mean anything.
        let mut config = base;
        config.chaos = Some(ChaosConfig::new(schedule));
        let out = run_cluster(config, specs, horizon);
        assert!(
            out.totals.ckpt_retries > 0,
            "corruption window never hit a checkpoint: {:?}",
            out.totals
        );
    }

    #[test]
    fn broken_retry_is_caught_and_shrinks_to_one_fault() {
        let base = stormy(6);
        let specs = jobs(10, 6);
        let horizon = SimDuration::from_days(4);
        // Pad the failing schedule with faults that are individually
        // harmless, so shrinking has something to strip.
        let mut schedule = corrupt_everything();
        schedule.entries.push(ChaosEntry {
            at: SimTime::from_hours(5),
            fault: Fault::CtrlDup,
        });
        schedule.entries.push(ChaosEntry {
            at: SimTime::from_hours(9),
            fault: Fault::CoordinatorOutage { duration: SimDuration::from_minutes(10) },
        });
        test_hooks::with_broken_ckpt_retry(|| {
            let violations = verify_schedule(&base, &specs, horizon, &schedule);
            assert!(!violations.is_empty(), "broken retry must be caught");
            let shrunk = shrink_schedule(&base, &specs, horizon, &schedule);
            assert_eq!(shrunk.entries.len(), 1, "shrunk: {shrunk:?}");
            assert!(matches!(shrunk.entries[0].fault, Fault::CkptCorrupt { .. }));
            // The shrunk schedule replays the failure through JSON.
            let replayed = ChaosSchedule::from_json(&shrunk.to_json()).unwrap();
            assert_eq!(replayed, shrunk);
            assert!(!verify_schedule(&base, &specs, horizon, &replayed).is_empty());
        });
        // With the mutation off, the very same schedule passes.
        assert!(verify_schedule(&base, &specs, horizon, &schedule).is_empty());
    }

    #[test]
    fn explore_runs_clean_on_healthy_protocol() {
        let base = stormy(6);
        let specs = jobs(8, 6);
        let report = explore(
            &base,
            &specs,
            SimDuration::from_days(2),
            &gen(6, 5),
            1000..1006,
        );
        assert_eq!(report.cases, 6);
        assert!(
            report.is_clean(),
            "failures: {:?}",
            report.failures.iter().map(|f| (&f.seed, &f.violations)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn route_to_pools_splits_station_faults_and_pins_control_faults() {
        let schedule = ChaosSchedule {
            entries: vec![
                ChaosEntry {
                    at: SimTime::from_hours(1),
                    fault: Fault::Partition {
                        first_station: 2,
                        machines: 4,
                        duration: SimDuration::from_minutes(5),
                    },
                },
                ChaosEntry {
                    at: SimTime::from_hours(2),
                    fault: Fault::CtrlLoss { duration: SimDuration::MINUTE },
                },
                ChaosEntry {
                    at: SimTime::from_hours(3),
                    fault: Fault::CkptCorrupt { duration: SimDuration::MINUTE },
                },
            ],
        };
        let cfg = ChaosConfig::new(schedule);

        // One pool: routing is the identity, entry for entry.
        let whole = route_to_pools(&cfg, std::slice::from_ref(&(0..8)), 0);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].schedule, cfg.schedule);

        // Two pools of four stations each, coordinator hosted by pool 1.
        let routed = route_to_pools(&cfg, &[0..4, 4..8], 1);
        assert_eq!(routed.len(), 2);

        // The partition over global stations 2..6 splits into a local
        // 2..4 cut in pool 0 and a local 0..2 cut in pool 1.
        assert!(matches!(
            routed[0].schedule.entries[0].fault,
            Fault::Partition { first_station: 2, machines: 2, .. }
        ));
        assert!(matches!(
            routed[1].schedule.entries[0].fault,
            Fault::Partition { first_station: 0, machines: 2, .. }
        ));

        // The control-plane fault lands only in the coordinator's pool;
        // the checkpoint corruption broadcasts to both.
        assert_eq!(routed[0].schedule.entries.len(), 2);
        assert_eq!(routed[1].schedule.entries.len(), 3);
        assert!(matches!(routed[0].schedule.entries[1].fault, Fault::CkptCorrupt { .. }));
        assert!(matches!(routed[1].schedule.entries[1].fault, Fault::CtrlLoss { .. }));
        assert!(matches!(routed[1].schedule.entries[2].fault, Fault::CkptCorrupt { .. }));

        // Each routed shard config stays valid for its local fleet, and
        // non-schedule knobs (backoffs) carry over untouched.
        for shard in &routed {
            shard.check(4).expect("routed shard schedules stay valid");
            assert_eq!(shard.retry_backoff_base, cfg.retry_backoff_base);
            assert_eq!(shard.retry_backoff_max, cfg.retry_backoff_max);
        }
    }
}
