//! Per-job lifecycle spans, folded online from the event stream.
//!
//! The paper's evaluation is entirely about *where a job's time goes*:
//! queue wait at the home station (wait ratio, Fig. 4), remote execution
//! bursts, and checkpoint/transfer leverage (Fig. 9). Counters and
//! histograms answer "how much overall"; this module answers "why did job
//! 17 take 9 hours of wall clock for 2 hours of CPU?" — by folding the
//! [`TraceEvent`] stream into contiguous per-job **spans**, one per
//! lifecycle phase:
//!
//! * [`SpanPhase::Queued`] — waiting at home (arrival→placement,
//!   checkpoint-landed→next placement, dependency holds);
//! * [`SpanPhase::Transfer`] — placement image in flight to the target;
//! * [`SpanPhase::Running`] — executing on a foreign machine;
//! * [`SpanPhase::Suspended`] — stopped in place pending the grace period;
//! * [`SpanPhase::Checkpointing`] — checkpoint image in flight back home.
//!
//! [`SpanSink`] is a [`TraceSink`]: attach it to a run (or replay a saved
//! JSONL trace into it) and it produces a [`SpanLog`] — per-job span lists,
//! a per-station occupancy timeline, and instant markers for preemptions.
//! The folding state is O(active jobs); the log itself grows with the
//! spans it records, like any trace.
//!
//! Spans are **gapless by construction**: every transition closes the
//! current span at the instant the next opens, so a job's phase durations
//! sum exactly to its wall clock (arrival → completion, or → horizon for
//! unfinished jobs). [`SpanLog::breakdown`] exploits that to compute
//! per-job and aggregate where-time-went fractions plus the critical path
//! of the run's makespan.

use std::collections::{BTreeMap, HashMap};

use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};

use crate::job::JobId;
use crate::telemetry::TraceSink;
use crate::trace::{TraceEvent, TraceKind};

/// A lifecycle phase a job passes through, as observable from the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanPhase {
    /// Waiting in the home station's queue (includes dependency holds).
    Queued,
    /// Placement image in flight to the target machine.
    Transfer,
    /// Executing on a foreign machine.
    Running,
    /// Stopped in place by owner activity, pending the grace period.
    Suspended,
    /// Checkpoint image in flight back to the home station.
    Checkpointing,
}

impl SpanPhase {
    /// Number of distinct phases.
    pub const COUNT: usize = 5;

    /// All phases, in [`SpanPhase::index`] order.
    pub const ALL: [SpanPhase; SpanPhase::COUNT] = [
        SpanPhase::Queued,
        SpanPhase::Transfer,
        SpanPhase::Running,
        SpanPhase::Suspended,
        SpanPhase::Checkpointing,
    ];

    /// Dense index of this phase in `0..COUNT`.
    pub fn index(self) -> usize {
        match self {
            SpanPhase::Queued => 0,
            SpanPhase::Transfer => 1,
            SpanPhase::Running => 2,
            SpanPhase::Suspended => 3,
            SpanPhase::Checkpointing => 4,
        }
    }

    /// Stable lowercase name of this phase.
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Queued => "queued",
            SpanPhase::Transfer => "transfer",
            SpanPhase::Running => "running",
            SpanPhase::Suspended => "suspended",
            SpanPhase::Checkpointing => "checkpointing",
        }
    }
}

/// One contiguous phase interval in a job's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The phase.
    pub phase: SpanPhase,
    /// When the phase began.
    pub from: SimTime,
    /// When the phase ended (next transition, completion, or horizon).
    pub until: SimTime,
    /// The machine involved: the host for `Transfer`/`Running`/
    /// `Suspended`/`Checkpointing` (the gang lead for parallel programs),
    /// `None` while `Queued` at home.
    pub station: Option<NodeId>,
}

impl Span {
    /// Length of the span.
    pub fn duration(&self) -> SimDuration {
        self.until.since(self.from)
    }
}

/// The complete span history of one job.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobSpans {
    /// When the job entered the system.
    pub arrived: SimTime,
    /// When it delivered all demand, if it did within the horizon.
    pub completed: Option<SimTime>,
    /// Contiguous spans from arrival to completion/horizon, in order.
    pub spans: Vec<Span>,
    /// Total checkpoint-image bytes shipped home on this job's behalf:
    /// the sum of every [`TraceKind::CheckpointCompleted`] event's `bytes`
    /// field (one event per gang member on parallel programs).
    pub transfer_bytes: u64,
}

impl JobSpans {
    /// Wall clock from arrival to completion (or the log's horizon).
    pub fn wall(&self, horizon: SimTime) -> SimDuration {
        self.completed.unwrap_or(horizon).since(self.arrived)
    }

    /// Total time per phase, indexed by [`SpanPhase::index`]. Because
    /// spans are gapless, these sum exactly to [`JobSpans::wall`].
    pub fn phase_totals(&self) -> [SimDuration; SpanPhase::COUNT] {
        let mut totals = [SimDuration::ZERO; SpanPhase::COUNT];
        for s in &self.spans {
            totals[s.phase.index()] += s.duration();
        }
        totals
    }
}

/// One interval during which a station hosted a foreign job (from
/// placement start to the completion/checkpoint/kill/crash that freed it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// The hosted job.
    pub job: JobId,
    /// When the placement transfer began.
    pub from: SimTime,
    /// When the station was freed.
    pub until: SimTime,
    /// Granted CPU in milli-units (1000 = the whole machine). Fractional
    /// grants come from [`TraceKind::JobGranted`], which the cluster emits
    /// just before the placement whenever a job demands less than a whole
    /// machine; whole-machine placements never emit it and stay at 1000.
    pub cpu_milli: u32,
}

/// An instantaneous lifecycle marker (rendered as an instant event in the
/// Perfetto export): preemptions, kills, resumes, crash rollbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanMarker {
    /// When it happened.
    pub at: SimTime,
    /// The job concerned.
    pub job: JobId,
    /// The machine concerned.
    pub station: NodeId,
    /// Stable label: `suspended`, `resumed_in_place`, `killed`,
    /// `checkpoint_out`, `periodic_checkpoint`, `crash_rollback`,
    /// `chaos_ckpt_corrupted`, `chaos_local_start`, `adopted`,
    /// `replica_spawned`, or `replica_cancelled`.
    pub label: &'static str,
}

/// Everything [`SpanSink`] produces: per-job span lists, the per-station
/// occupancy timeline, and instant markers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanLog {
    /// Span history per job, in job-id order.
    pub jobs: BTreeMap<JobId, JobSpans>,
    /// Foreign-occupancy intervals per station, in start order.
    pub stations: BTreeMap<NodeId, Vec<Occupancy>>,
    /// Instant markers in simulation order.
    pub markers: Vec<SpanMarker>,
    /// The horizon open spans were closed at.
    pub finished_at: SimTime,
}

/// Per-job row of a [`Breakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobBreakdown {
    /// The job.
    pub job: JobId,
    /// Wall clock (arrival → completion or horizon).
    pub wall: SimDuration,
    /// Time per phase, indexed by [`SpanPhase::index`]; sums to `wall`.
    pub by_phase: [SimDuration; SpanPhase::COUNT],
    /// Whether the job completed within the horizon.
    pub completed: bool,
}

/// The where-time-went summary derived from a [`SpanLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breakdown {
    /// One row per job, in job-id order.
    pub per_job: Vec<JobBreakdown>,
    /// Sum of all jobs' per-phase time, indexed by [`SpanPhase::index`].
    pub aggregate: [SimDuration; SpanPhase::COUNT],
    /// Sum of all jobs' wall clocks (equals the aggregate's sum).
    pub total_wall: SimDuration,
    /// First arrival → last completion (or the horizon while jobs remain).
    pub makespan: SimDuration,
    /// The job whose completion closes the makespan — with independent
    /// jobs, the critical path of the batch is exactly this job's span
    /// chain. `None` for an empty log.
    pub critical: Option<JobBreakdown>,
}

impl SpanLog {
    /// Computes the where-time-went breakdown.
    pub fn breakdown(&self) -> Breakdown {
        let mut per_job = Vec::with_capacity(self.jobs.len());
        let mut aggregate = [SimDuration::ZERO; SpanPhase::COUNT];
        let mut total_wall = SimDuration::ZERO;
        let mut first_arrival: Option<SimTime> = None;
        let mut makespan_end: Option<SimTime> = None;
        let mut any_unfinished = false;
        for (&job, js) in &self.jobs {
            let by_phase = js.phase_totals();
            let wall = js.wall(self.finished_at);
            for (agg, d) in aggregate.iter_mut().zip(by_phase) {
                *agg += d;
            }
            total_wall += wall;
            first_arrival = Some(first_arrival.map_or(js.arrived, |f| f.min(js.arrived)));
            match js.completed {
                Some(c) => makespan_end = Some(makespan_end.map_or(c, |m| m.max(c))),
                None => any_unfinished = true,
            }
            per_job.push(JobBreakdown { job, wall, by_phase, completed: js.completed.is_some() });
        }
        let end = if any_unfinished {
            self.finished_at
        } else {
            makespan_end.unwrap_or(self.finished_at)
        };
        let makespan = first_arrival.map_or(SimDuration::ZERO, |f| end.saturating_since(f));
        // The critical job: last to complete — or, while jobs are still in
        // flight at the horizon, the unfinished job that arrived first
        // (the longest-open chain).
        let critical = if any_unfinished {
            per_job
                .iter()
                .filter(|b| !b.completed)
                .max_by_key(|b| b.wall)
                .copied()
        } else {
            makespan_end.and_then(|last| {
                self.jobs
                    .iter()
                    .find(|(_, js)| js.completed == Some(last))
                    .and_then(|(&job, _)| per_job.iter().find(|b| b.job == job))
                    .copied()
            })
        };
        Breakdown { per_job, aggregate, total_wall, makespan, critical }
    }
}

/// Folding state for one in-flight job: its open span and the stations it
/// currently holds. This — not the [`SpanLog`] — is what stays O(active
/// jobs).
#[derive(Debug)]
struct OpenJob {
    phase: SpanPhase,
    since: SimTime,
    station: Option<NodeId>,
    /// Stations this job occupies, with the occupancy start (one for a
    /// plain job, k for a width-k gang).
    holding: Vec<(NodeId, SimTime)>,
    /// Granted CPU milli-fraction, set by `JobGranted` ahead of the
    /// placement it describes; 1000 when no grant event was seen.
    cpu_milli: u32,
}

/// A [`TraceSink`] that folds the event stream into a [`SpanLog`] online.
///
/// The transition rules mirror the cluster's lifecycle exactly, including
/// the gang-scheduling corners (k placement starts and k checkpoint
/// completions per migration collapse into single `Transfer` /
/// `Checkpointing` spans on the gang lead). Feeding the same events in the
/// same order — live or replayed from a JSONL file — produces an identical
/// log.
///
/// # Examples
///
/// ```
/// use condor_core::spans::{SpanPhase, SpanSink};
/// use condor_core::telemetry::TraceSink;
/// use condor_core::trace::{TraceEvent, TraceKind};
/// use condor_core::job::JobId;
/// use condor_net::NodeId;
/// use condor_sim::time::SimTime;
///
/// let mut sink = SpanSink::new();
/// let job = JobId(0);
/// let on = NodeId::new(3);
/// for (t, kind) in [
///     (0, TraceKind::JobArrived { job }),
///     (60, TraceKind::PlacementStarted { job, target: on }),
///     (65, TraceKind::JobStarted { job, on }),
///     (300, TraceKind::JobCompleted { job, on }),
/// ] {
///     sink.record(&TraceEvent { at: SimTime::from_secs(t), kind });
/// }
/// sink.finish(SimTime::from_secs(400));
/// let log = sink.into_log();
/// let spans = &log.jobs[&job].spans;
/// assert_eq!(spans.len(), 3);
/// assert_eq!(spans[0].phase, SpanPhase::Queued);
/// assert_eq!(spans[2].phase, SpanPhase::Running);
/// ```
#[derive(Debug, Default)]
pub struct SpanSink {
    log: SpanLog,
    open: HashMap<JobId, OpenJob>,
}

impl SpanSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        SpanSink::default()
    }

    /// The log accumulated so far (open spans not yet closed).
    pub fn log(&self) -> &SpanLog {
        &self.log
    }

    /// Consumes the sink, yielding the log. Call after
    /// [`finish`](TraceSink::finish) so open spans are closed at the
    /// horizon.
    pub fn into_log(self) -> SpanLog {
        self.log
    }

    /// Rebuilds a span log from a recorded event sequence, closing open
    /// spans at `horizon`.
    pub fn fold(events: &[TraceEvent], horizon: SimTime) -> SpanLog {
        let mut sink = SpanSink::new();
        for ev in events {
            sink.record(ev);
        }
        sink.finish(horizon);
        sink.into_log()
    }

    /// Closes the job's open span at `at` and opens the next phase.
    fn transition(&mut self, job: JobId, at: SimTime, phase: SpanPhase, station: Option<NodeId>) {
        let Some(open) = self.open.get_mut(&job) else { return };
        if open.phase == phase {
            return; // gang members repeat the collective transition
        }
        let closed = Span { phase: open.phase, from: open.since, until: at, station: open.station };
        open.phase = phase;
        open.since = at;
        open.station = station;
        self.log.jobs.entry(job).or_default().spans.push(closed);
    }

    /// Closes the job's open span and retires it (completion).
    fn close(&mut self, job: JobId, at: SimTime) {
        let Some(open) = self.open.remove(&job) else { return };
        let js = self.log.jobs.entry(job).or_default();
        js.spans.push(Span { phase: open.phase, from: open.since, until: at, station: open.station });
        js.completed = Some(at);
        for (node, since) in open.holding {
            self.log
                .stations
                .entry(node)
                .or_default()
                .push(Occupancy { job, from: since, until: at, cpu_milli: open.cpu_milli });
        }
    }

    /// Releases one station the job holds (checkpoint landed, kill).
    fn release_station(&mut self, job: JobId, node: NodeId, at: SimTime) {
        let Some(open) = self.open.get_mut(&job) else { return };
        if let Some(pos) = open.holding.iter().position(|(n, _)| *n == node) {
            let (_, since) = open.holding.swap_remove(pos);
            let cpu_milli = open.cpu_milli;
            self.log
                .stations
                .entry(node)
                .or_default()
                .push(Occupancy { job, from: since, until: at, cpu_milli });
        }
    }

    /// Releases every station the job holds (crash teardown).
    fn release_all(&mut self, job: JobId, at: SimTime) {
        let Some(open) = self.open.get_mut(&job) else { return };
        let cpu_milli = open.cpu_milli;
        for (node, since) in std::mem::take(&mut open.holding) {
            self.log
                .stations
                .entry(node)
                .or_default()
                .push(Occupancy { job, from: since, until: at, cpu_milli });
        }
    }

    fn mark(&mut self, at: SimTime, job: JobId, station: NodeId, label: &'static str) {
        self.log.markers.push(SpanMarker { at, job, station, label });
    }
}

impl TraceSink for SpanSink {
    fn record(&mut self, ev: &TraceEvent) {
        let at = ev.at;
        match ev.kind {
            TraceKind::JobArrived { job } => {
                let js = self.log.jobs.entry(job).or_default();
                js.arrived = at;
                self.open.insert(
                    job,
                    OpenJob {
                        phase: SpanPhase::Queued,
                        since: at,
                        station: None,
                        holding: Vec::new(),
                        cpu_milli: 1000,
                    },
                );
            }
            TraceKind::JobGranted { job, cpu_milli, .. } => {
                // Emitted immediately ahead of the placement it describes;
                // the grant is fixed for the job's stay on that station.
                if let Some(open) = self.open.get_mut(&job) {
                    open.cpu_milli = cpu_milli;
                }
            }
            TraceKind::PlacementStarted { job, target } => {
                self.transition(job, at, SpanPhase::Transfer, Some(target));
                if let Some(open) = self.open.get_mut(&job) {
                    open.holding.push((target, at));
                }
            }
            TraceKind::JobStarted { job, on } => {
                self.transition(job, at, SpanPhase::Running, Some(on));
            }
            TraceKind::JobSuspended { job, on } => {
                self.transition(job, at, SpanPhase::Suspended, Some(on));
                self.mark(at, job, on, "suspended");
            }
            TraceKind::JobResumedInPlace { job, on } => {
                // The cluster emits `JobStarted` alongside this marker (in
                // either order, depending on the gang path), so the
                // transition below is usually a no-op for one of the two.
                self.transition(job, at, SpanPhase::Running, Some(on));
                self.mark(at, job, on, "resumed_in_place");
            }
            TraceKind::CheckpointStarted { job, from, .. } => {
                self.transition(job, at, SpanPhase::Checkpointing, Some(from));
                self.mark(at, job, from, "checkpoint_out");
            }
            TraceKind::CheckpointCompleted { job, from, bytes } => {
                self.transition(job, at, SpanPhase::Queued, None);
                self.release_station(job, from, at);
                if let Some(js) = self.log.jobs.get_mut(&job) {
                    js.transfer_bytes += bytes;
                }
            }
            TraceKind::JobKilled { job, on } => {
                self.transition(job, at, SpanPhase::Queued, None);
                self.release_station(job, on, at);
                self.mark(at, job, on, "killed");
            }
            TraceKind::PeriodicCheckpoint { job, on } => {
                self.mark(at, job, on, "periodic_checkpoint");
            }
            TraceKind::CrashRollback { job, on } => {
                self.transition(job, at, SpanPhase::Queued, None);
                self.release_all(job, at);
                self.mark(at, job, on, "crash_rollback");
            }
            TraceKind::JobCompleted { job, .. } => {
                self.close(job, at);
            }
            TraceKind::ChaosCkptCorrupted { job, from, .. } => {
                // The job stays Checkpointing; the marker records the retry.
                self.mark(at, job, from, "chaos_ckpt_corrupted");
            }
            TraceKind::ChaosLocalStart { job, on } => {
                // An autonomous start occupies the home station just like a
                // placed image; the paired `JobStarted` does the phase
                // transition.
                if let Some(open) = self.open.get_mut(&job) {
                    open.holding.push((on, at));
                }
                self.mark(at, job, on, "chaos_local_start");
            }
            TraceKind::JobForwarded { job, .. } => {
                // The job leaves this pool mid-queue: end its open span
                // here without marking it completed. Forwarded jobs hold
                // no stations, so there is nothing to release.
                if let Some(open) = self.open.remove(&job) {
                    let js = self.log.jobs.entry(job).or_default();
                    js.spans.push(Span {
                        phase: open.phase,
                        from: open.since,
                        until: at,
                        station: open.station,
                    });
                }
            }
            TraceKind::JobAdopted { job, on } => {
                // Adoption opens the job's life in the destination pool,
                // exactly like an arrival; the marker records the station
                // whose queue adopted it.
                let js = self.log.jobs.entry(job).or_default();
                if js.spans.is_empty() && js.arrived == SimTime::ZERO {
                    js.arrived = at;
                }
                self.open.insert(
                    job,
                    OpenJob {
                        phase: SpanPhase::Queued,
                        since: at,
                        station: None,
                        holding: Vec::new(),
                        cpu_milli: 1000,
                    },
                );
                self.mark(at, job, on, "adopted");
            }
            // Replicas never alter the primary's phase timeline — the job
            // stays Queued (or Running elsewhere) while copies race. The
            // markers record where and when the redundancy budget went.
            TraceKind::ReplicaSpawned { job, on } => {
                self.mark(at, job, on, "replica_spawned");
            }
            TraceKind::ReplicaCancelled { job, on, .. } => {
                self.mark(at, job, on, "replica_cancelled");
            }
            TraceKind::JobRejected { .. }
            | TraceKind::PlacementDiskRejected { .. }
            | TraceKind::OwnerActive { .. }
            | TraceKind::OwnerIdle { .. }
            | TraceKind::StationFailed { .. }
            | TraceKind::StationRecovered { .. }
            | TraceKind::ReservationStarted { .. }
            | TraceKind::ReservationEnded { .. }
            | TraceKind::CoordinatorPolled { .. }
            | TraceKind::ChaosPollLost
            | TraceKind::ChaosPollDelayed { .. }
            | TraceKind::ChaosDupDropped
            | TraceKind::ChaosLinkDown { .. }
            | TraceKind::ChaosLinkUp { .. }
            | TraceKind::ChaosCoordDown
            | TraceKind::ChaosCoordUp => {}
        }
    }

    fn finish(&mut self, at: SimTime) {
        self.log.finished_at = at;
        // Close open spans and occupancies at the horizon; keys are sorted
        // so the output is deterministic regardless of hash order.
        let mut pending: Vec<JobId> = self.open.keys().copied().collect();
        pending.sort_unstable();
        for job in pending {
            let open = self.open.remove(&job).expect("key listed");
            let js = self.log.jobs.entry(job).or_default();
            js.spans.push(Span {
                phase: open.phase,
                from: open.since,
                until: at,
                station: open.station,
            });
            for (node, since) in open.holding {
                self.log
                    .stations
                    .entry(node)
                    .or_default()
                    .push(Occupancy { job, from: since, until: at, cpu_milli: open.cpu_milli });
            }
        }
        // Occupancy lists fill in release order; present them in start
        // order per station.
        for occ in self.log.stations.values_mut() {
            occ.sort_by_key(|o| o.from);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::PreemptReason;

    fn ev(secs: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { at: SimTime::from_secs(secs), kind }
    }

    #[test]
    fn single_job_lifecycle_spans_are_gapless() {
        let job = JobId(0);
        let on = NodeId::new(2);
        let events = vec![
            ev(0, TraceKind::JobArrived { job }),
            ev(100, TraceKind::PlacementStarted { job, target: on }),
            ev(110, TraceKind::JobStarted { job, on }),
            ev(500, TraceKind::JobSuspended { job, on }),
            ev(560, TraceKind::JobStarted { job, on }),
            ev(560, TraceKind::JobResumedInPlace { job, on }),
            ev(900, TraceKind::JobSuspended { job, on }),
            ev(1200, TraceKind::CheckpointStarted {
                job,
                from: on,
                reason: PreemptReason::OwnerReturned,
                bytes: 1_000,
            }),
            ev(1300, TraceKind::CheckpointCompleted { job, from: on, bytes: 1_000 }),
            ev(1500, TraceKind::PlacementStarted { job, target: on }),
            ev(1510, TraceKind::JobStarted { job, on }),
            ev(2000, TraceKind::JobCompleted { job, on }),
        ];
        let log = SpanSink::fold(&events, SimTime::from_secs(3000));
        let js = &log.jobs[&job];
        assert_eq!(js.completed, Some(SimTime::from_secs(2000)));
        assert_eq!(js.transfer_bytes, 1_000);
        // Gapless: spans tile [arrival, completion].
        let mut cursor = js.arrived;
        for s in &js.spans {
            assert_eq!(s.from, cursor, "gap before {s:?}");
            cursor = s.until;
        }
        assert_eq!(cursor, SimTime::from_secs(2000));
        // Phase totals sum to wall clock.
        let wall: SimDuration = js.wall(log.finished_at);
        let total: SimDuration = js
            .phase_totals()
            .iter()
            .fold(SimDuration::ZERO, |acc, d| acc + *d);
        assert_eq!(total, wall);
        // The resume produced one suspended span of 60 s.
        let suspended = js.phase_totals()[SpanPhase::Suspended.index()];
        assert_eq!(suspended, SimDuration::from_secs(60 + 300));
        // Occupancy: two visits to the station.
        assert_eq!(log.stations[&on].len(), 2);
        // Markers recorded in order.
        let labels: Vec<&str> = log.markers.iter().map(|m| m.label).collect();
        assert_eq!(
            labels,
            vec!["suspended", "resumed_in_place", "suspended", "checkpoint_out"]
        );
    }

    #[test]
    fn gang_events_collapse_into_single_spans() {
        let job = JobId(3);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let events = vec![
            ev(0, TraceKind::JobArrived { job }),
            ev(10, TraceKind::PlacementStarted { job, target: a }),
            ev(10, TraceKind::PlacementStarted { job, target: b }),
            ev(20, TraceKind::JobStarted { job, on: a }),
            ev(90, TraceKind::CheckpointStarted {
                job,
                from: a,
                reason: PreemptReason::PriorityPreemption,
                bytes: 500,
            }),
            ev(90, TraceKind::CheckpointStarted {
                job,
                from: b,
                reason: PreemptReason::PriorityPreemption,
                bytes: 500,
            }),
            ev(100, TraceKind::CheckpointCompleted { job, from: a, bytes: 500 }),
            ev(120, TraceKind::CheckpointCompleted { job, from: b, bytes: 500 }),
        ];
        let log = SpanSink::fold(&events, SimTime::from_secs(200));
        let js = &log.jobs[&job];
        // One transfer span, one checkpointing span, despite 2 members.
        let phases: Vec<SpanPhase> = js.spans.iter().map(|s| s.phase).collect();
        assert_eq!(
            phases,
            vec![
                SpanPhase::Queued,
                SpanPhase::Transfer,
                SpanPhase::Running,
                SpanPhase::Checkpointing,
                SpanPhase::Queued, // still open at horizon, closed by finish
            ]
        );
        assert_eq!(js.transfer_bytes, 1_000);
        // Both stations held from placement to their own checkpoint landing.
        assert_eq!(log.stations[&a][0].until, SimTime::from_secs(100));
        assert_eq!(log.stations[&b][0].until, SimTime::from_secs(120));
    }

    #[test]
    fn breakdown_sums_and_critical_path() {
        let (j0, j1) = (JobId(0), JobId(1));
        let on = NodeId::new(1);
        let events = vec![
            ev(0, TraceKind::JobArrived { job: j0 }),
            ev(50, TraceKind::JobArrived { job: j1 }),
            ev(100, TraceKind::PlacementStarted { job: j0, target: on }),
            ev(110, TraceKind::JobStarted { job: j0, on }),
            ev(400, TraceKind::JobCompleted { job: j0, on }),
            ev(500, TraceKind::PlacementStarted { job: j1, target: on }),
            ev(520, TraceKind::JobStarted { job: j1, on }),
            ev(1000, TraceKind::JobCompleted { job: j1, on }),
        ];
        let log = SpanSink::fold(&events, SimTime::from_secs(2000));
        let b = log.breakdown();
        assert_eq!(b.per_job.len(), 2);
        for row in &b.per_job {
            let sum = row
                .by_phase
                .iter()
                .fold(SimDuration::ZERO, |acc, d| acc + *d);
            assert_eq!(sum, row.wall, "phase totals sum to wall for {:?}", row.job);
        }
        // Makespan: first arrival (0) to last completion (1000).
        assert_eq!(b.makespan, SimDuration::from_secs(1000));
        assert_eq!(b.critical.expect("non-empty").job, j1);
        let agg_sum = b
            .aggregate
            .iter()
            .fold(SimDuration::ZERO, |acc, d| acc + *d);
        assert_eq!(agg_sum, b.total_wall);
    }

    #[test]
    fn crash_rollback_requeues_and_frees_stations() {
        let job = JobId(0);
        let on = NodeId::new(4);
        let events = vec![
            ev(0, TraceKind::JobArrived { job }),
            ev(10, TraceKind::PlacementStarted { job, target: on }),
            ev(20, TraceKind::JobStarted { job, on }),
            ev(300, TraceKind::StationFailed { station: on }),
            ev(300, TraceKind::CrashRollback { job, on }),
        ];
        let log = SpanSink::fold(&events, SimTime::from_secs(500));
        let js = &log.jobs[&job];
        assert_eq!(js.completed, None);
        assert_eq!(js.spans.last().unwrap().phase, SpanPhase::Queued);
        assert_eq!(log.stations[&on][0].until, SimTime::from_secs(300));
        assert_eq!(log.markers.last().unwrap().label, "crash_rollback");
    }
}

