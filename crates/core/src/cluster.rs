//! The complete Condor cluster simulation.
//!
//! [`Cluster`] is a [`condor_sim::engine::Model`] binding together all the
//! moving parts of the paper's system:
//!
//! * per-station **owner processes** (condor-model) deciding when machines
//!   are usable;
//! * per-station **local schedulers**: a background queue, owner-activity
//!   detection on the 30-second grid, the 5-minute eviction grace period,
//!   and checkpoint logistics;
//! * the **central coordinator**: a 2-minute poll loop feeding an
//!   [`AllocationPolicy`] (Up-Down in production) and executing its
//!   placement/preemption orders — at most one placement per poll, per the
//!   paper's §4 throttle;
//! * the **shared network** (condor-net) serialising image transfers;
//! * the **shadow cost ledgers**: every placement, checkpoint, and remote
//!   system call charges the home workstation, feeding the leverage
//!   numbers of Fig. 9.
//!
//! Use [`run_cluster`] for the common case: build, run to a horizon, and
//! collect a [`RunOutput`].

use std::collections::BTreeMap;

use condor_model::owner::{build_fleet, OwnerState};
use condor_model::station::ResourceVec;
use condor_net::{NodeId, SharedBus};
use condor_sim::engine::{Engine, Model, Scheduler};
use condor_sim::event::EventToken;
use condor_sim::series::{BucketAccumulator, StepSeries};
use condor_sim::time::{SimDuration, SimTime};

use crate::bits::Bits;
use crate::chaos::{ChaosConfig, Fault};
use crate::config::{ClusterConfig, ConfigError, EvictionStrategy, PolicyKind};
use crate::job::{Job, JobId, JobSpec, JobState, PreemptReason, UserId};
use crate::policy::{
    AllocationPolicy, CapacityIndex, FifoPolicy, FracPolicy, Order, PollInput, RandomPolicy,
    RedundantPolicy, RoundRobinPolicy, StationView,
};
use crate::queue::BackgroundQueue;
use crate::redundancy::CkptTiming;
use crate::telemetry::{GaugeSample, StatsSink, Telemetry, TraceSink};
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::updown::UpDown;

/// Events driving the cluster simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A job reaches its home station's queue.
    Arrival(JobId),
    /// A station's owner switches between active and idle.
    OwnerFlip {
        /// Station index.
        station: u32,
    },
    /// The local scheduler's 30-second-grid check fires.
    DetectOwner {
        /// Station index.
        station: u32,
    },
    /// The coordinator's poll cycle.
    Poll,
    /// A placement image transfer finished.
    PlacementDone {
        /// The job placed.
        job: JobId,
        /// Destination station.
        target: u32,
        /// The transfer sequence this completion belongs to; completions of
        /// transfers that died with a crashed station are stale and dropped.
        seq: u32,
    },
    /// A checkpoint transfer back home finished.
    CheckpointDone {
        /// The job moved.
        job: JobId,
        /// Station vacated.
        from: u32,
        /// Transfer sequence (see [`Event::PlacementDone::seq`]).
        seq: u32,
    },
    /// A running job delivered all its demand.
    Finish {
        /// The job.
        job: JobId,
        /// Hosting station.
        on: u32,
    },
    /// The eviction grace period expired with the owner still around.
    GraceOver {
        /// Station index.
        station: u32,
        /// The suspended job.
        job: JobId,
    },
    /// Periodic while-running checkpoint (immediate-kill strategy).
    PeriodicCkpt {
        /// The job.
        job: JobId,
        /// Hosting station.
        on: u32,
        /// Run epoch the checkpoint belongs to (stale epochs are ignored).
        epoch: u32,
    },
    /// A reservation window opens.
    ReservationStart {
        /// Index into the config's reservation list.
        idx: u32,
    },
    /// A reservation window closes.
    ReservationEnd {
        /// Index into the config's reservation list.
        idx: u32,
    },
    /// A workstation crashes (failure injection).
    StationCrash {
        /// Station index.
        station: u32,
    },
    /// A crashed workstation comes back online.
    StationRecover {
        /// Station index.
        station: u32,
    },
    /// A scheduled chaos fault fires.
    ChaosFault {
        /// Index into [`crate::chaos::ChaosSchedule::entries`].
        idx: u32,
    },
    /// A windowed chaos fault's window closes.
    ChaosHeal {
        /// Index of the schedule entry whose window ends.
        idx: u32,
    },
    /// The body of a poll postponed by [`Fault::CtrlDelay`].
    ChaosDelayedPoll {
        /// How late the body runs, for the trace announcement.
        delay_ms: u64,
    },
    /// Periodic local-scheduler pass starting queued jobs autonomously
    /// while the coordinator is unreachable (outage or partition).
    ChaosAutonomySweep,
    /// Re-send of a corrupted checkpoint transfer after backoff.
    ChaosCkptRetry {
        /// The job mid-checkpoint.
        job: JobId,
        /// Station the image leaves.
        from: u32,
        /// Transfer sequence (stale retries are dropped).
        seq: u32,
    },
    /// A speculative replica's image transfer finished (see
    /// [`crate::redundancy`]). Cancellation is by [`EventToken`], so no
    /// staleness sequence is needed.
    ReplicaPlaced {
        /// The replicated job.
        job: JobId,
        /// Destination station.
        target: u32,
    },
    /// A running replica delivered the job's remaining demand before the
    /// primary copy did: the replica wins, every rival is cancelled.
    ReplicaFinish {
        /// The replicated job.
        job: JobId,
        /// Hosting station.
        on: u32,
    },
    /// Hazard-driven checkpoint evaluation for a running primary under
    /// [`CkptTiming::Opportunistic`].
    OpportunisticCkpt {
        /// The job.
        job: JobId,
        /// Hosting station.
        on: u32,
        /// Run epoch the timer chain belongs to (stale epochs are ignored).
        epoch: u32,
    },
}

/// Phase of a foreign job occupying a station.
#[derive(Debug)]
enum Phase {
    /// Image inbound.
    Arriving,
    /// Member of a multi-machine gang (paper §5(2) parallel programs);
    /// the gang's collective state lives in the cluster's gang table, and
    /// its timers in [`GangState`], not in per-station slots.
    GangMember,
    /// Executing; `finish` is the pending completion event.
    Running { finish: EventToken },
    /// Stopped by owner activity; `grace` is the pending eviction timer.
    Suspended { grace: EventToken },
    /// Image outbound.
    Departing,
    /// Speculative copy racing the primary (see [`crate::redundancy`]).
    /// Replicas carry their own lifecycle in [`ReplicaState`] — never the
    /// job's: `Job::state` always describes the primary copy.
    Replica(ReplicaState),
}

/// Lifecycle of one speculative replica slot.
#[derive(Debug)]
enum ReplicaState {
    /// Image inbound; `arrive` is the pending [`Event::ReplicaPlaced`].
    Arriving { arrive: EventToken },
    /// Executing from the job's last checkpoint; `finish` is the pending
    /// [`Event::ReplicaFinish`].
    Running { started: SimTime, finish: EventToken },
}

#[derive(Debug)]
struct ForeignSlot {
    job: JobId,
    /// Capacity granted to this resident: fixed at placement to the job's
    /// demand vector and never rescaled while the job stays on the
    /// station, so scheduled finish events remain exact.
    demand: ResourceVec,
    phase: Phase,
}

/// Collective state of a width-k gang occupying k stations.
#[derive(Debug)]
struct GangState {
    /// Member stations, lead first.
    members: Vec<u32>,
    /// Members whose inbound image has arrived.
    staged: u32,
    /// Members whose outbound checkpoint has completed.
    departed: u32,
    /// Pending completion event while running.
    finish: Option<EventToken>,
    /// Pending eviction timer while suspended.
    grace: Option<EventToken>,
    /// All members executing.
    running: bool,
    /// Checkpoint-out in progress.
    departing: bool,
}

/// Per-station simulation state (the "local scheduler" plus hardware).
#[derive(Debug)]
struct Station {
    owner: condor_model::owner::OwnerProcess,
    /// Persistent per-station stream for owner dwell draws.
    rng: condor_sim::rng::SimRng,
    owner_state: OwnerState,
    queue: BackgroundQueue,
    /// Foreign jobs resident on this station. Whole-machine demands (the
    /// default) keep this at most one entry long; fractional demands pack
    /// jobs until the capacity vector is exhausted.
    residents: Vec<ForeignSlot>,
    /// The station's resource capacity (a whole machine by default).
    capacity: ResourceVec,
    disk_capacity: u64,
    disk_used: u64,
    detection_pending: bool,
    /// Crashed and not yet repaired.
    failed: bool,
    /// Fenced for a reservation holder: only that station's queue may be
    /// served here while set.
    reserved_for: Option<NodeId>,
    /// Owner-active intervals overlapping the current run segment (owner
    /// flickers shorter than the detection interval). Excised from the
    /// remote utilization deposit so a machine never accounts as more than
    /// 100% busy in any bucket.
    run_overlaps: Vec<(SimTime, SimTime)>,
}

impl Station {
    /// Sum of the residents' granted capacity, folded from scratch — the
    /// reference the rescan check compares the maintained
    /// [`StationHot::used_cap`] total against.
    fn used(&self) -> ResourceVec {
        self.residents
            .iter()
            .fold(ResourceVec::ZERO, |acc, slot| acc.add(slot.demand))
    }

    fn resident(&self, job: JobId) -> Option<&ForeignSlot> {
        self.residents.iter().find(|slot| slot.job == job)
    }

    fn resident_mut(&mut self, job: JobId) -> Option<&mut ForeignSlot> {
        self.residents.iter_mut().find(|slot| slot.job == job)
    }

    /// Removes and returns `job`'s resident slot, if present.
    fn remove_resident(&mut self, job: JobId) -> Option<ForeignSlot> {
        let idx = self.residents.iter().position(|slot| slot.job == job)?;
        Some(self.residents.remove(idx))
    }
}

/// Struct-of-arrays hot state: the per-station scalars the owner-flip,
/// utilization-deposit, and view-refresh paths touch on every event.
/// Keeping them in dense parallel arrays (a few hundred KB at 100k
/// stations) means those paths stay cache-resident instead of scattering
/// reads across the much larger [`Station`] structs.
#[derive(Debug)]
struct StationHot {
    /// Start of the current owner-active stretch (`None` while idle).
    owner_active_since: Vec<Option<SimTime>>,
    /// Start of the current owner-idle stretch (`None` while active).
    idle_since: Vec<Option<SimTime>>,
    /// EWMA of completed idle-interval lengths, seconds (history-aware
    /// placement score).
    ewma_idle_secs: Vec<f64>,
    /// Sum of resident demands — the capacity remainder's complement —
    /// maintained at every slot insert/remove so `compute_view` and
    /// admission checks read `capacity − used` without folding the
    /// residents list.
    used_cap: Vec<ResourceVec>,
}

impl StationHot {
    fn new(stations: usize) -> Self {
        StationHot {
            owner_active_since: vec![None; stations],
            idle_since: vec![Some(SimTime::ZERO); stations],
            ewma_idle_secs: vec![0.0; stations],
            used_cap: vec![ResourceVec::ZERO; stations],
        }
    }
}

/// Wall-clock time needed to deliver a whole-machine wall segment at a
/// granted CPU fraction of `cpu_milli` thousandths. Exact identity for a
/// whole grant, so default traces are bit-identical.
fn inflate_wall(wall: SimDuration, cpu_milli: u32) -> SimDuration {
    if cpu_milli == 1000 {
        return wall;
    }
    SimDuration::from_millis((wall.as_millis() as u128 * 1000 / cpu_milli as u128) as u64)
}

/// Work actually delivered over a wall segment whose whole-machine work
/// would be `work`, at a granted CPU fraction of `cpu_milli` thousandths.
/// Exact identity for a whole grant.
fn scale_work(work: SimDuration, cpu_milli: u32) -> SimDuration {
    if cpu_milli == 1000 {
        return work;
    }
    SimDuration::from_millis((work.as_millis() as u128 * cpu_milli as u128 / 1000) as u64)
}

/// Weight of accumulated history in the idle-interval EWMA that feeds
/// history-aware placement. Together with
/// [`IDLE_EWMA_SAMPLE_WEIGHT`] this sets the smoothing horizon: at
/// 0.7/0.3 a completed idle interval's influence halves roughly every
/// two owner departures.
pub const IDLE_EWMA_HISTORY_WEIGHT: f64 = 0.7;

/// Weight of the newest completed idle interval in the idle-interval
/// EWMA. Must satisfy `IDLE_EWMA_HISTORY_WEIGHT + IDLE_EWMA_SAMPLE_WEIGHT
/// == 1.0` so the estimate stays a convex combination of observations.
pub const IDLE_EWMA_SAMPLE_WEIGHT: f64 = 0.3;

/// One EWMA update step for a completed owner-idle interval. The first
/// observation seeds the estimate directly.
fn ewma_idle_update(prev_secs: f64, sample_secs: f64) -> f64 {
    if prev_secs == 0.0 {
        sample_secs
    } else {
        IDLE_EWMA_HISTORY_WEIGHT * prev_secs + IDLE_EWMA_SAMPLE_WEIGHT * sample_secs
    }
}

/// Incrementally maintained coordinator-poll state.
///
/// Every station transition that can change its [`StationView`] marks the
/// station dirty; the 2-minute poll refreshes only the dirty stations and
/// reads the free/requester/host sets straight from bitsets. Poll cost
/// therefore scales with the number of stations that *changed* since the
/// last poll, not with fleet size. Debug builds cross-check the cache
/// against a full rescan on every poll, so a forgotten dirty-mark fails
/// loudly in tests (including the golden-trace run) rather than silently
/// skewing placement.
#[derive(Debug)]
struct CoordCache {
    /// Cached per-station views, kept equal to what a full rescan would
    /// produce whenever `dirty` is empty.
    views: Vec<StationView>,
    /// Membership set: `can_host`, with a maintained count and a summary
    /// level so the poll extracts its free head in O(head + active words).
    free_bits: Bits,
    /// Membership set: `waiting_jobs > 0`.
    req_bits: Bits,
    /// Membership set: `hosting_for.is_some()`.
    host_bits: Bits,
    /// Bucketed free-capacity index over the hostable set, maintained in
    /// lockstep with `free_bits` (same transitions, keyed by the view's
    /// `free_cpu_milli`). Handed to capacity-aware policies each poll.
    capacity: CapacityIndex,
    /// Bit per station: queued for refresh (dedupes `dirty`).
    dirty_bits: Vec<u64>,
    /// Stations awaiting refresh.
    dirty: Vec<u32>,
    /// Raw per-station queue lengths — *not* masked by `failed`, unlike
    /// `StationView::waiting_jobs`. The `CoordinatorPolled` event reports
    /// the raw total.
    raw_queue: Vec<u32>,
    /// Sum of `raw_queue`, maintained by refresh deltas.
    raw_queue_total: u32,
    /// Stations currently fenced by a reservation; lets the poll skip the
    /// reservation pass entirely in the common no-reservations case.
    reserved_count: u32,
    // Reusable poll scratch buffers (kept warm between polls).
    free: Vec<NodeId>,
    requesters: Vec<NodeId>,
    hosts: Vec<NodeId>,
    /// Machines granted so far this poll — the exclusion list that lets
    /// order execution iterate the live free set lazily instead of
    /// copying and shrinking a pool vector.
    granted: Vec<NodeId>,
    machines: Vec<NodeId>,
    service: Vec<JobId>,
}

impl CoordCache {
    fn new(stations: usize) -> Self {
        let mut cache = CoordCache {
            views: (0..stations)
                .map(|i| StationView {
                    node: NodeId::new(i as u32),
                    can_host: false,
                    hosting_for: None,
                    waiting_jobs: 0,
                    free_cpu_milli: 0,
                })
                .collect(),
            free_bits: Bits::new(stations),
            req_bits: Bits::new(stations),
            host_bits: Bits::new(stations),
            capacity: CapacityIndex::new(stations),
            dirty_bits: vec![0; stations.div_ceil(64)],
            dirty: Vec::with_capacity(stations),
            raw_queue: vec![0; stations],
            raw_queue_total: 0,
            reserved_count: 0,
            free: Vec::new(),
            requesters: Vec::new(),
            hosts: Vec::new(),
            granted: Vec::new(),
            machines: Vec::new(),
            service: Vec::new(),
        };
        for i in 0..stations {
            cache.mark(i);
        }
        cache
    }

    /// Queues a station for view refresh. Cheap and idempotent; marking a
    /// station whose view did not actually change is harmless, so call
    /// sites can over-approximate.
    #[inline]
    fn mark(&mut self, station: usize) {
        let word = station / 64;
        let bit = 1u64 << (station % 64);
        if self.dirty_bits[word] & bit == 0 {
            self.dirty_bits[word] |= bit;
            self.dirty.push(station as u32);
        }
    }
}

/// Where `execute_assign` finds fallback machines when the policy's
/// preferred target cannot serve the job it negotiates for.
enum AssignFallback<'a> {
    /// No fallback: the grant is for this fenced machine or nothing
    /// (reservation pass).
    None,
    /// The coordinator's free set in ascending id order — the default
    /// preference order, iterated lazily off the bitset.
    FreeSet,
    /// An explicit preference-ordered list (history-aware placement).
    List(&'a [NodeId]),
}

/// Aggregate counters over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Placements started (initial and migratory).
    pub placements: u64,
    /// Checkpoint migrations completed (job moved off a machine).
    pub migrations: u64,
    /// Periodic while-running checkpoints taken.
    pub periodic_checkpoints: u64,
    /// Jobs killed without an outgoing checkpoint.
    pub kills: u64,
    /// Evictions caused by returning owners.
    pub preemptions_owner: u64,
    /// Evictions ordered by the coordinator's policy.
    pub preemptions_priority: u64,
    /// Suspended jobs that resumed in place within the grace period.
    pub resumes_in_place: u64,
    /// Placements abandoned because the target disk was full.
    pub placement_disk_rejections: u64,
    /// Grants wasted because none of the home's waiting jobs had a binary
    /// for (or was unbound from) the granted machine's architecture.
    pub arch_starvation: u64,
    /// Jobs rejected at submission (home disk full).
    pub submit_rejections: u64,
    /// Coordinator poll cycles executed.
    pub polls: u64,
    /// Poll cycles answered from the memo fast path: nothing changed since
    /// the last poll and the policy was provably quiescent, so the
    /// coordinator emitted its telemetry without running `decide` at all.
    pub poll_memo_hits: u64,
    /// Owner-active time overlapping a running foreign job (detection
    /// latency interference), in milliseconds.
    pub interference_ms: u64,
    /// Placements made onto fenced machines for reservation holders.
    pub reservation_placements: u64,
    /// Gang (width > 1) placements started.
    pub gang_placements: u64,
    /// Station crashes injected.
    pub station_failures: u64,
    /// Jobs rolled back to their last checkpoint by a host crash.
    pub crash_rollbacks: u64,
    /// Autonomous local starts while the coordinator was unreachable
    /// (chaos outage or partition).
    pub local_starts: u64,
    /// Corrupted checkpoint transfers detected and re-sent (chaos).
    pub ckpt_retries: u64,
    /// Jobs handed to another pool at a window barrier (sharded runs).
    pub jobs_forwarded: u64,
    /// Jobs received from another pool at a window barrier (sharded runs).
    pub jobs_adopted: u64,
    /// Speculative replicas spawned (redundancy policy).
    pub replicas_spawned: u64,
    /// Replicas cancelled — by a rival copy finishing first, a returning
    /// owner, a crash, a reservation fence, a policy preemption, or the
    /// horizon. Replicas that *win* complete instead of cancelling, so
    /// `replicas_spawned - replicas_cancelled` is the number of jobs a
    /// replica finished.
    pub replicas_cancelled: u64,
    /// Reference-machine work thrown away with cancelled replicas, in
    /// milliseconds — the price paid for the speculation.
    pub wasted_replica_work: u64,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunOutput {
    /// Name of the allocation policy used.
    pub policy_name: String,
    /// Number of stations simulated.
    pub stations: usize,
    /// The run horizon (end of observation).
    pub horizon: SimTime,
    /// Final job table (index = job id).
    pub jobs: Vec<Job>,
    /// The event trace (empty if disabled).
    pub trace: Trace,
    /// Aggregate counters.
    pub totals: Totals,
    /// Jobs in the system over time (queued + placed + running — the
    /// paper's Fig. 3/7 "queue length" counts jobs in service).
    pub queue_total: StepSeries,
    /// Per-user queue lengths.
    pub queue_by_user: BTreeMap<UserId, StepSeries>,
    /// Owner-active CPU-milliseconds per hourly bucket (local utilization
    /// numerator).
    pub local_busy: BucketAccumulator,
    /// Foreign-job CPU-milliseconds per hourly bucket (remote utilization
    /// numerator).
    pub remote_busy: BucketAccumulator,
    /// Total payload bytes moved over the network.
    pub bus_bytes_moved: u64,
    /// Bulk transfers booked on the network.
    pub bus_transfers: u64,
    /// Simulation events dispatched by the engine over the run — the
    /// denominator for events/sec throughput reporting.
    pub events_dispatched: u64,
    /// The O(1)-memory telemetry summary, populated on every run — even
    /// with `record_trace: false`, so long horizons still report.
    pub telemetry: Telemetry,
}

impl RunOutput {
    /// Folds the buffered trace into per-job lifecycle spans.
    ///
    /// Returns an empty log for a run with `record_trace: false` — attach
    /// a live [`crate::spans::SpanSink`] via [`run_cluster_with_sinks`]
    /// for span folding without the trace buffer.
    pub fn spans(&self) -> crate::spans::SpanLog {
        crate::spans::SpanSink::fold(self.trace.events(), self.horizon)
    }

    /// Station-hours the fleet was available for remote execution
    /// (owner idle), the paper's "12438 hours were available" figure.
    pub fn available_station_hours(&self) -> f64 {
        let total = self.horizon.as_hours_f64() * self.stations as f64;
        total - self.local_busy.total() / 3_600_000.0
    }

    /// CPU-hours actually consumed by remote execution (the paper's 4771).
    pub fn consumed_cpu_hours(&self) -> f64 {
        self.remote_busy.total() / 3_600_000.0
    }

    /// Mean local (owner) utilization over the run.
    pub fn mean_local_utilization(&self) -> f64 {
        self.local_busy.total() / (self.horizon.as_millis() as f64 * self.stations as f64)
    }

    /// Mean system utilization (owners + foreign jobs).
    pub fn mean_system_utilization(&self) -> f64 {
        (self.local_busy.total() + self.remote_busy.total())
            / (self.horizon.as_millis() as f64 * self.stations as f64)
    }

    /// Hourly local-utilization series (fractions of fleet capacity).
    pub fn local_utilization_hourly(&self) -> Vec<f64> {
        let n = (self.horizon.as_millis() / 3_600_000) as usize;
        let cap = 3_600_000.0 * self.stations as f64;
        self.local_busy
            .bucket_totals(n)
            .into_iter()
            .map(|v| v / cap)
            .collect()
    }

    /// Hourly system-utilization series (local + remote fractions).
    pub fn system_utilization_hourly(&self) -> Vec<f64> {
        let n = (self.horizon.as_millis() / 3_600_000) as usize;
        let cap = 3_600_000.0 * self.stations as f64;
        let local = self.local_busy.bucket_totals(n);
        let remote = self.remote_busy.bucket_totals(n);
        local
            .into_iter()
            .zip(remote)
            .map(|(l, r)| (l + r) / cap)
            .collect()
    }

    /// Completed jobs only.
    pub fn completed_jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter().filter(|j| j.state == JobState::Completed)
    }
}

/// The cluster model. Most users go through [`run_cluster`]; direct use
/// allows mid-run inspection and fault injection (see
/// [`Cluster::set_coordinator_down`]).
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    stations: Vec<Station>,
    /// Parallel hot-state arrays for `stations` (struct-of-arrays).
    hot: StationHot,
    jobs: Vec<Job>,
    policy: PolicyHolder,
    bus: SharedBus,
    trace: Trace,
    /// Always-on telemetry aggregation (cheap: O(1) per event).
    stats: StatsSink,
    /// Caller-attached observers, fed before the legacy trace.
    extra_sinks: Vec<Box<dyn TraceSink + Send>>,
    totals: Totals,
    queue_total: StepSeries,
    /// Per-user queue series, indexed by dense user slot (see
    /// `user_ids`). Rebuilt into the `RunOutput` map at the end of a run.
    queue_by_user: Vec<StepSeries>,
    /// Distinct submitting users, ascending id; `user_slots` maps jobs
    /// onto indices of this table.
    user_ids: Vec<UserId>,
    /// Dense user slot per job (index = job id).
    user_slots: Vec<u32>,
    /// User slots whose series ever changed — only these appear in the
    /// output map, matching the old lazily-populated `BTreeMap` exactly
    /// (a user whose every job was rejected never shows up).
    user_touched: Vec<bool>,
    local_busy: BucketAccumulator,
    remote_busy: BucketAccumulator,
    coordinator_down: bool,
    /// Reverse dependency edges, indexed by job id: completing job `i` may
    /// release the jobs in `dependents[i]` (paper §5(2) pipelines / DAGs).
    dependents: Vec<Vec<JobId>>,
    /// Outstanding dependency count per job.
    pending_deps: Vec<u32>,
    /// Gangs currently holding stations, indexed by job id. Boxed so the
    /// common width-1 fleet pays one pointer per job, and a `Vec` (not a
    /// hash map) so iteration order is deterministic.
    gangs: Vec<Option<Box<GangState>>>,
    /// Incrementally maintained poll snapshot.
    coord: CoordCache,
    /// Live fault-injection state; `None` (no [`ChaosConfig`]) keeps the
    /// chaos machinery to a single branch on the hot paths.
    chaos: Option<ChaosState>,
    /// Live replica bookkeeping for [`PolicyKind::Redundant`]; `None`
    /// (any other policy) keeps the replica machinery to a single branch
    /// on the hot paths and the trace bit-identical.
    redundancy: Option<RedundancyRuntime>,
}

/// Runtime state of the speculative-replication policy (see
/// [`crate::redundancy`]).
#[derive(Debug)]
struct RedundancyRuntime {
    /// Maximum live replicas per job (`0` disables spawning entirely).
    k: u32,
    /// Which checkpoint timer running primaries use.
    ckpt: CkptTiming,
    /// Stations currently holding a replica of each job (index = job id).
    /// Kept tiny (≤ k entries) so cancel-on-first-finish is O(k).
    by_job: Vec<Vec<u32>>,
}

/// Runtime state of the injected fault schedule (see [`crate::chaos`]).
#[derive(Debug)]
struct ChaosState {
    /// The injected configuration: schedule plus retry-backoff knobs.
    cfg: ChaosConfig,
    /// Nesting depth of open coordinator-outage windows.
    outage_depth: u32,
    /// Per-station nesting depth of open partition windows.
    partition_depth: Vec<u32>,
    /// Control-loss window end: polls before this instant are dropped.
    ctrl_loss_until: SimTime,
    /// Corruption window end: non-gang checkpoint transfers completing
    /// before this instant land damaged and are re-sent.
    ckpt_corrupt_until: SimTime,
    /// One-shot: the next executed poll sees (and discards) a duplicate.
    dup_pending: bool,
    /// One-shot: the next on-grid poll runs this much later instead.
    delay_pending: Option<SimDuration>,
    /// Consecutive corrupted attempts per job (index = job id), cleared
    /// by a clean checkpoint completion.
    retry_attempts: Vec<u32>,
    /// Whether an autonomy-sweep chain is already scheduled.
    sweep_pending: bool,
}

impl ChaosState {
    fn new(cfg: ChaosConfig, stations: usize, jobs: usize) -> Self {
        ChaosState {
            cfg,
            outage_depth: 0,
            partition_depth: vec![0; stations],
            ctrl_loss_until: SimTime::ZERO,
            ckpt_corrupt_until: SimTime::ZERO,
            dup_pending: false,
            delay_pending: None,
            retry_attempts: vec![0; jobs],
            sweep_pending: false,
        }
    }

    /// Whether `station` currently cannot reach the coordinator.
    fn unreachable(&self, station: usize) -> bool {
        self.outage_depth > 0 || self.partition_depth[station] > 0
    }
}

/// Owned polymorphic policy (kept concrete-debuggable).
#[derive(Debug)]
enum PolicyHolder {
    UpDown(UpDown),
    Fifo(FifoPolicy),
    RoundRobin(RoundRobinPolicy),
    Random(RandomPolicy),
    Frac(FracPolicy),
    Redundant(RedundantPolicy),
}

impl PolicyHolder {
    fn as_dyn(&mut self) -> &mut dyn AllocationPolicy {
        match self {
            PolicyHolder::UpDown(p) => p,
            PolicyHolder::Fifo(p) => p,
            PolicyHolder::RoundRobin(p) => p,
            PolicyHolder::Random(p) => p,
            PolicyHolder::Frac(p) => p,
            PolicyHolder::Redundant(p) => p,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            PolicyHolder::UpDown(_) => "up-down",
            PolicyHolder::Fifo(_) => "fifo",
            PolicyHolder::RoundRobin(_) => "round-robin",
            PolicyHolder::Random(_) => "random",
            PolicyHolder::Frac(_) => "frac",
            PolicyHolder::Redundant(_) => "redundant",
        }
    }
}

impl Cluster {
    /// Builds a cluster from a configuration and the complete set of job
    /// submissions (arrival events are planted by [`run_cluster`] /
    /// [`Cluster::prime`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or job ids are not the dense
    /// sequence `0..n` in order; [`Cluster::try_new`] reports the same
    /// conditions as a [`ConfigError`] instead.
    pub fn new(config: ClusterConfig, specs: Vec<JobSpec>) -> Self {
        match Cluster::try_new(config, specs) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Cluster::new`]: rejects invalid configurations
    /// and malformed job sets with a typed error.
    pub fn try_new(config: ClusterConfig, specs: Vec<JobSpec>) -> Result<Self, ConfigError> {
        config.check()?;
        for (i, s) in specs.iter().enumerate() {
            if s.id.0 as usize != i {
                return Err(ConfigError::JobIdsNotDense);
            }
            if s.home.as_usize() >= config.stations {
                return Err(ConfigError::JobHomeOutsideFleet { job: s.id, home: s.home });
            }
            for dep in &s.depends_on {
                if dep.0 >= s.id.0 {
                    return Err(ConfigError::JobDependencyOrder { job: s.id, dep: *dep });
                }
            }
            if s.width == 0 {
                return Err(ConfigError::JobZeroWidth { job: s.id });
            }
            if s.width as usize > config.stations {
                return Err(ConfigError::JobWidthExceedsFleet {
                    job: s.id,
                    width: s.width as usize,
                    stations: config.stations,
                });
            }
            if s.resources.cpu_milli == 0 {
                return Err(ConfigError::JobZeroCpuDemand { job: s.id });
            }
            // Gangs coordinate whole machines; fractional members would
            // break the collective suspend/checkpoint protocol.
            if s.width > 1 && !s.resources.is_whole() {
                return Err(ConfigError::GangFractionalResources { job: s.id });
            }
        }
        let owners = build_fleet(
            config.stations,
            &config.owner,
            config.owner_heterogeneity,
            config.seed,
        );
        let root = condor_sim::rng::SimRng::seed_from(config.seed);
        let stations = owners
            .into_iter()
            .enumerate()
            .map(|(i, owner)| {
                let owner_state = owner.state();
                Station {
                    rng: root.substream(config.seed, &format!("station-dwell-{i}")),
                    owner,
                    owner_state,
                    queue: BackgroundQueue::new(config.local_order),
                    residents: Vec::new(),
                    capacity: config.capacity_profiles[i % config.capacity_profiles.len()],
                    disk_capacity: config.station.disk_capacity,
                    disk_used: 0,
                    detection_pending: false,
                    failed: false,
                    reserved_for: None,
                    run_overlaps: Vec::new(),
                }
            })
            .collect();
        let policy = match config.policy {
            PolicyKind::UpDown(ud) => PolicyHolder::UpDown(UpDown::new(ud)),
            PolicyKind::Fifo => PolicyHolder::Fifo(FifoPolicy::new()),
            PolicyKind::RoundRobin => PolicyHolder::RoundRobin(RoundRobinPolicy::new()),
            PolicyKind::Random => PolicyHolder::Random(RandomPolicy::new(config.seed)),
            PolicyKind::Frac => PolicyHolder::Frac(FracPolicy::new()),
            PolicyKind::Redundant(rc) => PolicyHolder::Redundant(RedundantPolicy::new(rc)),
        };
        let redundancy = match config.policy {
            PolicyKind::Redundant(rc) => Some(RedundancyRuntime {
                k: rc.replicas,
                ckpt: rc.checkpointing,
                by_job: vec![Vec::new(); specs.len()],
            }),
            _ => None,
        };
        let trace = if config.record_trace {
            Trace::new()
        } else {
            Trace::disabled()
        };
        let bus = SharedBus::new(config.bus);
        let mut dependents: Vec<Vec<JobId>> = vec![Vec::new(); specs.len()];
        let pending_deps: Vec<u32> = specs
            .iter()
            .map(|s| {
                for dep in &s.depends_on {
                    dependents[dep.0 as usize].push(s.id);
                }
                s.depends_on.len() as u32
            })
            .collect();
        // Intern users into dense slots so per-job bookkeeping indexes a
        // `Vec` instead of probing a map keyed by sparse user ids.
        let mut user_ids: Vec<UserId> = specs.iter().map(|s| s.user).collect();
        user_ids.sort_unstable();
        user_ids.dedup();
        let user_slots: Vec<u32> = specs
            .iter()
            .map(|s| user_ids.binary_search(&s.user).expect("interned user") as u32)
            .collect();
        let coord = CoordCache::new(config.stations);
        let chaos = config
            .chaos
            .as_ref()
            .map(|c| ChaosState::new(c.clone(), config.stations, specs.len()));
        Ok(Cluster {
            hot: StationHot::new(config.stations),
            stations,
            dependents,
            pending_deps,
            gangs: specs.iter().map(|_| None).collect(),
            queue_by_user: user_ids.iter().map(|_| StepSeries::new(0.0)).collect(),
            user_touched: vec![false; user_ids.len()],
            user_ids,
            user_slots,
            jobs: specs.into_iter().map(Job::new).collect(),
            policy,
            bus,
            trace,
            stats: StatsSink::new(),
            extra_sinks: Vec::new(),
            totals: Totals::default(),
            queue_total: StepSeries::new(0.0),
            local_busy: BucketAccumulator::new(SimDuration::HOUR),
            remote_busy: BucketAccumulator::new(SimDuration::HOUR),
            coordinator_down: false,
            coord,
            chaos,
            redundancy,
            config,
        })
    }

    /// Plants the initial event set: job arrivals, owner transitions, and
    /// the first coordinator poll. Call once before running the engine.
    pub fn prime(engine: &mut Engine<Cluster>) {
        let first_poll = engine.model().config.costs.coordinator_poll_interval;
        let n_jobs = engine.model().jobs.len();
        let n_stations = engine.model().stations.len();
        // Owner processes: fix initial active intervals and first flips.
        for i in 0..n_stations {
            let (dwell, state) = {
                let st = &mut engine.model_mut().stations[i];
                let dwell = st.owner.dwell_and_flip(SimTime::ZERO, &mut st.rng);
                (dwell, st.owner_state)
            };
            if state == OwnerState::Active {
                let hot = &mut engine.model_mut().hot;
                hot.owner_active_since[i] = Some(SimTime::ZERO);
                hot.idle_since[i] = None;
            }
            engine
                .scheduler()
                .at(SimTime::ZERO + dwell, Event::OwnerFlip { station: i as u32 });
        }
        for j in 0..n_jobs {
            let at = engine.model().jobs[j].spec.arrival;
            engine.scheduler().at(at, Event::Arrival(JobId(j as u64)));
        }
        let reservations = engine.model().config.reservations.clone();
        for (idx, r) in reservations.iter().enumerate() {
            engine
                .scheduler()
                .at(r.from, Event::ReservationStart { idx: idx as u32 });
            engine
                .scheduler()
                .at(r.until, Event::ReservationEnd { idx: idx as u32 });
        }
        if let Some(failures) = engine.model().config.failures {
            for i in 0..n_stations {
                let ttf = {
                    let st = &mut engine.model_mut().stations[i];
                    SimDuration::from_secs_f64(st.rng.exponential(failures.mtbf.as_secs_f64()))
                        .max(SimDuration::SECOND)
                };
                engine
                    .scheduler()
                    .at(SimTime::ZERO + ttf, Event::StationCrash { station: i as u32 });
            }
        }
        // Chaos schedules are pre-expanded data: each entry plants one
        // fault event, so an empty schedule perturbs nothing at all.
        let n_faults = engine
            .model()
            .chaos
            .as_ref()
            .map_or(0, |c| c.cfg.schedule.entries.len());
        for idx in 0..n_faults {
            let at = engine.model().chaos.as_ref().expect("chaos configured").cfg.schedule.entries
                [idx]
                .at;
            engine.scheduler().at(at, Event::ChaosFault { idx: idx as u32 });
        }
        engine.scheduler().at(SimTime::ZERO + first_poll, Event::Poll);
    }

    /// Takes the coordinator offline (`true`) or back online. While down,
    /// polls are skipped: no new placements or priority preemptions, but
    /// running jobs, owner detection, grace timers, and checkpoints proceed
    /// untouched — the paper's §2.1 failure-isolation property.
    pub fn set_coordinator_down(&mut self, down: bool) {
        self.coordinator_down = down;
    }

    /// The job table (current states mid-run).
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The telemetry summary accumulated so far.
    pub fn telemetry(&self) -> &Telemetry {
        self.stats.telemetry()
    }

    /// Attaches an additional observer of the event stream. Sinks see every
    /// event from this point on, in simulation order, and their `finish`
    /// runs when the cluster finalizes. Use a
    /// [`SharedSink`](crate::telemetry::SharedSink) handle to keep access
    /// to the sink after the run.
    pub fn attach_sink(&mut self, mut sink: Box<dyn TraceSink + Send>) {
        // Flatten fan-out containers: their children become direct members
        // of `extra_sinks`, so each event pays one virtual call per leaf
        // sink instead of one per nesting level per leaf.
        match sink.take_children() {
            Some(children) => {
                for child in children {
                    self.attach_sink(child);
                }
            }
            None => self.extra_sinks.push(sink),
        }
    }

    /// Routes one event through every observer: the always-on stats sink,
    /// caller-attached sinks, then the legacy trace.
    fn emit(&mut self, at: SimTime, kind: TraceKind) {
        let ev = TraceEvent { at, kind };
        self.stats.record(&ev);
        if !self.extra_sinks.is_empty() {
            self.emit_extra(&ev);
        }
        self.trace.record(at, kind);
    }

    /// The attached-observer fan-out, out of line so the common
    /// no-extra-sinks emit path stays branch-and-return small.
    #[cold]
    fn emit_extra(&mut self, ev: &TraceEvent) {
        for s in &mut self.extra_sinks {
            s.record(ev);
        }
    }

    /// Routes one gauge sample through every observer.
    fn emit_sample(&mut self, s: GaugeSample) {
        self.stats.sample(&s);
        for sink in &mut self.extra_sinks {
            sink.sample(&s);
        }
    }

    /// Aggregate counters so far.
    pub fn totals(&self) -> &Totals {
        &self.totals
    }

    /// The Up-Down schedule index of a station, if the Up-Down policy is in
    /// force.
    pub fn updown_index(&self, node: NodeId) -> Option<f64> {
        match &self.policy {
            PolicyHolder::UpDown(p) => Some(p.index_of(node)),
            PolicyHolder::Redundant(p) => Some(p.inner().index_of(node)),
            _ => None,
        }
    }

    /// The architecture of station `i` under the configured pattern.
    pub fn station_arch(&self, i: usize) -> condor_model::station::Arch {
        self.config.arch_pattern[i % self.config.arch_pattern.len()]
    }

    /// Whether `station` hosts `job` in a phase accepted by `phase_pred`.
    fn slot_is(&self, station: usize, job: JobId, phase_pred: impl Fn(&Phase) -> bool) -> bool {
        self.stations[station]
            .resident(job)
            .is_some_and(|slot| phase_pred(&slot.phase))
    }

    // ----- queue-length bookkeeping -------------------------------------

    fn queue_delta(&mut self, now: SimTime, job: JobId, delta: f64) {
        self.queue_total.add(now, delta);
        let slot = self.user_slots[job.0 as usize] as usize;
        self.user_touched[slot] = true;
        self.queue_by_user[slot].add(now, delta);
    }

    // ----- pool-shard support -------------------------------------------

    /// Capacity summary for window-barrier forwarding decisions:
    /// `(free_stations, waiting_jobs)` after refreshing the coordinator
    /// cache. Free stations are those the coordinator could place on right
    /// now; waiting jobs is the raw queued total across the shard.
    pub(crate) fn capacity_snapshot(&mut self) -> (u32, u32) {
        self.flush_dirty();
        (self.coord.free_bits.count(), self.coord.raw_queue_total)
    }

    /// Pulls one forwardable job out of this shard's queues for delivery
    /// to `to_pool`, or `None` if nothing movable is waiting.
    ///
    /// Only simple jobs move: queued, width 1, no dependency edges in
    /// either direction, and never placed (no work accrued, no image in
    /// flight). The job leaves its local queue, frees the standing image
    /// on its home disk, and its state becomes [`JobState::Forwarded`];
    /// the returned spec is everything the destination pool needs to
    /// adopt it.
    pub(crate) fn extract_forwardable(&mut self, now: SimTime, to_pool: u32) -> Option<JobSpec> {
        // Longest raw queue first (ties: lowest station id) so forwarding
        // relieves the most backed-up corner of the shard.
        let src = (0..self.stations.len())
            .max_by_key(|&i| (self.stations[i].queue.len(), std::cmp::Reverse(i)))?;
        let job = self.stations[src].queue.iter().find(|j| {
            let job = &self.jobs[j.0 as usize];
            job.state == JobState::Queued
                && job.spec.width == 1
                && job.spec.depends_on.is_empty()
                && self.dependents[j.0 as usize].is_empty()
                && job.work_done.is_zero()
                && job.placements == 0
                // A job with live replicas must finish (or cancel them)
                // in this pool; forwarding it would orphan the copies.
                && self
                    .redundancy
                    .as_ref()
                    .is_none_or(|r| r.by_job[j.0 as usize].is_empty())
        })?;
        self.stations[src].queue.remove(job);
        let image = self.jobs[job.0 as usize].spec.image_bytes;
        if !self.config.checkpoint_server {
            self.stations[src].disk_used = self.stations[src].disk_used.saturating_sub(image);
        }
        self.jobs[job.0 as usize].state = JobState::Forwarded;
        self.coord.mark(src);
        self.queue_delta(now, job, -1.0);
        self.totals.jobs_forwarded += 1;
        self.emit(now, TraceKind::JobForwarded { job, to_pool });
        Some(self.jobs[job.0 as usize].spec.clone())
    }

    /// Registers a job forwarded from another pool. Returns the local id
    /// the job arrives under; the caller schedules the arrival event at
    /// the delivery instant. The shortest local queue (ties: lowest
    /// station id) becomes the job's new home.
    pub(crate) fn adopt_spec(&mut self, spec: JobSpec) -> JobId {
        let local = JobId(self.jobs.len() as u64);
        // Prefer a home whose capacity can ever grant the job's demand —
        // a fractional fleet may mix machine sizes — falling back to the
        // plain shortest queue when nothing in this shard fits.
        let home = (0..self.stations.len())
            .filter(|&i| spec.resources.fits(self.stations[i].capacity))
            .min_by_key(|&i| (self.stations[i].queue.len(), i))
            .or_else(|| (0..self.stations.len()).min_by_key(|&i| (self.stations[i].queue.len(), i)))
            .expect("shard has stations");
        let slot = match self.user_ids.binary_search(&spec.user) {
            Ok(pos) => pos,
            Err(pos) => {
                // A user this shard has never seen: splice a new dense
                // slot in and shift every existing mapping above it.
                self.user_ids.insert(pos, spec.user);
                self.queue_by_user.insert(pos, StepSeries::new(0.0));
                self.user_touched.insert(pos, false);
                for s in &mut self.user_slots {
                    if *s as usize >= pos {
                        *s += 1;
                    }
                }
                pos
            }
        };
        self.user_slots.push(slot as u32);
        let spec =
            JobSpec { id: local, home: NodeId::new(home as u32), depends_on: Vec::new(), ..spec };
        let mut job = Job::new(spec);
        job.adopted = true;
        self.jobs.push(job);
        self.dependents.push(Vec::new());
        self.pending_deps.push(0);
        self.gangs.push(None);
        if let Some(c) = self.chaos.as_mut() {
            c.retry_attempts.push(0);
        }
        if let Some(r) = self.redundancy.as_mut() {
            r.by_job.push(Vec::new());
        }
        local
    }

    // ----- coordinator-view cache ---------------------------------------

    /// Capacity still unclaimed by station `i`'s residents, from the
    /// incrementally maintained occupancy total.
    #[inline]
    fn free_capacity(&self, i: usize) -> ResourceVec {
        self.stations[i].capacity.sub(self.hot.used_cap[i])
    }

    /// History-aware placement score: the longer of the current idle
    /// streak and the EWMA of completed idle intervals.
    fn idle_score(&self, i: usize, now: SimTime) -> f64 {
        let current_streak = self.hot.idle_since[i]
            .map(|t| now.saturating_since(t).as_secs_f64())
            .unwrap_or(0.0);
        self.hot.ewma_idle_secs[i].max(current_streak)
    }

    /// Removes `job`'s slot from station `i`, keeping the struct-of-arrays
    /// occupancy total in lockstep with the residents list.
    fn remove_resident(&mut self, i: usize, job: JobId) -> Option<ForeignSlot> {
        let slot = self.stations[i].remove_resident(job)?;
        self.hot.used_cap[i] = self.hot.used_cap[i].sub_exact(slot.demand);
        Some(slot)
    }

    /// Recomputes one station's view from scratch — the single source of
    /// truth shared by cache refresh and the debug full-rescan check.
    fn compute_view(&self, i: usize) -> StationView {
        let st = &self.stations[i];
        // A partitioned station is dark to the coordinator: it takes no
        // new placements and its queue is invisible until the link heals.
        let cut = self.chaos.as_ref().is_some_and(|c| c.partition_depth[i] > 0);
        let free = self.free_capacity(i);
        // With whole-machine demands (the default) any resident consumes
        // the full capacity vector, so "has free CPU and memory" below is
        // exactly the legacy "no foreign job resident" condition.
        let can_host = !cut
            && !st.failed
            && st.reserved_for.is_none()
            && st.owner_state == OwnerState::Idle
            && free.cpu_milli > 0
            && free.mem_milli > 0;
        StationView {
            node: NodeId::new(i as u32),
            can_host,
            // Fenced machines are invisible to the general policy: it may
            // neither assign them nor preempt the holder's jobs on them.
            hosting_for: if st.reserved_for.is_some() {
                None
            } else {
                st.residents.iter().find_map(|slot| {
                    // A running replica counts as hosting: replication
                    // spends the home's own Up-Down standing, and a rival
                    // user's preemption order cancels the replica.
                    let counts = matches!(
                        slot.phase,
                        Phase::Running { .. } | Phase::Replica(ReplicaState::Running { .. })
                    ) || (matches!(slot.phase, Phase::GangMember)
                        && self.gangs[slot.job.0 as usize]
                            .as_deref()
                            .is_some_and(|g| g.running));
                    counts.then(|| self.jobs[slot.job.0 as usize].spec.home)
                })
            },
            // A downed station's local scheduler is unreachable; its queue
            // thaws on recovery.
            waiting_jobs: if st.failed || cut { 0 } else { st.queue.len() },
            free_cpu_milli: if can_host { free.cpu_milli } else { 0 },
        }
    }

    fn refresh_station(&mut self, i: usize) {
        let view = self.compute_view(i);
        let raw = self.stations[i].queue.len() as u32;
        let c = &mut self.coord;
        c.raw_queue_total = c.raw_queue_total - c.raw_queue[i] + raw;
        c.raw_queue[i] = raw;
        c.free_bits.set(i, view.can_host);
        c.req_bits.set(i, view.waiting_jobs > 0);
        c.host_bits.set(i, view.hosting_for.is_some());
        c.capacity.update(i, c.views[i].free_cpu_milli, view.free_cpu_milli);
        c.views[i] = view;
    }

    /// Refreshes every dirty station's cached view.
    fn flush_dirty(&mut self) {
        while let Some(i) = self.coord.dirty.pop() {
            let i = i as usize;
            self.coord.dirty_bits[i / 64] &= !(1u64 << (i % 64));
            self.refresh_station(i);
        }
    }

    /// Debug builds run the full rescan cross-check after every poll's
    /// flush; release builds skip it (it is O(stations) per poll, exactly
    /// the scan the incremental cache exists to avoid).
    #[cfg(debug_assertions)]
    fn debug_check_coord(&self) {
        self.check_coord_rescan();
    }

    /// Test hook: flushes pending view refreshes, then cross-checks every
    /// incrementally maintained coordinator structure against a
    /// from-scratch recomputation — in every build profile. Panics on
    /// divergence. Driven between arbitrary events by the consistency
    /// suite; a flush here is safe because the next poll would perform
    /// the identical refreshes anyway.
    #[doc(hidden)]
    pub fn verify_coord_cache(&mut self) {
        self.flush_dirty();
        self.check_coord_rescan();
    }

    /// Full-rescan cross-check: with no station dirty, the cache must
    /// match recomputation from scratch — the views, every membership set,
    /// the maintained counts and occupancy totals, and the bucketed
    /// capacity index. Catches any transition that forgot to mark its
    /// station.
    fn check_coord_rescan(&self) {
        let mut free = 0u32;
        let mut req = 0u32;
        let mut host = 0u32;
        for i in 0..self.stations.len() {
            let fresh = self.compute_view(i);
            assert_eq!(
                self.hot.used_cap[i],
                self.stations[i].used(),
                "struct-of-arrays occupancy total drifted at {i}"
            );
            assert_eq!(
                self.coord.views[i], fresh,
                "stale cached view for station {i} — a transition forgot to mark it dirty"
            );
            assert_eq!(self.coord.free_bits.get(i), fresh.can_host, "free set wrong at {i}");
            assert_eq!(
                self.coord.req_bits.get(i),
                fresh.waiting_jobs > 0,
                "requester set wrong at {i}"
            );
            assert_eq!(
                self.coord.host_bits.get(i),
                fresh.hosting_for.is_some(),
                "host set wrong at {i}"
            );
            free += fresh.can_host as u32;
            req += (fresh.waiting_jobs > 0) as u32;
            host += fresh.hosting_for.is_some() as u32;
        }
        assert_eq!(self.coord.free_bits.count(), free, "free count drifted");
        assert_eq!(self.coord.req_bits.count(), req, "requester count drifted");
        assert_eq!(self.coord.host_bits.count(), host, "host count drifted");
        let mut expect: Vec<(u32, u32)> = (0..self.stations.len())
            .filter_map(|i| {
                let v = &self.coord.views[i];
                v.can_host.then_some((v.free_cpu_milli, i as u32))
            })
            .collect();
        expect.sort_unstable();
        assert_eq!(
            self.coord.capacity.entries(),
            expect,
            "bucketed capacity index diverged from the hostable set"
        );
        let raw: u32 = self.stations.iter().map(|s| s.queue.len() as u32).sum();
        assert_eq!(raw, self.coord.raw_queue_total, "raw queue total drifted");
    }

    /// Sets or clears a station's reservation fence, maintaining the
    /// fenced-station count and the view cache.
    fn set_reserved(&mut self, i: usize, holder: Option<NodeId>) {
        let prev = self.stations[i].reserved_for;
        if prev.is_some() != holder.is_some() {
            if holder.is_some() {
                self.coord.reserved_count += 1;
            } else {
                self.coord.reserved_count -= 1;
            }
        }
        self.stations[i].reserved_for = holder;
        self.coord.mark(i);
    }

    // ----- owner handling ------------------------------------------------

    fn on_owner_flip(&mut self, now: SimTime, station: u32, sched: &mut Scheduler<Event>) {
        let i = station as usize;
        let new_state = self.stations[i].owner.state();
        let dwell = {
            let st = &mut self.stations[i];
            st.owner.dwell_and_flip(now, &mut st.rng)
        };
        sched.at(now + dwell, Event::OwnerFlip { station });
        self.coord.mark(i);
        self.stations[i].owner_state = new_state;
        match new_state {
            OwnerState::Active => {
                self.hot.owner_active_since[i] = Some(now);
                if let Some(t) = self.hot.idle_since[i].take() {
                    let len = now.since(t).as_secs_f64();
                    self.hot.ewma_idle_secs[i] =
                        ewma_idle_update(self.hot.ewma_idle_secs[i], len);
                }
                self.emit(now, TraceKind::OwnerActive { station: NodeId::new(station) });
            }
            OwnerState::Idle => {
                if let Some(t) = self.hot.owner_active_since[i].take() {
                    self.local_busy
                        .deposit_interval(t, now, now.since(t).as_millis() as f64);
                    // The foreign job ran right through this owner visit
                    // (it was shorter than the detection interval): that
                    // span belongs to the owner in the utilization ledger.
                    let st = &mut self.stations[i];
                    let counts_as_running = st.residents.iter().any(|slot| {
                        matches!(
                            slot.phase,
                            Phase::Running { .. } | Phase::Replica(ReplicaState::Running { .. })
                        ) || (matches!(slot.phase, Phase::GangMember)
                            && self.gangs[slot.job.0 as usize]
                                .as_deref()
                                .is_some_and(|g| g.running))
                    });
                    if counts_as_running {
                        st.run_overlaps.push((t, now));
                    }
                }
                self.hot.idle_since[i] = Some(now);
                self.emit(now, TraceKind::OwnerIdle { station: NodeId::new(station) });
            }
        }
        // Schedule a local-scheduler check on the 30-second grid if any
        // resident might need suspending or resuming.
        let needs_check = self.stations[i].residents.iter().any(|slot| match new_state {
            OwnerState::Active => matches!(
                slot.phase,
                Phase::Running { .. } | Phase::Arriving | Phase::GangMember | Phase::Replica(_)
            ),
            OwnerState::Idle => {
                matches!(slot.phase, Phase::Suspended { .. } | Phase::GangMember)
            }
        });
        if needs_check && !self.stations[i].detection_pending {
            self.stations[i].detection_pending = true;
            let grid = self.config.costs.owner_check_interval;
            let next = now.align_down(grid) + grid;
            sched.at(next, Event::DetectOwner { station });
        }
    }

    fn on_detect_owner(&mut self, now: SimTime, station: u32, sched: &mut Scheduler<Event>) {
        let i = station as usize;
        self.stations[i].detection_pending = false;
        // Conservative: any reconciliation below may change this station's
        // occupancy, and marking an unchanged station costs nothing.
        self.coord.mark(i);
        let owner_state = self.stations[i].owner_state;
        enum SlotInfo {
            Running(EventToken, JobId),
            Suspended(EventToken, JobId),
            Gang(JobId),
            Replica(JobId),
        }
        // Snapshot every resident needing reconciliation: the owner's
        // return (or departure) affects all of them, not just the first.
        let infos: Vec<SlotInfo> = self.stations[i]
            .residents
            .iter()
            .filter_map(|slot| match &slot.phase {
                Phase::Running { finish } => Some(SlotInfo::Running(*finish, slot.job)),
                Phase::Suspended { grace } => Some(SlotInfo::Suspended(*grace, slot.job)),
                Phase::GangMember => Some(SlotInfo::Gang(slot.job)),
                Phase::Replica(_) => Some(SlotInfo::Replica(slot.job)),
                _ => None,
            })
            .collect();
        for info in infos {
            match (owner_state, info) {
                // Gang members reconcile collectively.
                (_, SlotInfo::Gang(job)) => {
                    let Some(gang) = self.gangs[job.0 as usize].as_deref() else { continue };
                    if gang.departing {
                        continue;
                    }
                    match owner_state {
                        OwnerState::Active if gang.running => {
                            self.gang_suspend(now, job, station, sched);
                        }
                        OwnerState::Idle if !gang.running => {
                            // Maybe everyone is idle again (or the last image
                            // just arrived): try to (re)start.
                            self.gang_try_start(now, job, sched);
                        }
                        _ => {}
                    }
                }
                (OwnerState::Active, SlotInfo::Running(finish, job)) => {
                    sched.cancel(finish);
                    let owner_back = self.hot.owner_active_since[i].unwrap_or(now);
                    self.stop_running_segment(now, i, job, owner_back);
                    // Interference: the owner shared the machine from their
                    // return until this detection.
                    if let Some(active_since) = self.hot.owner_active_since[i] {
                        let overlap = now.saturating_since(active_since);
                        self.totals.interference_ms += overlap.as_millis();
                    }
                    self.totals.preemptions_owner += 1;
                    match self.config.eviction {
                        EvictionStrategy::GraceThenCheckpoint { grace } => {
                            let token = sched.at(now + grace, Event::GraceOver { station, job });
                            if let Some(slot) = self.stations[i].resident_mut(job) {
                                slot.phase = Phase::Suspended { grace: token };
                            }
                            self.jobs[job.0 as usize].state =
                                JobState::Suspended { on: NodeId::new(station) };
                            self.emit(
                                now,
                                TraceKind::JobSuspended { job, on: NodeId::new(station) },
                            );
                        }
                        EvictionStrategy::ImmediateKill { .. } => {
                            self.kill_in_place(now, i, job);
                        }
                    }
                }
                (OwnerState::Idle, SlotInfo::Suspended(grace, job)) => {
                    sched.cancel(grace);
                    self.start_running(now, i, job, sched);
                    self.totals.resumes_in_place += 1;
                    self.emit(
                        now,
                        TraceKind::JobResumedInPlace { job, on: NodeId::new(station) },
                    );
                }
                (OwnerState::Active, SlotInfo::Replica(job)) => {
                    // Replicas are pure speculation: no grace period, no
                    // checkpoint — the owner's return kills them outright.
                    if let Some(active_since) = self.hot.owner_active_since[i] {
                        let overlap = now.saturating_since(active_since);
                        self.totals.interference_ms += overlap.as_millis();
                    }
                    self.cancel_replica(now, i, job, sched);
                }
                _ => {} // owner flickered; nothing to reconcile
            }
        }
    }

    // ----- job lifecycle helpers ------------------------------------------

    /// Closes the current run segment: accrues work/remote CPU and deposits
    /// the interval into the remote-utilization accumulator. Does not
    /// change `state`/`foreign`.
    ///
    /// `util_end` caps the utilization deposit: when the segment ends
    /// because the owner returned, the tail between the owner's return and
    /// its detection belongs to the *owner* in the utilization ledgers
    /// (the machine cannot be more than 100% busy), even though the job
    /// accrues the full wall time of background cycles it received.
    fn stop_running_segment(&mut self, now: SimTime, station: usize, job: JobId, util_end: SimTime) {
        let cpu = self.jobs[job.0 as usize].spec.resources.cpu_milli;
        let eff = self.jobs[job.0 as usize].spec.speedup.effective_milli(cpu);
        let running_since = {
            let j = &mut self.jobs[job.0 as usize];
            let wall = now.since(j.running_since);
            // Progress accrues at the job's *effective* rate for the
            // granted CPU fraction — the speedup curve prices sub-whole
            // grants; identity for whole-machine grants.
            let work = scale_work(self.config.station.work_done_in(wall), eff);
            j.accrue_run(work, self.config.costs.remote_syscall_cost.as_millis() * 1_000);
            j.running_since
        };
        self.deposit_run_utilization(station, running_since, util_end.min(now), cpu as f64 / 1000.0);
    }

    /// Deposits the remote-utilization share of a run segment, excising
    /// any owner-flicker overlap intervals accumulated on the station so
    /// each hourly bucket stays within physical capacity. `frac` scales
    /// the deposit to the job's granted CPU share (1.0 for whole-machine
    /// grants, which multiplies exactly).
    fn deposit_run_utilization(
        &mut self,
        station: usize,
        running_since: SimTime,
        util_end: SimTime,
        frac: f64,
    ) {
        let overlaps = std::mem::take(&mut self.stations[station].run_overlaps);
        let mut cursor = running_since;
        for (o_start, o_end) in overlaps {
            let o_start = o_start.max(cursor).min(util_end);
            let o_end = o_end.max(cursor).min(util_end);
            if o_start > cursor {
                self.remote_busy.deposit_interval(
                    cursor,
                    o_start,
                    o_start.since(cursor).as_millis() as f64 * frac,
                );
            }
            cursor = cursor.max(o_end);
        }
        if util_end > cursor {
            self.remote_busy.deposit_interval(
                cursor,
                util_end,
                util_end.since(cursor).as_millis() as f64 * frac,
            );
        }
    }

    /// Starts (or resumes) execution at `station`, scheduling completion.
    fn start_running(
        &mut self,
        now: SimTime,
        station: usize,
        job: JobId,
        sched: &mut Scheduler<Event>,
    ) {
        let remaining = self.jobs[job.0 as usize].remaining();
        debug_assert!(!remaining.is_zero(), "starting a finished job");
        let demand = self.jobs[job.0 as usize].spec.resources;
        // A fractional grant stretches the wall clock by the job's
        // effective rate under its speedup curve; the finish event is
        // exact for the granted rate, so remaining work is only re-derived
        // when a segment is cut short. A thrashing job never stalls
        // entirely — it crawls at one milli so the finish event exists.
        let eff = self.jobs[job.0 as usize]
            .spec
            .speedup
            .effective_milli(demand.cpu_milli)
            .max(1);
        let wall = inflate_wall(self.config.station.wall_time_for(remaining), eff);
        let finish = sched.at(
            now + wall,
            Event::Finish { job, on: station as u32 },
        );
        self.coord.mark(station);
        let st = &mut self.stations[station];
        if let Some(slot) = st.resident_mut(job) {
            slot.phase = Phase::Running { finish };
        } else {
            st.residents.push(ForeignSlot { job, demand, phase: Phase::Running { finish } });
            self.hot.used_cap[station] = self.hot.used_cap[station].add(demand);
        }
        st.run_overlaps.clear();
        let arch = self.station_arch(station);
        let j = &mut self.jobs[job.0 as usize];
        debug_assert!(
            j.bound_arch.is_none_or(|b| b == arch),
            "job bound to {:?} started on {arch:?}",
            j.bound_arch
        );
        // First execution binds the job's progress to this architecture.
        j.bound_arch = Some(arch);
        j.state = JobState::Running { on: NodeId::new(station as u32) };
        j.running_since = now;
        j.epoch += 1;
        let epoch = j.epoch;
        // The opportunistic timer replaces the fixed-period chain when the
        // redundancy policy arms it; otherwise the immediate-kill strategy's
        // periodic chain runs exactly as before.
        match self.opportunistic_ckpt() {
            Some((check_every, _)) => {
                sched.at(
                    now + check_every,
                    Event::OpportunisticCkpt { job, on: station as u32, epoch },
                );
            }
            None => {
                if let EvictionStrategy::ImmediateKill { checkpoint_every } = self.config.eviction {
                    sched.at(
                        now + checkpoint_every,
                        Event::PeriodicCkpt { job, on: station as u32, epoch },
                    );
                }
            }
        }
        self.emit(
            now,
            TraceKind::JobStarted { job, on: NodeId::new(station as u32) },
        );
    }

    /// Immediate-kill eviction: the job vanishes from the station at once;
    /// un-checkpointed work is lost.
    fn kill_in_place(&mut self, now: SimTime, station: usize, job: JobId) {
        let image = self.jobs[job.0 as usize].spec.image_bytes;
        self.stations[station].disk_used -= image;
        self.remove_resident(station, job);
        self.coord.mark(station);
        let j = &mut self.jobs[job.0 as usize];
        j.revert_to_checkpoint();
        j.state = JobState::Queued;
        let home = j.spec.home.as_usize();
        let remaining = j.remaining();
        self.stations[home].queue.enqueue_front(job, remaining);
        self.coord.mark(home);
        self.totals.kills += 1;
        self.emit(now, TraceKind::JobKilled { job, on: NodeId::new(station as u32) });
    }

    /// Starts the checkpoint-out transfer for a job stopped at `station`.
    fn begin_checkpoint_out(
        &mut self,
        now: SimTime,
        station: usize,
        job: JobId,
        reason: PreemptReason,
        sched: &mut Scheduler<Event>,
    ) {
        let (image, home, seq) = {
            let j = &mut self.jobs[job.0 as usize];
            let image = j.spec.image_bytes;
            let home = j.spec.home;
            j.state = JobState::CheckpointingOut { from: NodeId::new(station as u32) };
            j.charge_transfer(self.config.costs.transfer_cpu_cost(image));
            j.transfer_seq += 1;
            (image, home, j.transfer_seq)
        };
        self.stations[station]
            .resident_mut(job)
            .expect("checkpointing job is resident")
            .phase = Phase::Departing;
        self.coord.mark(station);
        let booking = self
            .bus
            .book_transfer(now, NodeId::new(station as u32), home, image);
        sched.at(
            booking.completes_at,
            Event::CheckpointDone { job, from: station as u32, seq },
        );
        self.emit(
            now,
            TraceKind::CheckpointStarted {
                job,
                from: NodeId::new(station as u32),
                reason,
                bytes: image,
            },
        );
    }

    // ----- event handlers --------------------------------------------------

    fn on_arrival(&mut self, now: SimTime, job: JobId) {
        let j = &self.jobs[job.0 as usize];
        let home = j.spec.home.as_usize();
        let image = j.spec.image_bytes;
        // With a dedicated checkpoint server (paper §4's disk-server idea),
        // standing images do not occupy the submitting machine's disk.
        if !self.config.checkpoint_server {
            if self.stations[home].disk_used + image > self.stations[home].disk_capacity {
                self.totals.submit_rejections += 1;
                self.jobs[job.0 as usize].rejected = true;
                self.emit(now, TraceKind::JobRejected { job });
                return;
            }
            self.stations[home].disk_used += image;
        }
        self.coord.mark(home);
        self.queue_delta(now, job, 1.0);
        if self.jobs[job.0 as usize].adopted {
            self.totals.jobs_adopted += 1;
            self.emit(now, TraceKind::JobAdopted { job, on: NodeId::new(home as u32) });
        } else {
            self.emit(now, TraceKind::JobArrived { job });
        }
        // §5(2) pipelines: jobs with incomplete dependencies are held; the
        // completion of the last dependency releases them into the queue.
        let unresolved = self.jobs[job.0 as usize]
            .spec
            .depends_on
            .iter()
            .filter(|d| self.jobs[d.0 as usize].state != JobState::Completed)
            .count() as u32;
        self.pending_deps[job.0 as usize] = unresolved;
        if unresolved > 0 {
            self.jobs[job.0 as usize].state = JobState::Held;
            return;
        }
        let remaining = self.jobs[job.0 as usize].remaining();
        self.stations[home].queue.enqueue(job, remaining);
    }

    fn on_poll(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        sched.at(now + self.config.costs.coordinator_poll_interval, Event::Poll);
        if self.coordinator_down || self.chaos_poll_suppressed(now, sched) {
            return;
        }
        self.poll_body(now, sched);
    }

    /// Chaos gating for an on-grid poll. Outage windows drop polls
    /// silently — the cadence gap stays a whole multiple of the interval,
    /// exactly like coordinator-host downtime. Control-message loss drops
    /// them loudly, and a pending delay postpones the body off the grid.
    fn chaos_poll_suppressed(&mut self, now: SimTime, sched: &mut Scheduler<Event>) -> bool {
        let Some(chaos) = self.chaos.as_mut() else {
            return false;
        };
        if chaos.outage_depth > 0 {
            return true;
        }
        if now >= chaos.ctrl_loss_until {
            if let Some(delay) = chaos.delay_pending.take() {
                sched.at(now + delay, Event::ChaosDelayedPoll { delay_ms: delay.as_millis() });
                return true;
            }
            return false;
        }
        self.emit(now, TraceKind::ChaosPollLost);
        true
    }

    /// Runs the postponed body of a poll hit by [`Fault::CtrlDelay`]. The
    /// next on-grid poll (already scheduled by the suppressed one) is
    /// unaffected.
    fn on_chaos_delayed_poll(&mut self, now: SimTime, delay_ms: u64, sched: &mut Scheduler<Event>) {
        if self.coordinator_down {
            return;
        }
        if let Some(c) = self.chaos.as_ref() {
            if c.outage_depth > 0 || now < c.ctrl_loss_until {
                return;
            }
        }
        self.emit(now, TraceKind::ChaosPollDelayed { delay_ms });
        self.poll_body(now, sched);
    }

    /// The poll cycle proper: reservations, policy decision, order
    /// execution, and the poll trace/gauge emissions. Shared by on-grid
    /// polls and chaos-delayed ones.
    fn poll_body(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        if self.chaos.as_ref().is_some_and(|c| c.dup_pending) {
            // The duplicated request is recognised by its sequence number
            // and discarded before any allocation work.
            self.chaos.as_mut().expect("dup checked").dup_pending = false;
            self.emit(now, TraceKind::ChaosDupDropped);
        }
        self.totals.polls += 1;
        self.reclaim_replicas_for_demand(now, sched);
        // Reserved machines are served first, outside the general policy:
        // one placement per poll for the whole system (the §4 throttle),
        // with reservation holders at the front of the line. Skipped
        // wholesale when nothing is fenced (the common case).
        let mut placements = 0u32;
        let mut budget = self.config.placements_per_poll;
        let mut granted = std::mem::take(&mut self.coord.granted);
        granted.clear();
        if self.coord.reserved_count > 0 {
            for i in 0..self.stations.len() {
                if budget == 0 {
                    break;
                }
                let Some(holder) = self.stations[i].reserved_for else {
                    continue;
                };
                let st = &self.stations[i];
                if st.failed || st.owner_state != OwnerState::Idle || !st.residents.is_empty() {
                    continue;
                }
                if self.stations[holder.as_usize()].queue.is_empty() {
                    continue;
                }
                let target = NodeId::new(i as u32);
                if self.execute_assign(now, holder, target, AssignFallback::None, &mut granted, sched) {
                    placements += 1;
                    budget -= 1;
                    self.totals.reservation_placements += 1;
                }
            }
        }
        // Bring the cached snapshot up to date: only stations that changed
        // since the last poll are recomputed.
        self.flush_dirty();
        #[cfg(debug_assertions)]
        self.debug_check_coord();
        // Memo fast path: nothing fenced, no station wants or hosts
        // anything, and the policy is provably quiescent — `decide` would
        // return no orders and mutate nothing, so emit the poll telemetry
        // directly. (Reservation placements require `reserved_count > 0`,
        // so `placements` is provably zero here too.)
        if self.coord.reserved_count == 0
            && self.coord.req_bits.count() == 0
            && self.coord.host_bits.count() == 0
            && self.policy.as_dyn().quiescent()
        {
            self.totals.poll_memo_hits += 1;
            self.coord.granted = granted;
            let free_machines = self.coord.free_bits.count();
            self.emit_poll_telemetry(now, free_machines, 0, 0);
            return;
        }
        let free_machines = self.coord.free_bits.count();
        let mut free = std::mem::take(&mut self.coord.free);
        if self.config.history_aware_placement {
            // Longest expected idle first; stable so ids break ties. The
            // preference order is not id order here, so the policy gets the
            // full sorted list and no capacity index.
            self.coord.free_bits.collect_into(&mut free);
            free.sort_by(|a, b| {
                let sa = self.idle_score(a.as_usize(), now);
                let sb = self.idle_score(b.as_usize(), now);
                sb.partial_cmp(&sa).expect("no NaN scores")
            });
        } else {
            // Policies take at most `budget` targets from the front of the
            // preference order, so a budget-sized head of the free set is
            // indistinguishable from the whole fleet — and O(budget) to
            // build. (`max(1)` keeps "no machine free at all" observable in
            // the degenerate budget-0 poll.)
            self.coord.free_bits.collect_head(budget.max(1), &mut free);
        }
        let mut requesters = std::mem::take(&mut self.coord.requesters);
        let mut hosts = std::mem::take(&mut self.coord.hosts);
        self.coord.req_bits.collect_into(&mut requesters);
        self.coord.host_bits.collect_into(&mut hosts);
        let views = std::mem::take(&mut self.coord.views);
        let capacity = (!self.config.history_aware_placement).then_some(&self.coord.capacity);
        let orders = self.policy.as_dyn().decide(
            now,
            &PollInput {
                views: &views,
                requesters: &requesters,
                hosts: &hosts,
                free: &free,
                free_total: free_machines as usize,
                capacity,
                max_placements: budget,
            },
        );
        debug_assert!(
            crate::policy::validate_orders(&orders, &views).is_ok(),
            "policy emitted invalid orders: {orders:?}"
        );
        self.coord.views = views;
        self.coord.requesters = requesters;
        self.coord.hosts = hosts;
        // Reservation-pass grants are already reflected in the freshly
        // flushed free set; the exclusion list restarts for the order loop.
        granted.clear();
        let history = self.config.history_aware_placement;
        let mut preemptions = 0u32;
        for order in orders {
            match order {
                Order::Assign { home, target } => {
                    let fallback = if history {
                        AssignFallback::List(&free)
                    } else {
                        AssignFallback::FreeSet
                    };
                    if self.execute_assign(now, home, target, fallback, &mut granted, sched) {
                        placements += 1;
                    }
                }
                Order::Preempt { target } => {
                    if self.execute_preempt(now, target, sched) {
                        preemptions += 1;
                    }
                }
            }
        }
        self.coord.free = free;
        self.coord.granted = granted;
        // Order execution may have dirtied stations; the reported waiting
        // count is the post-execution raw queue total, as before.
        self.flush_dirty();
        self.emit_poll_telemetry(now, free_machines, placements, preemptions);
    }

    /// The `CoordinatorPolled` event plus the per-poll gauge sample —
    /// shared verbatim by the full poll path and the memo fast path, so
    /// memoized polls are bit-identical on the trace.
    fn emit_poll_telemetry(
        &mut self,
        now: SimTime,
        free_machines: u32,
        placements: u32,
        preemptions: u32,
    ) {
        let waiting = self.coord.raw_queue_total;
        self.emit(
            now,
            TraceKind::CoordinatorPolled {
                free_machines,
                waiting_jobs: waiting,
                placements,
                preemptions,
            },
        );
        // Gauges no event carries: sampled once per poll, deterministically.
        let updown_mean_index = match &self.policy {
            PolicyHolder::UpDown(p) => Some(p.index_sum() / self.stations.len() as f64),
            PolicyHolder::Redundant(p) => {
                Some(p.inner().index_sum() / self.stations.len() as f64)
            }
            _ => None,
        };
        self.emit_sample(GaugeSample {
            at: now,
            bus_backlog: self.bus.backlog_at(now),
            free_machines,
            waiting_jobs: waiting,
            updown_mean_index,
        });
    }

    /// Executes one `Assign` grant. The policy names a preferred `target`,
    /// but the local scheduler negotiates: if none of the home's waiting
    /// jobs can use that machine (wrong architecture, full disk), the
    /// grant falls back to another machine still free this poll — the
    /// placement budget is what the paper's §4 throttle limits, not the
    /// specific machine.
    fn execute_assign(
        &mut self,
        now: SimTime,
        home: NodeId,
        target: NodeId,
        fallback: AssignFallback<'_>,
        granted: &mut Vec<NodeId>,
        sched: &mut Scheduler<Event>,
    ) -> bool {
        let h = home.as_usize();
        if self.stations[h].queue.is_empty() {
            return false; // policy over-granted this home
        }
        // The preferred target leads the candidate order when the free
        // snapshot still lists it un-granted; a reservation-pass target is
        // fenced (never in the free set) and eligible by construction.
        let target_ok = match fallback {
            AssignFallback::None => true,
            AssignFallback::FreeSet | AssignFallback::List(_) => {
                self.coord.free_bits.get(target.as_usize()) && !granted.contains(&target)
            }
        };
        // Job-major negotiation: the local scheduler walks its queue in
        // service order and places the first job for which enough
        // compatible machines are free — one machine normally, k for a
        // width-k gang. Candidates after the preferred target come lazily
        // from the fallback source with this poll's earlier grants
        // excluded, so a grant costs O(candidates inspected), not a
        // materialised copy of the whole free list.
        let mut service = std::mem::take(&mut self.coord.service);
        self.stations[h].queue.service_order_into(&mut service);
        let mut machines = std::mem::take(&mut self.coord.machines);
        let mut disk_blocked: Option<(JobId, NodeId)> = None;
        let mut chosen: Option<JobId> = None;
        for &cand_job in &service {
            let j = &self.jobs[cand_job.0 as usize];
            let width = j.spec.width.max(1) as usize;
            let image = j.spec.image_bytes;
            let demand = j.spec.resources;
            machines.clear();
            let mut arch_ok_but_disk_full: Option<NodeId> = None;
            // Returns `false` once the job's machine list is full.
            let mut scan = |cand: NodeId| -> bool {
                if machines.len() == width {
                    return false;
                }
                let c = cand.as_usize();
                if !j.can_run_on(self.station_arch(c)) {
                    return true;
                }
                // Capacity conservation: the grant must fit in what the
                // residents leave free. Whole-machine demands (default)
                // always fit a `can_host` station, so this never rejects
                // there.
                if !demand.fits(self.free_capacity(c)) {
                    return true;
                }
                let disk_free = self.stations[c].disk_capacity - self.stations[c].disk_used;
                if image > disk_free {
                    // Paper §4: an idle processor is useless if its disk
                    // is full.
                    arch_ok_but_disk_full.get_or_insert(cand);
                    return true;
                }
                machines.push(cand);
                machines.len() < width
            };
            let mut more = true;
            if target_ok {
                more = scan(target);
            }
            if more {
                match fallback {
                    AssignFallback::None => {}
                    AssignFallback::FreeSet => {
                        self.coord.free_bits.for_each(|id| {
                            let cand = NodeId::new(id);
                            if cand == target || granted.contains(&cand) {
                                return true;
                            }
                            scan(cand)
                        });
                    }
                    AssignFallback::List(list) => {
                        for &cand in list {
                            if cand == target || granted.contains(&cand) {
                                continue;
                            }
                            if !scan(cand) {
                                break;
                            }
                        }
                    }
                }
            }
            if machines.len() == width {
                chosen = Some(cand_job);
                break;
            }
            if let Some(c) = arch_ok_but_disk_full {
                disk_blocked.get_or_insert((cand_job, c));
            }
        }
        self.coord.service = service;
        let Some(job) = chosen else {
            machines.clear();
            self.coord.machines = machines;
            if let Some((job, target)) = disk_blocked {
                self.totals.placement_disk_rejections += 1;
                self.emit(now, TraceKind::PlacementDiskRejected { job, target });
            } else {
                self.totals.arch_starvation += 1;
            }
            return false;
        };
        self.stations[h].queue.remove(job);
        self.coord.mark(h);
        // These machines are spoken for until the next flush; later orders
        // this poll must not fall back onto them.
        granted.extend_from_slice(&machines);
        if machines.len() > 1 {
            let members: Vec<u32> = machines.iter().map(|m| m.index()).collect();
            machines.clear();
            self.coord.machines = machines;
            self.gang_place(now, home, job, members, sched);
            return true;
        }
        let target = machines[0];
        machines.clear();
        self.coord.machines = machines;
        let (image, demand) = {
            let j = &self.jobs[job.0 as usize];
            (j.spec.image_bytes, j.spec.resources)
        };
        let t = target.as_usize();
        self.stations[t].disk_used += image;
        self.stations[t].residents.push(ForeignSlot {
            job,
            demand,
            phase: Phase::Arriving,
        });
        self.hot.used_cap[t] = self.hot.used_cap[t].add(demand);
        self.coord.mark(t);
        let seq = {
            let j = &mut self.jobs[job.0 as usize];
            j.state = JobState::Placing { target };
            j.charge_transfer(self.config.costs.transfer_cpu_cost(image));
            j.transfer_seq += 1;
            j.transfer_seq
        };
        let booking = self.bus.book_transfer(now, home, target, image);
        sched.at(
            booking.completes_at,
            Event::PlacementDone { job, target: target.index(), seq },
        );
        self.totals.placements += 1;
        // Fractional grants are annotated just before the placement they
        // describe; whole-machine placements never emit, keeping default
        // traces bit-identical.
        if !demand.is_whole() {
            self.emit(
                now,
                TraceKind::JobGranted {
                    job,
                    on: target,
                    cpu_milli: demand.cpu_milli,
                    mem_milli: demand.mem_milli,
                    tag_milli: demand.tag_milli,
                },
            );
        }
        self.emit(now, TraceKind::PlacementStarted { job, target });
        self.maybe_spawn_replicas(now, job, target, granted, sched);
        true
    }

    fn execute_preempt(
        &mut self,
        now: SimTime,
        target: NodeId,
        sched: &mut Scheduler<Event>,
    ) -> bool {
        let t = target.as_usize();
        // Preempting any member of a running gang vacates the whole gang
        // (its processes cannot run partially).
        let gang_job = self.stations[t].residents.iter().find_map(|slot| {
            (matches!(slot.phase, Phase::GangMember)
                && self.gangs[slot.job.0 as usize]
                    .as_deref()
                    .is_some_and(|g| g.running))
            .then_some(slot.job)
        });
        if let Some(job) = gang_job {
            self.gang_stop_accrual(now, job, sched);
            self.totals.preemptions_priority += 1;
            self.gang_checkpoint_out(now, job, PreemptReason::PriorityPreemption, sched);
            return true;
        }
        // A replica surrenders instantly — no checkpoint dance, the
        // machine frees right now, which is strictly better for the
        // preempting user than waiting out a checkpoint transfer.
        let replicas: Vec<JobId> = self.stations[t]
            .residents
            .iter()
            .filter_map(|slot| matches!(slot.phase, Phase::Replica(_)).then_some(slot.job))
            .collect();
        if !replicas.is_empty() {
            for job in replicas {
                self.totals.preemptions_priority += 1;
                self.cancel_replica(now, t, job, sched);
            }
            return true;
        }
        // Preemption vacates the machine: every running resident is
        // checkpointed out (at most one under whole-machine demands).
        let running: Vec<(EventToken, JobId)> = self.stations[t]
            .residents
            .iter()
            .filter_map(|slot| match &slot.phase {
                Phase::Running { finish } => Some((*finish, slot.job)),
                _ => None,
            })
            .collect();
        if running.is_empty() {
            return false;
        }
        for (finish, job) in running {
            sched.cancel(finish);
            self.stop_running_segment(now, t, job, now);
            self.totals.preemptions_priority += 1;
            self.begin_checkpoint_out(now, t, job, PreemptReason::PriorityPreemption, sched);
        }
        true
    }

    fn on_placement_done(
        &mut self,
        now: SimTime,
        job: JobId,
        target: u32,
        seq: u32,
        sched: &mut Scheduler<Event>,
    ) {
        let t = target as usize;
        // Stale completion: the transfer's endpoint crashed and the job has
        // moved on.
        if self.jobs[job.0 as usize].transfer_seq != seq {
            return;
        }
        if self.slot_is(t, job, |p| matches!(p, Phase::GangMember)) {
            let gang = self.gangs[job.0 as usize].as_deref_mut().expect("gang exists");
            gang.staged += 1;
            self.jobs[job.0 as usize].placements += 1;
            self.gang_try_start(now, job, sched);
            return;
        }
        if !self.slot_is(t, job, |p| matches!(p, Phase::Arriving)) {
            return;
        }
        self.coord.mark(t);
        self.jobs[job.0 as usize].placements += 1;
        if self.stations[t].owner_state == OwnerState::Idle {
            self.start_running(now, t, job, sched);
        } else {
            // The owner came back while the image was in flight.
            match self.config.eviction {
                EvictionStrategy::GraceThenCheckpoint { grace } => {
                    let token = sched.at(
                        now + grace,
                        Event::GraceOver { station: target, job },
                    );
                    if let Some(slot) = self.stations[t].resident_mut(job) {
                        slot.phase = Phase::Suspended { grace: token };
                    }
                    self.jobs[job.0 as usize].state =
                        JobState::Suspended { on: NodeId::new(target) };
                    self.emit(
                        now,
                        TraceKind::JobSuspended { job, on: NodeId::new(target) },
                    );
                }
                EvictionStrategy::ImmediateKill { .. } => {
                    self.jobs[job.0 as usize].state = JobState::Queued;
                    self.kill_in_place(now, t, job);
                }
            }
        }
    }

    fn on_checkpoint_done(
        &mut self,
        now: SimTime,
        job: JobId,
        from: u32,
        seq: u32,
        sched: &mut Scheduler<Event>,
    ) {
        let f = from as usize;
        if self.jobs[job.0 as usize].transfer_seq != seq {
            return;
        }
        if self.slot_is(f, job, |p| matches!(p, Phase::GangMember)) {
            let image = self.jobs[job.0 as usize].spec.image_bytes;
            self.stations[f].disk_used -= image;
            self.remove_resident(f, job);
            self.coord.mark(f);
            let all_departed = {
                let gang = self.gangs[job.0 as usize].as_deref_mut().expect("gang exists");
                debug_assert!(gang.departing);
                gang.departed += 1;
                gang.departed == gang.members.len() as u32
            };
            self.emit(
                now,
                TraceKind::CheckpointCompleted { job, from: NodeId::new(from), bytes: image },
            );
            if all_departed {
                self.gangs[job.0 as usize] = None;
                let j = &mut self.jobs[job.0 as usize];
                j.mark_checkpointed();
                j.checkpoints += 1;
                j.state = JobState::Queued;
                let home = j.spec.home.as_usize();
                let remaining = j.remaining();
                self.totals.migrations += 1;
                self.stations[home].queue.enqueue_front(job, remaining);
                self.coord.mark(home);
            }
            return;
        }
        if !self.slot_is(f, job, |p| matches!(p, Phase::Departing)) {
            return;
        }
        // Corruption window: the image landed damaged (detected by
        // checksum on receipt). The source still holds it, so nothing is
        // lost — the job stays mid-checkpoint and the transfer is re-sent
        // after a capped exponential backoff. Gang fan-ins are exempt.
        if self.chaos.as_ref().is_some_and(|c| now < c.ckpt_corrupt_until) {
            self.chaos_corrupt_ckpt(now, job, from, seq, sched);
            return;
        }
        if let Some(c) = self.chaos.as_mut() {
            c.retry_attempts[job.0 as usize] = 0;
        }
        let image = self.jobs[job.0 as usize].spec.image_bytes;
        self.stations[f].disk_used -= image;
        self.remove_resident(f, job);
        self.coord.mark(f);
        let j = &mut self.jobs[job.0 as usize];
        j.mark_checkpointed();
        j.checkpoints += 1;
        j.state = JobState::Queued;
        let home = j.spec.home.as_usize();
        let remaining = j.remaining();
        self.totals.migrations += 1;
        self.stations[home].queue.enqueue_front(job, remaining);
        self.coord.mark(home);
        self.emit(
            now,
            TraceKind::CheckpointCompleted { job, from: NodeId::new(from), bytes: image },
        );
    }

    fn on_finish(&mut self, now: SimTime, job: JobId, on: u32, sched: &mut Scheduler<Event>) {
        let o = on as usize;
        if self.jobs[job.0 as usize].spec.width > 1 {
            // Gang completion: the single Finish event covers all members.
            if !self.gangs[job.0 as usize].as_deref().is_some_and(|g| g.running) {
                return;
            }
            let members = {
                let gang = self.gangs[job.0 as usize].as_deref_mut().expect("gang exists");
                gang.running = false;
                gang.finish = None;
                gang.members.clone()
            };
            let running_since = self.jobs[job.0 as usize].running_since;
            {
                let j = &mut self.jobs[job.0 as usize];
                let remaining = j.remaining();
                j.accrue_run(remaining, self.config.costs.remote_syscall_cost.as_millis() * 1_000);
            }
            let image = self.jobs[job.0 as usize].spec.image_bytes;
            for &m in &members {
                let util_end = self.hot.owner_active_since[m as usize].map_or(now, |t| t.min(now));
                self.deposit_run_utilization(
                    m as usize,
                    running_since,
                    util_end.max(running_since),
                    1.0,
                );
                self.stations[m as usize].disk_used -= image;
                self.remove_resident(m as usize, job);
                self.coord.mark(m as usize);
            }
            self.gangs[job.0 as usize] = None;
            self.finish_bookkeeping(now, job, on);
            return;
        }
        if !self.slot_is(o, job, |p| matches!(p, Phase::Running { .. })) {
            return;
        }
        // The primary won the race: every speculative copy loses.
        self.cancel_replicas_of(now, job, sched);
        // The finish event corresponds exactly to the remaining work at the
        // segment start: accrue precisely that, avoiding rounding residue.
        {
            let util_end = self.hot.owner_active_since[o].map_or(now, |t| t.min(now));
            let cpu = self.jobs[job.0 as usize].spec.resources.cpu_milli;
            let running_since = {
                let j = &mut self.jobs[job.0 as usize];
                let remaining = j.remaining();
                j.accrue_run(remaining, self.config.costs.remote_syscall_cost.as_millis() * 1_000);
                j.running_since
            };
            self.deposit_run_utilization(o, running_since, util_end, cpu as f64 / 1000.0);
        }
        let image = self.jobs[job.0 as usize].spec.image_bytes;
        self.stations[o].disk_used -= image;
        self.remove_resident(o, job);
        self.coord.mark(o);
        self.finish_bookkeeping(now, job, on);
    }

    /// Shared completion tail: home disk, state, queue-length series,
    /// trace, and dependency release.
    fn finish_bookkeeping(&mut self, now: SimTime, job: JobId, on: u32) {
        let image = self.jobs[job.0 as usize].spec.image_bytes;
        if !self.config.checkpoint_server {
            let home = self.jobs[job.0 as usize].spec.home.as_usize();
            self.stations[home].disk_used -= image;
        }
        {
            let j = &mut self.jobs[job.0 as usize];
            j.state = JobState::Completed;
            j.completed_at = Some(now);
        }
        self.queue_delta(now, job, -1.0);
        self.emit(now, TraceKind::JobCompleted { job, on: NodeId::new(on) });
        // Release any jobs that were held on this one. A job completes at
        // most once, so its dependent list can be consumed in place.
        let dependents = std::mem::take(&mut self.dependents[job.0 as usize]);
        for d in dependents {
            if self.jobs[d.0 as usize].state != JobState::Held {
                continue; // not yet arrived (or rejected): arrival recounts
            }
            let count = &mut self.pending_deps[d.0 as usize];
            *count = count.saturating_sub(1);
            if *count == 0 {
                let home = self.jobs[d.0 as usize].spec.home.as_usize();
                let remaining = self.jobs[d.0 as usize].remaining();
                self.jobs[d.0 as usize].state = JobState::Queued;
                self.stations[home].queue.enqueue(d, remaining);
                self.coord.mark(home);
            }
        }
    }

    fn on_grace_over(
        &mut self,
        now: SimTime,
        station: u32,
        job: JobId,
        sched: &mut Scheduler<Event>,
    ) {
        let i = station as usize;
        if self.jobs[job.0 as usize].spec.width > 1 {
            // The gang grace token is cancelled on resume, so reaching here
            // means some member's owner is still around: coordinated
            // checkpoint of the whole program.
            if self.gangs[job.0 as usize]
                .as_deref()
                .is_some_and(|g| !g.departing && !g.running)
            {
                self.gangs[job.0 as usize].as_deref_mut().expect("gang exists").grace = None;
                self.gang_checkpoint_out(now, job, PreemptReason::OwnerReturned, sched);
            }
            return;
        }
        // The token is cancelled on resume (and on crash), so reaching here
        // normally means the job is still suspended: vacate.
        if !self.slot_is(i, job, |p| matches!(p, Phase::Suspended { .. })) {
            return;
        }
        self.begin_checkpoint_out(now, i, job, PreemptReason::OwnerReturned, sched);
    }

    fn on_periodic_ckpt(
        &mut self,
        now: SimTime,
        job: JobId,
        on: u32,
        epoch: u32,
        sched: &mut Scheduler<Event>,
    ) {
        // Stale chain from a previous run segment?
        if self.jobs[job.0 as usize].epoch != epoch {
            return;
        }
        let still_running = self.slot_is(on as usize, job, |p| matches!(p, Phase::Running { .. }));
        if !still_running {
            return;
        }
        self.take_running_checkpoint(now, job, on);
        if let EvictionStrategy::ImmediateKill { checkpoint_every } = self.config.eviction {
            sched.at(
                now + checkpoint_every,
                Event::PeriodicCkpt { job, on, epoch },
            );
        }
    }

    /// Takes one while-running checkpoint of a job executing on `on`:
    /// captures the current work level, charges the transfer, and books
    /// the image home while the job keeps running. Shared by the periodic
    /// chain and the opportunistic hazard timer.
    fn take_running_checkpoint(&mut self, now: SimTime, job: JobId, on: u32) {
        let j = &self.jobs[job.0 as usize];
        let image = j.spec.image_bytes;
        let home = j.spec.home;
        // The checkpoint captures the work level at this instant (accrued
        // at the granted CPU fraction).
        let elapsed = now.since(j.running_since);
        let work_now = j.work_done
            + scale_work(
                self.config.station.work_done_in(elapsed),
                j.spec.speedup.effective_milli(j.spec.resources.cpu_milli),
            );
        {
            let j = &mut self.jobs[job.0 as usize];
            j.work_checkpointed = work_now;
            j.charge_transfer(self.config.costs.transfer_cpu_cost(image));
        }
        // The image travels home while the job keeps running.
        self.bus.book_transfer(now, NodeId::new(on), home, image);
        self.totals.periodic_checkpoints += 1;
        self.emit(now, TraceKind::PeriodicCheckpoint { job, on: NodeId::new(on) });
    }

    /// The opportunistic checkpoint knobs, if the redundancy policy arms
    /// them; `None` means the inherited (periodic or none) timer applies.
    fn opportunistic_ckpt(&self) -> Option<(SimDuration, f64)> {
        match self.redundancy.as_ref()?.ckpt {
            CkptTiming::Opportunistic { check_every, hazard_threshold } => {
                Some((check_every, hazard_threshold))
            }
            CkptTiming::Inherited => None,
        }
    }

    /// Hazard-driven checkpoint evaluation: checkpoint only when the
    /// owner's return looks imminent — the station's current idle streak
    /// has consumed its typical idle interval (EWMA). Stations with no
    /// idle history yet never trigger (hazard 0), and the chain re-arms
    /// every `check_every` until the run segment ends.
    fn on_opportunistic_ckpt(
        &mut self,
        now: SimTime,
        job: JobId,
        on: u32,
        epoch: u32,
        sched: &mut Scheduler<Event>,
    ) {
        let Some((check_every, threshold)) = self.opportunistic_ckpt() else { return };
        if self.jobs[job.0 as usize].epoch != epoch {
            return;
        }
        let o = on as usize;
        if !self.slot_is(o, job, |p| matches!(p, Phase::Running { .. })) {
            return;
        }
        let streak = self.hot.idle_since[o]
            .map(|t| now.saturating_since(t).as_secs_f64())
            .unwrap_or(0.0);
        let ewma = self.hot.ewma_idle_secs[o];
        let hazard = if ewma > 0.0 { streak / ewma } else { 0.0 };
        if hazard >= threshold {
            self.take_running_checkpoint(now, job, on);
        }
        sched.at(now + check_every, Event::OpportunisticCkpt { job, on, epoch });
    }

    // ----- redundancy: speculative replicas (see crate::redundancy) ------

    /// Tops the job up to `k` live replicas on otherwise-idle stations,
    /// right after a successful primary placement. Replicas are strictly
    /// parasitic: they take only whole machines that are idle, unfenced,
    /// unpartitioned, and empty, and they run the same binary as the
    /// primary (candidates are restricted to the primary target's
    /// architecture so whichever copy starts first binds the same arch).
    /// Frees replica-held stations when queued demand outstrips the
    /// fleet's genuinely free machines, so speculation never delays a real
    /// job past the poll that notices it. Runs at the top of every poll;
    /// cancels at most this poll's placement budget, cheapest copies
    /// first — arriving replicas cost nothing, then the youngest running
    /// ones. A replica whose primary is *not* running is spared: it is
    /// the job's only progress (the insurance actively paying out), and
    /// cancelling it would trade finished work for a fresh placement.
    fn reclaim_replicas_for_demand(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        let Some(r) = self.redundancy.as_ref() else { return };
        // `k == 0` first: the disabled policy must cost nothing per poll,
        // not even the per-job liveness scan below.
        if r.k == 0 || r.by_job.iter().all(|v| v.is_empty()) {
            return;
        }
        let waiting: usize = self.stations.iter().map(|st| st.queue.len()).sum();
        if waiting == 0 {
            return;
        }
        let free = self
            .stations
            .iter()
            .filter(|st| {
                st.reserved_for.is_none()
                    && !st.failed
                    && st.owner_state == OwnerState::Idle
                    && st.residents.is_empty()
            })
            .count();
        let deficit = waiting
            .min(self.config.placements_per_poll)
            .saturating_sub(free);
        if deficit == 0 {
            return;
        }
        // `None` progress marks an arriving copy (free to cancel); running
        // copies carry their start time so the sort keeps the oldest —
        // the likeliest winners — alive. Ties break on (job, station) for
        // determinism.
        let mut cands: Vec<(JobId, usize, Option<SimTime>)> = Vec::new();
        let r = self.redundancy.as_ref().expect("checked above");
        for (jid, stations) in r.by_job.iter().enumerate() {
            if stations.is_empty() {
                continue;
            }
            if !matches!(self.jobs[jid].state, JobState::Running { .. }) {
                continue;
            }
            let job = JobId(jid as u64);
            for &s in stations {
                let i = s as usize;
                let slot = self.stations[i]
                    .residents
                    .iter()
                    .find(|sl| sl.job == job)
                    .expect("by_job lists live replicas");
                match slot.phase {
                    Phase::Replica(ReplicaState::Arriving { .. }) => cands.push((job, i, None)),
                    Phase::Replica(ReplicaState::Running { started, .. }) => {
                        cands.push((job, i, Some(started)));
                    }
                    _ => unreachable!("by_job entries are replica slots"),
                }
            }
        }
        cands.sort_by(|a, b| match (a.2, b.2) {
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (x, y) => y.cmp(&x).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))),
        });
        for &(job, i, _) in cands.iter().take(deficit) {
            self.cancel_replica(now, i, job, sched);
        }
    }

    fn maybe_spawn_replicas(
        &mut self,
        now: SimTime,
        job: JobId,
        primary: NodeId,
        granted: &mut Vec<NodeId>,
        sched: &mut Scheduler<Event>,
    ) {
        let Some(r) = self.redundancy.as_ref() else { return };
        let k = r.k;
        if k == 0 {
            return;
        }
        let live = r.by_job[job.0 as usize].len() as u32;
        if live >= k {
            return;
        }
        let (image, home, width, whole) = {
            let spec = &self.jobs[job.0 as usize].spec;
            (spec.image_bytes, spec.home, spec.width, spec.resources.is_whole())
        };
        // Gangs already coordinate k machines, and fractional jobs share
        // hosts; speculation covers only solo whole-machine jobs.
        if width > 1 || !whole {
            return;
        }
        // Strictly parasitic: speculation spends only *surplus* idle
        // machines. A job still queued anywhere has first claim on idle
        // stations at upcoming polls (the §4 throttle serves one per
        // poll), so replication stands down whenever real demand waits.
        if self.stations.iter().any(|st| !st.queue.is_empty()) {
            return;
        }
        let arch = self.station_arch(primary.as_usize());
        let demand = self.jobs[job.0 as usize].spec.resources;
        // Rank eligible stations by expected *remaining* idle time — the
        // EWMA of completed idle intervals minus the current streak, the
        // same history signal placement uses. A replica lives only until
        // its host's owner returns, so the least-overdue stations make
        // the sturdiest hosts. Ties break on station id for determinism.
        let mut eligible: Vec<(f64, usize)> = Vec::new();
        for i in 0..self.stations.len() {
            let cand = NodeId::new(i as u32);
            if cand == home || granted.contains(&cand) {
                continue;
            }
            let st = &self.stations[i];
            let empty_idle = st.reserved_for.is_none()
                && !st.failed
                && st.owner_state == OwnerState::Idle
                && st.residents.is_empty();
            if !empty_idle
                || self.chaos.as_ref().is_some_and(|c| c.partition_depth[i] > 0)
                || self.station_arch(i) != arch
                || image > st.disk_capacity - st.disk_used
                || !demand.fits(st.capacity)
            {
                continue;
            }
            let streak = self.hot.idle_since[i]
                .map(|t| now.saturating_since(t).as_secs_f64())
                .unwrap_or(0.0);
            eligible.push((self.hot.ewma_idle_secs[i] - streak, i));
        }
        eligible.sort_by(|a, b| {
            b.0.partial_cmp(&a.0).expect("no NaN idle scores").then(a.1.cmp(&b.1))
        });
        for &(_, i) in eligible.iter().take((k - live) as usize) {
            let cand = NodeId::new(i as u32);
            self.stations[i].disk_used += image;
            let booking = self.bus.book_transfer(now, home, cand, image);
            let arrive = sched.at(
                booking.completes_at,
                Event::ReplicaPlaced { job, target: i as u32 },
            );
            self.stations[i].residents.push(ForeignSlot {
                job,
                demand,
                phase: Phase::Replica(ReplicaState::Arriving { arrive }),
            });
            self.hot.used_cap[i] = self.hot.used_cap[i].add(demand);
            self.coord.mark(i);
            self.jobs[job.0 as usize]
                .charge_transfer(self.config.costs.transfer_cpu_cost(image));
            self.redundancy
                .as_mut()
                .expect("checked above")
                .by_job[job.0 as usize]
                .push(i as u32);
            self.totals.replicas_spawned += 1;
            self.emit(now, TraceKind::ReplicaSpawned { job, on: cand });
            // Spoken for until the next flush, like any other grant.
            granted.push(cand);
        }
    }

    /// A replica image arrived: start executing from the job's last
    /// checkpoint if the station is still idle, otherwise give up at once
    /// (zero work wasted — it never ran).
    fn on_replica_placed(
        &mut self,
        now: SimTime,
        job: JobId,
        target: u32,
        sched: &mut Scheduler<Event>,
    ) {
        let t = target as usize;
        // Every cancellation path removes the slot and cancels the pending
        // arrival token, so a live event implies a live Arriving slot.
        if !self.slot_is(t, job, |p| {
            matches!(p, Phase::Replica(ReplicaState::Arriving { .. }))
        }) {
            return;
        }
        if self.stations[t].owner_state != OwnerState::Idle {
            self.cancel_replica(now, t, job, sched);
            return;
        }
        // The replica resumes the image it was sent: the last checkpoint.
        let (remaining, demand) = {
            let j = &self.jobs[job.0 as usize];
            (j.spec.demand.saturating_sub(j.work_checkpointed), j.spec.resources)
        };
        let eff = self.jobs[job.0 as usize]
            .spec
            .speedup
            .effective_milli(demand.cpu_milli)
            .max(1);
        let wall = inflate_wall(self.config.station.wall_time_for(remaining), eff);
        let finish = sched.at(now + wall, Event::ReplicaFinish { job, on: target });
        let st = &mut self.stations[t];
        st.resident_mut(job).expect("slot checked above").phase =
            Phase::Replica(ReplicaState::Running { started: now, finish });
        st.run_overlaps.clear();
        self.coord.mark(t);
        let arch = self.station_arch(t);
        let j = &mut self.jobs[job.0 as usize];
        debug_assert!(
            j.bound_arch.is_none_or(|b| b == arch),
            "replica bound to {:?} started on {arch:?}",
            j.bound_arch
        );
        // A replica's progress could win, so it binds the job's
        // architecture exactly like a primary start does.
        j.bound_arch = Some(arch);
    }

    /// A replica delivered the job's remaining demand first: it wins.
    /// Rival replicas are cancelled, the primary copy is torn down
    /// wherever it is, and the job completes on the winning station.
    fn on_replica_finish(
        &mut self,
        now: SimTime,
        job: JobId,
        on: u32,
        sched: &mut Scheduler<Event>,
    ) {
        let o = on as usize;
        if !self.slot_is(o, job, |p| {
            matches!(p, Phase::Replica(ReplicaState::Running { .. }))
        }) {
            return;
        }
        let slot = self.remove_resident(o, job).expect("slot checked above");
        let Phase::Replica(ReplicaState::Running { started, .. }) = slot.phase else {
            unreachable!("phase checked above")
        };
        let image = self.jobs[job.0 as usize].spec.image_bytes;
        self.stations[o].disk_used -= image;
        self.coord.mark(o);
        let util_end = self.hot.owner_active_since[o].map_or(now, |t| t.min(now));
        self.deposit_run_utilization(o, started, util_end.max(started), 1.0);
        self.redundancy
            .as_mut()
            .expect("replica without runtime")
            .by_job[job.0 as usize]
            .retain(|&s| s as usize != o);
        // Losers first, then the primary: the job's ledgers close below.
        self.cancel_replicas_of(now, job, sched);
        self.retire_primary(now, job, sched);
        {
            let j = &mut self.jobs[job.0 as usize];
            let remaining = j.remaining();
            j.accrue_run(remaining, self.config.costs.remote_syscall_cost.as_millis() * 1_000);
        }
        self.finish_bookkeeping(now, job, on);
    }

    /// Cancels every live replica of `job` (cancel-on-first-finish, owner
    /// return at the primary, crash of the primary's host, horizon).
    fn cancel_replicas_of(&mut self, now: SimTime, job: JobId, sched: &mut Scheduler<Event>) {
        let Some(r) = self.redundancy.as_ref() else { return };
        let stations: Vec<u32> = r.by_job[job.0 as usize].clone();
        for s in stations {
            self.cancel_replica(now, s as usize, job, sched);
        }
    }

    /// Cancels the replica of `job` living on station `i`, freeing the
    /// slot and disk and accounting the thrown-away work.
    fn cancel_replica(&mut self, now: SimTime, i: usize, job: JobId, sched: &mut Scheduler<Event>) {
        let Some(slot) = self.remove_resident(i, job) else { return };
        let Phase::Replica(state) = slot.phase else {
            unreachable!("cancel_replica on a non-replica slot")
        };
        self.stations[i].disk_used -= self.jobs[job.0 as usize].spec.image_bytes;
        self.coord.mark(i);
        self.account_replica_cancel(now, i, job, state, Some(sched));
    }

    /// Shared cancellation tail: cancels the pending event (when a live
    /// scheduler exists — at the horizon none does, and pending events are
    /// moot), deposits any run utilization, unregisters the replica, and
    /// emits the accounting. `wasted_ms` on the trace event is exactly the
    /// reference-machine work the cancelled copy had accrued, so summing
    /// the events reproduces `Totals::wasted_replica_work`.
    fn account_replica_cancel(
        &mut self,
        now: SimTime,
        i: usize,
        job: JobId,
        state: ReplicaState,
        sched: Option<&mut Scheduler<Event>>,
    ) {
        let wasted = match state {
            ReplicaState::Arriving { arrive } => {
                if let Some(s) = sched {
                    s.cancel(arrive);
                }
                SimDuration::ZERO
            }
            ReplicaState::Running { started, finish } => {
                if let Some(s) = sched {
                    s.cancel(finish);
                }
                let util_end = self.hot.owner_active_since[i].map_or(now, |t| t.min(now));
                self.deposit_run_utilization(i, started, util_end.max(started), 1.0);
                self.config.station.work_done_in(now.since(started))
            }
        };
        self.redundancy
            .as_mut()
            .expect("replica without runtime")
            .by_job[job.0 as usize]
            .retain(|&s| s as usize != i);
        self.totals.replicas_cancelled += 1;
        let wasted_ms = wasted.as_millis();
        self.totals.wasted_replica_work += wasted_ms;
        self.emit(
            now,
            TraceKind::ReplicaCancelled { job, on: NodeId::new(i as u32), wasted_ms },
        );
    }

    /// Tears down the primary copy of a job a replica just finished,
    /// whatever the primary was doing: its queue entry, in-flight image,
    /// run segment, or suspended slot disappears; its accrued work stays
    /// on the job's ledgers (the paper's gross remote-CPU accounting).
    fn retire_primary(&mut self, now: SimTime, job: JobId, sched: &mut Scheduler<Event>) {
        let image = self.jobs[job.0 as usize].spec.image_bytes;
        match self.jobs[job.0 as usize].state {
            JobState::Queued => {
                let home = self.jobs[job.0 as usize].spec.home.as_usize();
                self.stations[home].queue.remove(job);
                self.coord.mark(home);
            }
            JobState::Placing { target } => {
                let t = target.as_usize();
                self.stations[t].disk_used -= image;
                self.remove_resident(t, job);
                self.coord.mark(t);
                // Orphan the in-flight PlacementDone.
                self.jobs[job.0 as usize].transfer_seq += 1;
            }
            JobState::Running { on } => {
                let o = on.as_usize();
                let finish = self.stations[o].residents.iter().find_map(|slot| {
                    (slot.job == job)
                        .then_some(match &slot.phase {
                            Phase::Running { finish } => Some(*finish),
                            _ => None,
                        })
                        .flatten()
                });
                if let Some(finish) = finish {
                    sched.cancel(finish);
                }
                let util_end = self.hot.owner_active_since[o].map_or(now, |t| t.min(now));
                self.stop_running_segment(now, o, job, util_end);
                self.stations[o].disk_used -= image;
                self.remove_resident(o, job);
                self.coord.mark(o);
                // Kill any periodic/opportunistic checkpoint chain.
                self.jobs[job.0 as usize].epoch += 1;
            }
            JobState::Suspended { on } => {
                let o = on.as_usize();
                let grace = self.stations[o].residents.iter().find_map(|slot| {
                    (slot.job == job)
                        .then_some(match &slot.phase {
                            Phase::Suspended { grace } => Some(*grace),
                            _ => None,
                        })
                        .flatten()
                });
                if let Some(grace) = grace {
                    sched.cancel(grace);
                }
                self.stations[o].disk_used -= image;
                self.remove_resident(o, job);
                self.coord.mark(o);
            }
            JobState::CheckpointingOut { from } => {
                let f = from.as_usize();
                self.stations[f].disk_used -= image;
                self.remove_resident(f, job);
                self.coord.mark(f);
                // Orphan the in-flight CheckpointDone (and any retry).
                self.jobs[job.0 as usize].transfer_seq += 1;
            }
            // Replicas spawn at placement and die with completion, so the
            // primary can only be in an in-flight state here.
            JobState::Held | JobState::Completed | JobState::Forwarded => {
                debug_assert!(false, "replica finished for a settled primary");
            }
        }
    }

    // ----- gangs: §5(2) parallel programs ---------------------------------

    /// Starts the placement of a width-k gang onto `machines`.
    fn gang_place(
        &mut self,
        now: SimTime,
        home: NodeId,
        job: JobId,
        machines: Vec<u32>,
        sched: &mut Scheduler<Event>,
    ) {
        let (image, seq, demand) = {
            let j = &mut self.jobs[job.0 as usize];
            j.state = JobState::Placing { target: NodeId::new(machines[0]) };
            j.transfer_seq += 1;
            (j.spec.image_bytes, j.transfer_seq, j.spec.resources)
        };
        for &m in &machines {
            let t = m as usize;
            self.stations[t].disk_used += image;
            self.stations[t].residents.push(ForeignSlot { job, demand, phase: Phase::GangMember });
            self.hot.used_cap[t] = self.hot.used_cap[t].add(demand);
            self.coord.mark(t);
            self.jobs[job.0 as usize]
                .charge_transfer(self.config.costs.transfer_cpu_cost(image));
            let booking = self.bus.book_transfer(now, home, NodeId::new(m), image);
            sched.at(booking.completes_at, Event::PlacementDone { job, target: m, seq });
            self.emit(now, TraceKind::PlacementStarted { job, target: NodeId::new(m) });
        }
        self.gangs[job.0 as usize] = Some(Box::new(GangState {
            members: machines,
            staged: 0,
            departed: 0,
            finish: None,
            grace: None,
            running: false,
            departing: false,
        }));
        self.totals.placements += 1;
        self.totals.gang_placements += 1;
    }

    /// All images staged: start executing if every member's owner is idle,
    /// otherwise enter the suspended/grace state.
    fn gang_try_start(&mut self, now: SimTime, job: JobId, sched: &mut Scheduler<Event>) {
        let gang = self.gangs[job.0 as usize].as_deref().expect("gang exists");
        if gang.running || gang.departing || gang.staged < gang.members.len() as u32 {
            return;
        }
        let all_idle = gang
            .members
            .iter()
            .all(|&m| self.stations[m as usize].owner_state == OwnerState::Idle);
        let lead = gang.members[0];
        if all_idle {
            let pending_grace = self.gangs[job.0 as usize]
                .as_deref_mut()
                .expect("gang exists")
                .grace
                .take();
            if let Some(t) = pending_grace {
                sched.cancel(t);
                self.totals.resumes_in_place += 1;
                self.emit(
                    now,
                    TraceKind::JobResumedInPlace { job, on: NodeId::new(lead) },
                );
            }
            let remaining = self.jobs[job.0 as usize].remaining();
            debug_assert!(!remaining.is_zero());
            let wall = self.config.station.wall_time_for(remaining);
            let finish = sched.at(now + wall, Event::Finish { job, on: lead });
            let gang = self.gangs[job.0 as usize].as_deref_mut().expect("gang exists");
            gang.running = true;
            gang.finish = Some(finish);
            gang.grace = None;
            for m in gang.members.clone() {
                self.stations[m as usize].run_overlaps.clear();
                // A running gang member reports `hosting_for`.
                self.coord.mark(m as usize);
            }
            let j = &mut self.jobs[job.0 as usize];
            j.state = JobState::Running { on: NodeId::new(lead) };
            j.running_since = now;
            j.epoch += 1;
            self.emit(now, TraceKind::JobStarted { job, on: NodeId::new(lead) });
        } else if self.gangs[job.0 as usize].as_deref().expect("gang exists").grace.is_none() {
            // Staged onto at least one busy machine: wait out the grace
            // period for the owners to leave (gangs always use the grace
            // strategy — uncoordinated kills would forfeit the §2.3
            // completion guarantee for the whole program).
            let grace = self.gang_grace();
            let token = sched.at(now + grace, Event::GraceOver { station: lead, job });
            self.gangs[job.0 as usize].as_deref_mut().expect("gang exists").grace = Some(token);
            self.jobs[job.0 as usize].state = JobState::Suspended { on: NodeId::new(lead) };
            self.emit(now, TraceKind::JobSuspended { job, on: NodeId::new(lead) });
        }
    }

    fn gang_grace(&self) -> SimDuration {
        match self.config.eviction {
            EvictionStrategy::GraceThenCheckpoint { grace } => grace,
            // Gangs cannot be safely killed without coordination; fall
            // back to the paper's grace value.
            EvictionStrategy::ImmediateKill { .. } => SimDuration::from_minutes(5),
        }
    }

    /// Stops a running gang's accrual (owner detected on `station` or a
    /// priority preemption) and deposits each member's utilization.
    fn gang_stop_accrual(&mut self, now: SimTime, job: JobId, sched: &mut Scheduler<Event>) {
        let gang = self.gangs[job.0 as usize].as_deref_mut().expect("gang exists");
        debug_assert!(gang.running);
        gang.running = false;
        if let Some(finish) = gang.finish.take() {
            sched.cancel(finish);
        }
        let members = gang.members.clone();
        let running_since = self.jobs[job.0 as usize].running_since;
        let wall = now.since(running_since);
        let work = self.config.station.work_done_in(wall);
        self.jobs[job.0 as usize]
            .accrue_run(work, self.config.costs.remote_syscall_cost.as_millis() * 1_000);
        for &m in &members {
            let util_end = self.hot.owner_active_since[m as usize].map_or(now, |t| t.min(now));
            self.deposit_run_utilization(m as usize, running_since, util_end.max(running_since), 1.0);
            // The gang stopped running: members no longer report
            // `hosting_for`.
            self.coord.mark(m as usize);
        }
    }

    /// Owner detected on a member while the gang runs: the whole program
    /// blocks (its processes communicate), so everyone suspends together.
    fn gang_suspend(&mut self, now: SimTime, job: JobId, station: u32, sched: &mut Scheduler<Event>) {
        self.gang_stop_accrual(now, job, sched);
        if let Some(active_since) = self.hot.owner_active_since[station as usize] {
            self.totals.interference_ms += now.saturating_since(active_since).as_millis();
        }
        self.totals.preemptions_owner += 1;
        let lead = self.gangs[job.0 as usize].as_deref().expect("gang exists").members[0];
        let grace = self.gang_grace();
        let token = sched.at(now + grace, Event::GraceOver { station: lead, job });
        self.gangs[job.0 as usize].as_deref_mut().expect("gang exists").grace = Some(token);
        self.jobs[job.0 as usize].state = JobState::Suspended { on: NodeId::new(lead) };
        self.emit(now, TraceKind::JobSuspended { job, on: NodeId::new(station) });
    }

    /// Grace expired or priority preemption: coordinated checkpoint of all
    /// members back to the home station.
    fn gang_checkpoint_out(
        &mut self,
        now: SimTime,
        job: JobId,
        reason: PreemptReason,
        sched: &mut Scheduler<Event>,
    ) {
        let members = {
            let gang = self.gangs[job.0 as usize].as_deref_mut().expect("gang exists");
            debug_assert!(!gang.departing);
            gang.departing = true;
            gang.departed = 0;
            gang.grace = None;
            gang.members.clone()
        };
        let (image, home, seq) = {
            let j = &mut self.jobs[job.0 as usize];
            j.transfer_seq += 1;
            j.state = JobState::CheckpointingOut { from: NodeId::new(members[0]) };
            (j.spec.image_bytes, j.spec.home, j.transfer_seq)
        };
        for &m in &members {
            self.jobs[job.0 as usize]
                .charge_transfer(self.config.costs.transfer_cpu_cost(image));
            let booking = self.bus.book_transfer(now, NodeId::new(m), home, image);
            sched.at(booking.completes_at, Event::CheckpointDone { job, from: m, seq });
            self.emit(
                now,
                TraceKind::CheckpointStarted { job, from: NodeId::new(m), reason, bytes: image },
            );
        }
    }

    /// Frees every member slot and image; optionally rolls the job back to
    /// its last checkpoint (crash path); requeues at home.
    fn gang_teardown_and_requeue(
        &mut self,
        now: SimTime,
        job: JobId,
        rollback: bool,
        sched: &mut Scheduler<Event>,
    ) {
        let gang = self.gangs[job.0 as usize].take().expect("gang exists");
        if let Some(t) = gang.finish {
            sched.cancel(t);
        }
        if let Some(t) = gang.grace {
            sched.cancel(t);
        }
        let image = self.jobs[job.0 as usize].spec.image_bytes;
        if gang.running {
            // Crash mid-run: charge the gross consumption before reverting.
            let running_since = self.jobs[job.0 as usize].running_since;
            let wall = now.since(running_since);
            let work = self.config.station.work_done_in(wall);
            self.jobs[job.0 as usize]
                .accrue_run(work, self.config.costs.remote_syscall_cost.as_millis() * 1_000);
            for &m in &gang.members {
                if self.stations[m as usize].resident(job).is_some() {
                    let util_end =
                        self.hot.owner_active_since[m as usize].map_or(now, |t| t.min(now));
                    self.deposit_run_utilization(
                        m as usize,
                        running_since,
                        util_end.max(running_since),
                        1.0,
                    );
                }
            }
        }
        for &m in &gang.members {
            let mi = m as usize;
            if self.remove_resident(mi, job).is_some() {
                self.stations[mi].disk_used -= image;
            }
            self.coord.mark(mi);
        }
        let j = &mut self.jobs[job.0 as usize];
        if rollback {
            j.revert_to_checkpoint();
            self.totals.crash_rollbacks += 1;
        }
        j.state = JobState::Queued;
        let home = j.spec.home.as_usize();
        let remaining = j.remaining();
        self.stations[home].queue.enqueue_front(job, remaining);
        self.coord.mark(home);
    }

    fn on_reservation_start(&mut self, now: SimTime, idx: u32, sched: &mut Scheduler<Event>) {
        let r = self.config.reservations[idx as usize];
        // Fence machines for the holder: idle free stations first, then
        // stations hosting other users' running jobs (evicted through the
        // normal checkpoint path). The holder's own machine and machines
        // already fenced are skipped.
        let mut fenced = 0usize;
        // Pass 1: free idle machines.
        for i in 0..self.stations.len() {
            if fenced >= r.machines {
                break;
            }
            let st = &self.stations[i];
            if st.reserved_for.is_none()
                && !st.failed
                && st.residents.is_empty()
                && i != r.holder.as_usize()
            {
                self.set_reserved(i, Some(r.holder));
                fenced += 1;
            }
        }
        // Pass 2: evict other users' running jobs to free more machines.
        for i in 0..self.stations.len() {
            if fenced >= r.machines {
                break;
            }
            if self.stations[i].reserved_for.is_some() || i == r.holder.as_usize() {
                continue;
            }
            // Replica-occupied machines are fair game too: the copy is
            // cancelled instantly inside `execute_preempt`.
            let running_other = self.stations[i].residents.iter().any(|slot| {
                matches!(slot.phase, Phase::Running { .. } | Phase::Replica(_))
                    && self.jobs[slot.job.0 as usize].spec.home != r.holder
            });
            if running_other {
                let target = NodeId::new(i as u32);
                if self.execute_preempt(now, target, sched) {
                    self.set_reserved(i, Some(r.holder));
                    fenced += 1;
                }
            }
        }
        self.emit(
            now,
            TraceKind::ReservationStarted { holder: r.holder, machines: fenced as u32 },
        );
    }

    fn on_reservation_end(&mut self, now: SimTime, idx: u32) {
        let r = self.config.reservations[idx as usize];
        for i in 0..self.stations.len() {
            if self.stations[i].reserved_for == Some(r.holder) {
                self.set_reserved(i, None);
            }
        }
        self.emit(now, TraceKind::ReservationEnded { holder: r.holder });
    }

    fn on_station_crash(&mut self, now: SimTime, station: u32, sched: &mut Scheduler<Event>) {
        let i = station as usize;
        debug_assert!(!self.stations[i].failed, "double crash");
        self.stations[i].failed = true;
        self.set_reserved(i, None);
        self.totals.station_failures += 1;
        self.emit(now, TraceKind::StationFailed { station: NodeId::new(station) });
        // Every foreign job here loses everything since its last durable
        // checkpoint — the §2.3 guarantee is that it restarts from that
        // checkpoint at another machine, not that nothing is lost.
        let slots = std::mem::take(&mut self.stations[i].residents);
        self.hot.used_cap[i] = ResourceVec::ZERO;
        for slot in slots {
            let job = slot.job;
            match slot.phase {
                Phase::Running { finish } => {
                    sched.cancel(finish);
                    // The cycles were really consumed (gross ledger), but
                    // the progress is gone.
                    self.stop_running_segment(now, i, job, now);
                }
                Phase::Suspended { grace } => {
                    sched.cancel(grace);
                }
                Phase::Arriving | Phase::Departing => {
                    // In-flight transfer dies; its completion event is
                    // recognised as stale by the transfer sequence.
                }
                Phase::GangMember => {
                    // One member down kills the whole parallel program:
                    // tear the gang off every station and restart it from
                    // the last coordinated checkpoint.
                    let image = self.jobs[job.0 as usize].spec.image_bytes;
                    self.stations[i].disk_used -= image;
                    self.gang_teardown_and_requeue(now, job, true, sched);
                    self.emit(
                        now,
                        TraceKind::CrashRollback { job, on: NodeId::new(station) },
                    );
                    continue;
                }
                Phase::Replica(state) => {
                    // A crash destroys the speculative copy outright; the
                    // primary (elsewhere) is untouched, so no rollback.
                    let image = self.jobs[job.0 as usize].spec.image_bytes;
                    self.stations[i].disk_used -= image;
                    self.account_replica_cancel(now, i, job, state, Some(sched));
                    continue;
                }
            }
            let image = self.jobs[job.0 as usize].spec.image_bytes;
            self.stations[i].disk_used -= image;
            let j = &mut self.jobs[job.0 as usize];
            j.revert_to_checkpoint();
            j.state = JobState::Queued;
            let home = j.spec.home.as_usize();
            let remaining = j.remaining();
            self.totals.crash_rollbacks += 1;
            self.stations[home].queue.enqueue_front(job, remaining);
            self.coord.mark(home);
            self.emit(now, TraceKind::CrashRollback { job, on: NodeId::new(station) });
        }
        // Coordinator failover: while its host is down, allocation stops
        // (paper §2.1: "Only the allocation of new capacity ... is
        // affected").
        if station == self.config.coordinator_host {
            self.coordinator_down = true;
        }
        self.schedule_repair(now, station, sched);
    }

    /// With stochastic failures configured, repairs self-schedule;
    /// manually injected crashes (tests, what-if scripts) stay down until
    /// a manual `StationRecover`.
    fn schedule_repair(&mut self, now: SimTime, station: u32, sched: &mut Scheduler<Event>) {
        if let Some(failures) = self.config.failures {
            let i = station as usize;
            let repair = {
                let st = &mut self.stations[i];
                SimDuration::from_secs_f64(st.rng.exponential(failures.mttr.as_secs_f64()))
                    .max(SimDuration::SECOND)
            };
            sched.at(now + repair, Event::StationRecover { station });
        }
    }

    fn on_station_recover(&mut self, now: SimTime, station: u32, sched: &mut Scheduler<Event>) {
        let i = station as usize;
        debug_assert!(self.stations[i].failed, "recovery without crash");
        self.stations[i].failed = false;
        self.coord.mark(i);
        self.emit(now, TraceKind::StationRecovered { station: NodeId::new(station) });
        if station == self.config.coordinator_host {
            self.coordinator_down = false;
        }
        if let Some(failures) = self.config.failures {
            let ttf = {
                let st = &mut self.stations[i];
                SimDuration::from_secs_f64(st.rng.exponential(failures.mtbf.as_secs_f64()))
                    .max(SimDuration::SECOND)
            };
            sched.at(now + ttf, Event::StationCrash { station });
        }
    }

    // ----- chaos fault injection ----------------------------------------

    /// Applies one schedule entry. Instantaneous faults arm a one-shot
    /// effect; windowed faults open their window and schedule the heal.
    fn on_chaos_fault(&mut self, now: SimTime, idx: u32, sched: &mut Scheduler<Event>) {
        let fault = self.chaos.as_ref().expect("chaos event without config").cfg.schedule.entries
            [idx as usize]
            .fault;
        match fault {
            Fault::CtrlLoss { duration } => {
                let c = self.chaos.as_mut().expect("checked");
                c.ctrl_loss_until = c.ctrl_loss_until.max(now + duration);
            }
            Fault::CtrlDelay { delay } => {
                self.chaos.as_mut().expect("checked").delay_pending = Some(delay);
            }
            Fault::CtrlDup => {
                self.chaos.as_mut().expect("checked").dup_pending = true;
            }
            Fault::CkptCorrupt { duration } => {
                let c = self.chaos.as_mut().expect("checked");
                c.ckpt_corrupt_until = c.ckpt_corrupt_until.max(now + duration);
            }
            Fault::Partition { first_station, machines, duration } => {
                for s in first_station..first_station + machines {
                    let i = s as usize;
                    let depth = {
                        let c = self.chaos.as_mut().expect("checked");
                        c.partition_depth[i] += 1;
                        c.partition_depth[i]
                    };
                    if depth == 1 {
                        self.coord.mark(i);
                        self.emit(now, TraceKind::ChaosLinkDown { station: NodeId::new(s) });
                    }
                }
                sched.at(now + duration, Event::ChaosHeal { idx });
                self.kick_autonomy_sweep(now, sched);
            }
            Fault::CoordinatorOutage { duration } => {
                let depth = {
                    let c = self.chaos.as_mut().expect("checked");
                    c.outage_depth += 1;
                    c.outage_depth
                };
                if depth == 1 {
                    self.emit(now, TraceKind::ChaosCoordDown);
                }
                sched.at(now + duration, Event::ChaosHeal { idx });
                self.kick_autonomy_sweep(now, sched);
            }
        }
    }

    /// Closes a windowed fault. Overlapping windows nest: recovery is
    /// announced only when the last one ends.
    fn on_chaos_heal(&mut self, now: SimTime, idx: u32) {
        let fault = self.chaos.as_ref().expect("chaos event without config").cfg.schedule.entries
            [idx as usize]
            .fault;
        match fault {
            Fault::Partition { first_station, machines, .. } => {
                for s in first_station..first_station + machines {
                    let i = s as usize;
                    let depth = {
                        let c = self.chaos.as_mut().expect("checked");
                        c.partition_depth[i] -= 1;
                        c.partition_depth[i]
                    };
                    if depth == 0 {
                        self.coord.mark(i);
                        self.emit(now, TraceKind::ChaosLinkUp { station: NodeId::new(s) });
                    }
                }
            }
            Fault::CoordinatorOutage { .. } => {
                let depth = {
                    let c = self.chaos.as_mut().expect("checked");
                    c.outage_depth -= 1;
                    c.outage_depth
                };
                if depth == 0 {
                    self.emit(now, TraceKind::ChaosCoordUp);
                }
            }
            _ => debug_assert!(false, "heal scheduled for a windowless fault"),
        }
    }

    /// Arms the autonomy-sweep chain if it is not already running. The
    /// sweep rides the local schedulers' own check grid: autonomy is a
    /// station-side behaviour, reacting at owner-check granularity.
    fn kick_autonomy_sweep(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        let interval = self.config.costs.owner_check_interval;
        let c = self.chaos.as_mut().expect("chaos configured");
        if c.sweep_pending {
            return;
        }
        c.sweep_pending = true;
        sched.at(now + interval, Event::ChaosAutonomySweep);
    }

    /// One pass of the cut-off local schedulers: an unreachable, idle,
    /// unoccupied station whose queue holds a runnable width-1 job starts
    /// it locally — paper §2.1: only the allocation of *new* capacity
    /// stops when the coordinator is down; the stations stay autonomous.
    fn on_chaos_autonomy_sweep(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        let all_clear = {
            let c = self.chaos.as_ref().expect("chaos configured");
            c.outage_depth == 0 && c.partition_depth.iter().all(|&d| d == 0)
        };
        if all_clear {
            // Every window closed while the sweep was in flight: the chain
            // dies here and re-arms with the next windowed fault.
            self.chaos.as_mut().expect("checked").sweep_pending = false;
            return;
        }
        for i in 0..self.stations.len() {
            if !self.chaos.as_ref().expect("checked").unreachable(i) {
                continue;
            }
            // Speculative copies yield to the station's own queued demand
            // just as they yield to the coordinator's (see
            // `reclaim_replicas_for_demand`) — without this a replica
            // could block the very autonomy the outage path guarantees.
            // Copies whose primary is not running are spared: they are
            // their job's only progress.
            let yieldable = {
                let st = &self.stations[i];
                !st.failed
                    && st.reserved_for.is_none()
                    && st.owner_state == OwnerState::Idle
                    && !st.queue.is_empty()
                    && !st.residents.is_empty()
                    && st.residents.iter().all(|sl| {
                        matches!(sl.phase, Phase::Replica(_))
                            && matches!(
                                self.jobs[sl.job.0 as usize].state,
                                JobState::Running { .. }
                            )
                    })
            };
            if yieldable {
                let mut order = Vec::new();
                self.stations[i].queue.service_order_into(&mut order);
                let arch = self.station_arch(i);
                let runnable = order.iter().any(|id| {
                    let j = &self.jobs[id.0 as usize];
                    j.spec.width == 1 && j.can_run_on(arch)
                });
                if runnable {
                    let replicas: Vec<JobId> =
                        self.stations[i].residents.iter().map(|sl| sl.job).collect();
                    for job in replicas {
                        self.cancel_replica(now, i, job, sched);
                    }
                }
            }
            let st = &self.stations[i];
            if st.failed
                || st.reserved_for.is_some()
                || st.owner_state != OwnerState::Idle
                || !st.residents.is_empty()
                || st.queue.is_empty()
            {
                continue;
            }
            let arch = self.station_arch(i);
            let disk_free = st.disk_capacity - st.disk_used;
            // Width-1 only — a gang needs the coordinator to gather
            // machines. First eligible job in local service order.
            let jobs = &self.jobs;
            let Some(job) = self.stations[i].queue.pop_next_where(|id| {
                let j = &jobs[id.0 as usize];
                j.spec.width == 1 && j.can_run_on(arch) && j.spec.image_bytes <= disk_free
            }) else {
                continue;
            };
            let image = self.jobs[job.0 as usize].spec.image_bytes;
            // The running copy occupies local disk alongside the standing
            // image, exactly as a remote placement would at its target.
            self.stations[i].disk_used += image;
            self.coord.mark(i);
            self.totals.local_starts += 1;
            self.emit(now, TraceKind::ChaosLocalStart { job, on: NodeId::new(i as u32) });
            self.start_running(now, i, job, sched);
        }
        sched.at(now + self.config.costs.owner_check_interval, Event::ChaosAutonomySweep);
    }

    /// Handles a checkpoint transfer that completed inside a corruption
    /// window: announce, count, and schedule the re-send. No job state
    /// changes — the job stays `CheckpointingOut`, the slot `Departing`,
    /// until a clean copy lands.
    fn chaos_corrupt_ckpt(
        &mut self,
        now: SimTime,
        job: JobId,
        from: u32,
        seq: u32,
        sched: &mut Scheduler<Event>,
    ) {
        let (attempt, backoff) = {
            let c = self.chaos.as_mut().expect("corruption window checked");
            let slot = &mut c.retry_attempts[job.0 as usize];
            *slot += 1;
            let attempt = *slot;
            let base = c.cfg.retry_backoff_base.as_millis();
            let cap = c.cfg.retry_backoff_max.as_millis();
            let factor = 1u64 << (attempt - 1).min(20);
            (attempt, SimDuration::from_millis(cap.min(base.saturating_mul(factor))))
        };
        self.totals.ckpt_retries += 1;
        self.emit(
            now,
            TraceKind::ChaosCkptCorrupted { job, from: NodeId::new(from), attempt },
        );
        #[cfg(test)]
        if crate::chaos::test_hooks::BREAK_CKPT_RETRY.with(|b| b.get()) {
            return; // deliberately broken recovery: the re-send is dropped
        }
        sched.at(now + backoff, Event::ChaosCkptRetry { job, from, seq });
    }

    /// Re-sends a corrupted checkpoint image. Stale if the source station
    /// crashed in the meantime (the job has moved on).
    fn on_chaos_ckpt_retry(
        &mut self,
        now: SimTime,
        job: JobId,
        from: u32,
        seq: u32,
        sched: &mut Scheduler<Event>,
    ) {
        if self.jobs[job.0 as usize].transfer_seq != seq
            || !self.slot_is(from as usize, job, |p| matches!(p, Phase::Departing))
        {
            return;
        }
        let (image, home) = {
            let j = &mut self.jobs[job.0 as usize];
            let image = j.spec.image_bytes;
            j.charge_transfer(self.config.costs.transfer_cpu_cost(image));
            (image, j.spec.home)
        };
        let booking = self.bus.book_transfer(now, NodeId::new(from), home, image);
        sched.at(booking.completes_at, Event::CheckpointDone { job, from, seq });
    }

    /// Closes open accounting intervals at the end of observation.
    fn finalize(&mut self, horizon: SimTime) {
        // Horizon cut: every live replica dies unfinished and its progress
        // is wasted — conservation demands the books close on them before
        // the sinks do. No scheduler exists any more, and none is needed:
        // pending events will never fire.
        if self.redundancy.is_some() {
            let live: Vec<(JobId, u32)> = self
                .redundancy
                .as_ref()
                .expect("checked above")
                .by_job
                .iter()
                .enumerate()
                .flat_map(|(j, stations)| {
                    stations.iter().map(move |&s| (JobId(j as u64), s))
                })
                .collect();
            for (job, s) in live {
                let i = s as usize;
                let Some(slot) = self.remove_resident(i, job) else { continue };
                let Phase::Replica(state) = slot.phase else { continue };
                self.stations[i].disk_used -= self.jobs[job.0 as usize].spec.image_bytes;
                self.coord.mark(i);
                self.account_replica_cancel(horizon, i, job, state, None);
            }
        }
        // Running gangs: accrue and deposit each member's utilization.
        // `gangs` is a job-indexed Vec, so this iteration is deterministic.
        let running_gangs: Vec<JobId> = self
            .gangs
            .iter()
            .enumerate()
            .filter(|(_, g)| g.as_deref().is_some_and(|g| g.running))
            .map(|(j, _)| JobId(j as u64))
            .collect();
        for job in running_gangs {
            let running_since = self.jobs[job.0 as usize].running_since;
            if running_since >= horizon {
                continue;
            }
            let wall = horizon.since(running_since);
            let work = self.config.station.work_done_in(wall);
            self.jobs[job.0 as usize]
                .accrue_run(work, self.config.costs.remote_syscall_cost.as_millis() * 1_000);
            let members = self.gangs[job.0 as usize]
                .as_deref()
                .expect("gang exists")
                .members
                .clone();
            for &m in &members {
                let cap = self.hot.owner_active_since[m as usize]
                    .unwrap_or(horizon)
                    .min(horizon);
                self.deposit_run_utilization(m as usize, running_since, cap.max(running_since), 1.0);
            }
            self.jobs[job.0 as usize].running_since = horizon;
        }
        for i in 0..self.stations.len() {
            if let Some(t) = self.hot.owner_active_since[i] {
                if t < horizon {
                    self.local_busy
                        .deposit_interval(t, horizon, horizon.since(t).as_millis() as f64);
                }
                self.hot.owner_active_since[i] = Some(horizon);
            }
            let running_jobs: Vec<JobId> = self.stations[i]
                .residents
                .iter()
                .filter_map(|slot| matches!(slot.phase, Phase::Running { .. }).then_some(slot.job))
                .collect();
            for job in running_jobs {
                let since = self.jobs[job.0 as usize].running_since;
                if since < horizon {
                    // Cap at the owner's return if the segment is inside a
                    // not-yet-detected interference window.
                    let cap = self.hot.owner_active_since[i]
                        .unwrap_or(horizon)
                        .min(horizon);
                    self.stop_running_segment(horizon, i, job, cap);
                    self.jobs[job.0 as usize].running_since = horizon;
                }
            }
        }
        self.stats.finish(horizon);
        for s in &mut self.extra_sinks {
            s.finish(horizon);
        }
    }
}

impl Model for Cluster {
    type Event = Event;

    fn handle(&mut self, now: SimTime, ev: Event, sched: &mut Scheduler<Event>) {
        match ev {
            Event::Arrival(job) => self.on_arrival(now, job),
            Event::OwnerFlip { station } => self.on_owner_flip(now, station, sched),
            Event::DetectOwner { station } => self.on_detect_owner(now, station, sched),
            Event::Poll => self.on_poll(now, sched),
            Event::PlacementDone { job, target, seq } => {
                self.on_placement_done(now, job, target, seq, sched)
            }
            Event::CheckpointDone { job, from, seq } => {
                self.on_checkpoint_done(now, job, from, seq, sched)
            }
            Event::Finish { job, on } => self.on_finish(now, job, on, sched),
            Event::GraceOver { station, job } => self.on_grace_over(now, station, job, sched),
            Event::PeriodicCkpt { job, on, epoch } => {
                self.on_periodic_ckpt(now, job, on, epoch, sched)
            }
            Event::ReservationStart { idx } => self.on_reservation_start(now, idx, sched),
            Event::ReservationEnd { idx } => self.on_reservation_end(now, idx),
            Event::StationCrash { station } => self.on_station_crash(now, station, sched),
            Event::StationRecover { station } => self.on_station_recover(now, station, sched),
            Event::ChaosFault { idx } => self.on_chaos_fault(now, idx, sched),
            Event::ChaosHeal { idx } => self.on_chaos_heal(now, idx),
            Event::ChaosDelayedPoll { delay_ms } => {
                self.on_chaos_delayed_poll(now, delay_ms, sched)
            }
            Event::ChaosAutonomySweep => self.on_chaos_autonomy_sweep(now, sched),
            Event::ChaosCkptRetry { job, from, seq } => {
                self.on_chaos_ckpt_retry(now, job, from, seq, sched)
            }
            Event::ReplicaPlaced { job, target } => {
                self.on_replica_placed(now, job, target, sched)
            }
            Event::ReplicaFinish { job, on } => self.on_replica_finish(now, job, on, sched),
            Event::OpportunisticCkpt { job, on, epoch } => {
                self.on_opportunistic_ckpt(now, job, on, epoch, sched)
            }
        }
    }
}

/// Unified entry point for executing a simulation.
///
/// One builder replaces the old `run_cluster` / `run_cluster_with_sinks` /
/// `run_cluster_with_threads` trio: configure what you need, then call
/// [`execute`](Run::execute). A config carrying a
/// [`PoolTopology`](crate::config::PoolTopology) runs on the sharded
/// space-parallel engine (worker count from [`threads`](Run::threads), or
/// `CONDOR_THREADS` when unset); otherwise the run is serial.
///
/// # Examples
///
/// ```
/// use condor_core::cluster::Run;
/// use condor_core::config::ClusterConfig;
/// use condor_core::job::{JobId, JobSpec, UserId};
/// use condor_net::NodeId;
/// use condor_sim::time::{SimDuration, SimTime};
///
/// let spec = JobSpec {
///     id: JobId(0),
///     user: UserId(0),
///     home: NodeId::new(0),
///     arrival: SimTime::from_hours(1),
///     demand: SimDuration::from_hours(2),
///     image_bytes: 500_000,
///     syscalls_per_cpu_sec: 1.0,
///     binaries: Default::default(),
///     depends_on: Vec::new(),
///     width: 1,
///     resources: Default::default(),
///     speedup: Default::default(),
/// };
/// let out = Run::new(ClusterConfig::default())
///     .specs(vec![spec])
///     .horizon(SimDuration::from_days(2))
///     .execute();
/// assert_eq!(out.jobs.len(), 1);
/// ```
///
/// Streaming observers attach with [`sink`](Run::sink); keep a
/// [`SharedSink`](crate::telemetry::SharedSink) handle to read one back
/// after the run:
///
/// ```
/// use condor_core::cluster::Run;
/// use condor_core::config::ClusterConfig;
/// use condor_core::telemetry::{SharedSink, VecSink};
/// use condor_sim::time::SimDuration;
///
/// let events = SharedSink::new(VecSink::new());
/// let out = Run::new(
///     ClusterConfig::builder().stations(4).record_trace(false).build().unwrap(),
/// )
/// .horizon(SimDuration::from_hours(6))
/// .sink(Box::new(events.clone()))
/// .execute();
/// // The sink saw the owner activity even though the trace was off.
/// assert_eq!(events.with(|s| s.len()) as u64, out.telemetry.events_total);
/// ```
pub struct Run {
    config: ClusterConfig,
    specs: Vec<JobSpec>,
    horizon: SimDuration,
    sinks: Vec<Box<dyn TraceSink + Send>>,
    threads: Option<usize>,
}

impl std::fmt::Debug for Run {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Run")
            .field("stations", &self.config.stations)
            .field("specs", &self.specs.len())
            .field("horizon", &self.horizon)
            .field("sinks", &self.sinks.len())
            .field("threads", &self.threads)
            .finish()
    }
}

impl Run {
    /// Starts a run description over `config` with no jobs, no sinks, and a
    /// zero horizon (set one with [`horizon`](Run::horizon) or the run ends
    /// immediately).
    pub fn new(config: ClusterConfig) -> Self {
        Run {
            config,
            specs: Vec::new(),
            horizon: SimDuration::ZERO,
            sinks: Vec::new(),
            threads: None,
        }
    }

    /// Sets the workload submitted to the cluster.
    pub fn specs(mut self, specs: Vec<JobSpec>) -> Self {
        self.specs = specs;
        self
    }

    /// Sets how long the simulation runs.
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Attaches a streaming [`TraceSink`] observer before the first event.
    /// May be called repeatedly; sinks see events in emit order.
    pub fn sink(mut self, sink: Box<dyn TraceSink + Send>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Pins the sharded engine to exactly `threads` worker threads instead
    /// of reading `CONDOR_THREADS`. The config must carry a
    /// [`PoolTopology`](crate::config::PoolTopology).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Builds, primes, and runs the cluster, returning the complete output.
    pub fn execute(self) -> RunOutput {
        let Run { config, specs, horizon, sinks, threads } = self;
        if let Some(threads) = threads {
            assert!(
                config.topology.is_some(),
                "Run::threads requires a pool topology on the config"
            );
            return crate::shard::run_sharded(config, specs, horizon, sinks, Some(threads));
        }
        if config.topology.is_some() {
            return crate::shard::run_sharded(config, specs, horizon, sinks, None);
        }
        let mut cluster = Cluster::new(config, specs);
        for sink in sinks {
            cluster.attach_sink(sink);
        }
        let mut engine = Engine::new(cluster);
        Cluster::prime(&mut engine);
        let end = SimTime::ZERO + horizon;
        engine.run_until(end);
        finish_run(engine, end)
    }
}

/// Builds, primes, and runs a cluster for `horizon`, returning the
/// complete output.
#[deprecated(since = "0.1.0", note = "use `Run::new(config).specs(..).horizon(..).execute()`")]
pub fn run_cluster(config: ClusterConfig, specs: Vec<JobSpec>, horizon: SimDuration) -> RunOutput {
    Run::new(config).specs(specs).horizon(horizon).execute()
}

/// Like [`run_cluster`], with additional [`TraceSink`] observers attached
/// before the first event.
#[deprecated(since = "0.1.0", note = "use `Run` with `.sink(..)`")]
pub fn run_cluster_with_sinks(
    config: ClusterConfig,
    specs: Vec<JobSpec>,
    horizon: SimDuration,
    sinks: Vec<Box<dyn TraceSink + Send>>,
) -> RunOutput {
    let mut run = Run::new(config).specs(specs).horizon(horizon);
    for sink in sinks {
        run = run.sink(sink);
    }
    run.execute()
}

/// Like [`run_cluster`], but running the sharded space-parallel engine on
/// exactly `threads` worker threads instead of reading `CONDOR_THREADS`.
/// The config must carry a [`PoolTopology`](crate::config::PoolTopology).
#[deprecated(since = "0.1.0", note = "use `Run` with `.threads(..)`")]
pub fn run_cluster_with_threads(
    config: ClusterConfig,
    specs: Vec<JobSpec>,
    horizon: SimDuration,
    threads: usize,
) -> RunOutput {
    Run::new(config).specs(specs).horizon(horizon).threads(threads).execute()
}

/// Drains a finished engine into a [`RunOutput`]: closes open accounting
/// intervals at `end` and re-keys the per-user series. Shared by the
/// serial runner and each shard of the parallel runner.
pub(crate) fn finish_run(engine: Engine<Cluster>, end: SimTime) -> RunOutput {
    let events_dispatched = engine.events_dispatched();
    let mut model = engine.into_model();
    model.finalize(end);
    let policy_name = model.policy.name().to_string();
    // Re-key the dense per-user-slot series by user id. Only touched slots
    // appear, matching the old lazily-populated map: a user whose every
    // job was rejected at submission never shows up.
    let queue_by_user: BTreeMap<UserId, StepSeries> = model
        .user_ids
        .iter()
        .zip(model.queue_by_user)
        .zip(&model.user_touched)
        .filter_map(|((user, series), touched)| touched.then_some((*user, series)))
        .collect();
    RunOutput {
        policy_name,
        stations: model.config.stations,
        horizon: end,
        bus_bytes_moved: model.bus.bytes_moved(),
        bus_transfers: model.bus.transfers_booked(),
        jobs: model.jobs,
        trace: model.trace,
        totals: model.totals,
        queue_total: model.queue_total,
        queue_by_user,
        local_busy: model.local_busy,
        remote_busy: model.remote_busy,
        events_dispatched,
        telemetry: model.stats.into_telemetry(),
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use condor_model::diurnal::DiurnalProfile;
    use condor_model::owner::OwnerConfig;

    fn spec(id: u64, user: u32, home: u32, arrival_h: u64, demand_h: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            user: UserId(user),
            home: NodeId::new(home),
            arrival: SimTime::from_hours(arrival_h),
            demand: SimDuration::from_hours(demand_h),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        }
    }

    /// A config with quiet owners so jobs run undisturbed unless a test
    /// wants otherwise.
    fn quiet_config(stations: usize) -> ClusterConfig {
        ClusterConfig {
            stations,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.02),
                ..OwnerConfig::default()
            },
            owner_heterogeneity: 0.0,
            ..ClusterConfig::default()
        }
    }

    /// A config with busy, flappy owners to exercise preemption paths.
    fn stormy_config(stations: usize) -> ClusterConfig {
        ClusterConfig {
            stations,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.5),
                mean_active_period: SimDuration::from_minutes(8),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn single_job_completes_with_correct_accounting() {
        let out = run_cluster(
            quiet_config(4),
            vec![spec(0, 0, 0, 1, 3)],
            SimDuration::from_days(1),
        );
        let j = &out.jobs[0];
        assert_eq!(j.state, JobState::Completed, "job should finish: {j:?}");
        assert!(j.work_done >= j.spec.demand);
        assert!(j.placements >= 1);
        let wr = j.wait_ratio().unwrap();
        assert!(wr < 0.5, "quiet cluster wait ratio {wr}");
        let lev = j.leverage().unwrap();
        // 3 h at 1 syscall/s → 108 s syscall support + 2.5 s/move.
        assert!(lev > 50.0 && lev < 200.0, "leverage {lev}");
        assert_eq!(out.totals.placements, u64::from(j.placements));
    }

    #[test]
    fn all_jobs_eventually_complete_under_load() {
        let jobs: Vec<JobSpec> = (0..12).map(|i| spec(i, 0, 0, 1, 2)).collect();
        let out = run_cluster(quiet_config(6), jobs, SimDuration::from_days(4));
        let done = out.completed_jobs().count();
        assert_eq!(done, 12, "totals: {:?}", out.totals);
        // Guaranteed-completion property: no work lost under grace strategy.
        for j in &out.jobs {
            assert_eq!(j.work_lost, SimDuration::ZERO);
        }
    }

    #[test]
    fn placement_throttle_spaces_placements() {
        let jobs: Vec<JobSpec> = (0..6).map(|i| spec(i, 0, 0, 0, 10)).collect();
        let out = run_cluster(quiet_config(8), jobs, SimDuration::from_hours(2));
        // One placement per 2-minute poll at most.
        let starts: Vec<SimTime> = out
            .trace
            .filtered(|k| matches!(k, TraceKind::PlacementStarted { .. }))
            .map(|e| e.at)
            .collect();
        assert!(starts.len() >= 5, "expected several placements, got {}", starts.len());
        for w in starts.windows(2) {
            assert!(
                w[1].since(w[0]) >= SimDuration::from_minutes(2),
                "placements {} and {} too close",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn owner_return_suspends_then_checkpoints_and_job_survives() {
        // One station hosts; owners are extremely busy so preemption is
        // guaranteed, but the job still completes thanks to checkpointing.
        let cfg = ClusterConfig {
            stations: 3,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.6),
                mean_active_period: SimDuration::from_minutes(20),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        };
        let out = run_cluster(cfg, vec![spec(0, 0, 0, 0, 8)], SimDuration::from_days(6));
        let j = &out.jobs[0];
        assert_eq!(j.state, JobState::Completed, "{:?}", out.totals);
        assert!(
            out.totals.preemptions_owner > 0,
            "busy owners must preempt at least once: {:?}",
            out.totals
        );
        assert_eq!(j.work_lost, SimDuration::ZERO, "grace strategy never loses work");
        assert_eq!(j.work_done, j.spec.demand);
    }

    #[test]
    fn immediate_kill_loses_work_but_completes() {
        let cfg = ClusterConfig {
            eviction: EvictionStrategy::ImmediateKill {
                checkpoint_every: SimDuration::from_minutes(30),
            },
            ..stormy_config(3)
        };
        let out = run_cluster(cfg, vec![spec(0, 0, 0, 0, 6)], SimDuration::from_days(10));
        let j = &out.jobs[0];
        if out.totals.kills > 0 {
            assert!(
                j.remote_cpu >= j.work_done,
                "gross consumption must cover redone work"
            );
        }
        assert_eq!(j.state, JobState::Completed, "{:?}", out.totals);
        assert!(out.totals.periodic_checkpoints > 0 || out.totals.kills == 0);
    }

    #[test]
    fn heavy_user_cannot_starve_light_user() {
        // Heavy user floods from station 0; light user submits one batch
        // from station 1 much later. Up-Down must serve the light user
        // promptly.
        let mut jobs: Vec<JobSpec> = (0..30).map(|i| spec(i, 0, 0, 0, 12)).collect();
        for k in 0..3 {
            jobs.push(spec(30 + k, 1, 1, 48, 1));
        }
        let out = run_cluster(quiet_config(6), jobs, SimDuration::from_days(7));
        let light_done: Vec<&Job> = out
            .jobs
            .iter()
            .filter(|j| j.spec.user == UserId(1) && j.state == JobState::Completed)
            .collect();
        assert_eq!(light_done.len(), 3, "light user's batch must complete");
        for j in &light_done {
            let wr = j.wait_ratio().unwrap();
            assert!(wr < 3.0, "light user wait ratio {wr} too high");
        }
    }

    #[test]
    fn updown_preempts_for_light_user() {
        // Saturate: as many heavy jobs as stations, then a light request.
        let mut jobs: Vec<JobSpec> = (0..8).map(|i| spec(i, 0, 0, 0, 200)).collect();
        jobs.push(spec(8, 1, 1, 24, 1));
        let out = run_cluster(quiet_config(4), jobs, SimDuration::from_days(3));
        assert!(
            out.totals.preemptions_priority > 0,
            "light user should trigger a priority preemption: {:?}",
            out.totals
        );
        let light = &out.jobs[8];
        assert_eq!(light.state, JobState::Completed);
    }

    #[test]
    fn coordinator_failure_leaves_running_jobs_alone() {
        let cfg = quiet_config(4);
        let jobs = vec![spec(0, 0, 0, 0, 4), spec(1, 0, 0, 0, 4)];
        let cluster = Cluster::new(cfg, jobs);
        let mut engine = Engine::new(cluster);
        Cluster::prime(&mut engine);
        // Let the first job get placed and start running.
        engine.run_until(SimTime::from_hours(1));
        let running_before: Vec<JobState> =
            engine.model().jobs().iter().map(|j| j.state).collect();
        assert!(
            running_before.iter().any(|s| matches!(s, JobState::Running { .. })),
            "setup: at least one job should be running, got {running_before:?}"
        );
        // Coordinator dies for 10 hours.
        engine.model_mut().set_coordinator_down(true);
        engine.run_until(SimTime::from_hours(11));
        // The running job kept running (and likely finished); no *new*
        // placements happened while the coordinator was down.
        let placements_during = engine
            .model()
            .trace()
            .filtered(|k| matches!(k, TraceKind::PlacementStarted { .. }))
            .filter(|e| e.at > SimTime::from_hours(1))
            .count();
        assert_eq!(placements_during, 0, "no placements while coordinator down");
        let j0 = &engine.model().jobs()[0];
        assert!(
            j0.state == JobState::Completed || matches!(j0.state, JobState::Running { .. }),
            "running job unaffected by coordinator failure: {:?}",
            j0.state
        );
        // Recovery: bring it back, the queued job gets served.
        engine.model_mut().set_coordinator_down(false);
        engine.run_until(SimTime::from_hours(40));
        assert!(
            engine.model().jobs().iter().all(|j| j.state == JobState::Completed),
            "after recovery all jobs complete: {:?}",
            engine.model().jobs().iter().map(|j| j.state).collect::<Vec<_>>()
        );
    }

    #[test]
    fn disk_full_blocks_placement_but_not_forever() {
        // Tiny disks: only one foreign image fits per station.
        let cfg = ClusterConfig {
            station: condor_model::station::StationProfile::new(1.0, 600_000),
            ..quiet_config(3)
        };
        let jobs: Vec<JobSpec> = (0..4).map(|i| spec(i, 0, 0, 0, 1)).collect();
        let out = run_cluster(cfg, jobs, SimDuration::from_days(2));
        // Home station 0 holds 4 × 0.5 MB of checkpoint files — more than
        // 0.6 MB of disk — so some submissions are rejected outright.
        assert!(
            out.totals.submit_rejections > 0,
            "tiny home disk must reject some submissions: {:?}",
            out.totals
        );
        let admitted = out.jobs.iter().filter(|j| !j.rejected).count();
        let done = out.completed_jobs().count();
        assert_eq!(done, admitted, "all admitted jobs complete");
    }

    #[test]
    fn conservation_work_done_equals_demand_for_completed() {
        let jobs: Vec<JobSpec> = (0..10).map(|i| spec(i, (i % 3) as u32, (i % 4) as u32, i, 3)).collect();
        let out = run_cluster(stormy_config(4), jobs, SimDuration::from_days(10));
        for j in out.completed_jobs() {
            assert_eq!(j.work_done, j.spec.demand, "exact completion for {}", j.spec.id);
            assert!(j.remote_cpu >= j.work_done);
            assert!(j.completed_at.unwrap() >= j.spec.arrival + j.spec.demand);
        }
    }

    #[test]
    fn trace_protocol_invariants() {
        let jobs: Vec<JobSpec> = (0..8).map(|i| spec(i, 0, (i % 3) as u32, i, 2)).collect();
        let out = run_cluster(stormy_config(3), jobs, SimDuration::from_days(8));
        // Every job: arrivals == 1; starts >= placements related events...
        for j in 0..8u64 {
            let arr = out.trace.count(
                |k| matches!(k, TraceKind::JobArrived { job } if *job == JobId(j)),
            );
            assert_eq!(arr, 1, "job {j} must arrive exactly once");
            let completed = out.trace.count(
                |k| matches!(k, TraceKind::JobCompleted { job, .. } if *job == JobId(j)),
            );
            assert!(completed <= 1);
        }
        // Placement starts equal placement totals + disk rejections traced
        // separately.
        let starts = out
            .trace
            .count(|k| matches!(k, TraceKind::PlacementStarted { .. }));
        assert_eq!(starts as u64, out.totals.placements);
        // Checkpoint starts match completions (no transfer is lost).
        let ck_start = out
            .trace
            .count(|k| matches!(k, TraceKind::CheckpointStarted { .. }));
        let ck_done = out
            .trace
            .count(|k| matches!(k, TraceKind::CheckpointCompleted { .. }));
        assert_eq!(ck_start, ck_done);
        assert_eq!(ck_done as u64, out.totals.migrations);
    }

    #[test]
    fn queue_series_returns_to_zero_when_all_done() {
        let jobs: Vec<JobSpec> = (0..5).map(|i| spec(i, 0, 0, 0, 1)).collect();
        let out = run_cluster(quiet_config(4), jobs, SimDuration::from_days(2));
        assert_eq!(out.completed_jobs().count(), 5);
        assert_eq!(out.queue_total.value_at_end(), 0.0);
        let user_q = out.queue_by_user.get(&UserId(0)).unwrap();
        assert_eq!(user_q.value_at_end(), 0.0);
        // Peak queue was 5 right after the batch arrived.
        assert_eq!(out.queue_total.max_in(SimTime::ZERO, out.horizon), 5.0);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let jobs: Vec<JobSpec> = (0..6).map(|i| spec(i, 0, (i % 2) as u32, i, 2)).collect();
        let a = run_cluster(stormy_config(4), jobs.clone(), SimDuration::from_days(3));
        let b = run_cluster(stormy_config(4), jobs.clone(), SimDuration::from_days(3));
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.state, y.state);
            assert_eq!(x.work_done, y.work_done);
            assert_eq!(x.support_us, y.support_us);
        }
        // Different seed → different trace (statistically certain).
        let mut cfg2 = stormy_config(4);
        cfg2.seed = 777;
        let c = run_cluster(cfg2, jobs, SimDuration::from_days(3));
        assert_ne!(a.trace.len(), c.trace.len());
    }

    #[test]
    fn utilization_accounting_is_bounded() {
        let jobs: Vec<JobSpec> = (0..10).map(|i| spec(i, 0, 0, 0, 5)).collect();
        let out = run_cluster(stormy_config(5), jobs, SimDuration::from_days(5));
        let local = out.mean_local_utilization();
        let system = out.mean_system_utilization();
        assert!((0.0..=1.0).contains(&local), "local {local}");
        assert!(system >= local, "system {system} >= local {local}");
        assert!(system <= 1.0 + 1e-9, "system {system}");
        for u in out.system_utilization_hourly() {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "hourly {u}");
        }
        assert!(out.available_station_hours() > 0.0);
        assert!(out.consumed_cpu_hours() > 0.0);
    }

    /// The owner-idle EWMA that feeds history-aware placement: the named
    /// weights form a convex combination, the first observation seeds the
    /// estimate directly, and later samples blend at exactly
    /// `IDLE_EWMA_HISTORY_WEIGHT`/`IDLE_EWMA_SAMPLE_WEIGHT`.
    #[test]
    fn idle_ewma_weights_are_convex_and_seed_on_first_sample() {
        assert_eq!(IDLE_EWMA_HISTORY_WEIGHT + IDLE_EWMA_SAMPLE_WEIGHT, 1.0);
        // First completed idle interval seeds the estimate.
        let seeded = ewma_idle_update(0.0, 600.0);
        assert_eq!(seeded, 600.0);
        // Subsequent intervals blend with the documented weights.
        let blended = ewma_idle_update(seeded, 60.0);
        assert_eq!(
            blended,
            IDLE_EWMA_HISTORY_WEIGHT * 600.0 + IDLE_EWMA_SAMPLE_WEIGHT * 60.0
        );
        // The estimate stays inside the observed range (convexity).
        assert!(blended > 60.0 && blended < 600.0);
    }

    #[test]
    fn history_aware_placement_runs_and_differs() {
        let jobs: Vec<JobSpec> = (0..10).map(|i| spec(i, 0, 0, 0, 4)).collect();
        let base = stormy_config(6);
        let aware = ClusterConfig {
            history_aware_placement: true,
            ..base.clone()
        };
        let a = run_cluster(base, jobs.clone(), SimDuration::from_days(4));
        let b = run_cluster(aware, jobs, SimDuration::from_days(4));
        // Both make progress; the placement order differs at some point.
        assert!(a.completed_jobs().count() > 0);
        assert!(b.completed_jobs().count() > 0);
    }

    #[test]
    fn baseline_policies_run_to_completion() {
        for policy in [PolicyKind::Fifo, PolicyKind::RoundRobin, PolicyKind::Random] {
            let cfg = ClusterConfig {
                policy,
                ..quiet_config(4)
            };
            let jobs: Vec<JobSpec> = (0..6).map(|i| spec(i, (i % 2) as u32, (i % 2) as u32, 0, 1)).collect();
            let out = run_cluster(cfg, jobs, SimDuration::from_days(2));
            assert_eq!(out.completed_jobs().count(), 6, "policy {policy:?}");
            assert_eq!(out.totals.preemptions_priority, 0, "baselines never preempt");
        }
    }

    #[test]
    fn resume_in_place_happens_with_short_owner_bursts() {
        // Owners with very short active bursts (well under the 5-minute
        // grace): suspended jobs should frequently resume in place.
        let cfg = ClusterConfig {
            stations: 3,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.3),
                mean_active_period: SimDuration::from_secs(90),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        };
        let out = run_cluster(cfg, vec![spec(0, 0, 0, 0, 20)], SimDuration::from_days(6));
        assert!(
            out.totals.resumes_in_place > 0,
            "short bursts should produce in-place resumes: {:?}",
            out.totals
        );
        assert!(
            out.totals.resumes_in_place + out.totals.migrations >= out.totals.preemptions_owner,
            "every owner preemption resolves via resume or migration"
        );
    }

    #[test]
    fn interference_is_bounded_by_detection_latency() {
        let out = run_cluster(
            stormy_config(4),
            (0..6).map(|i| spec(i, 0, 0, 0, 10)).collect(),
            SimDuration::from_days(4),
        );
        // Each owner preemption can contribute at most one detection
        // interval (30 s) of interference.
        let bound = out.totals.preemptions_owner * 30_000;
        assert!(
            out.totals.interference_ms <= bound,
            "interference {} > bound {}",
            out.totals.interference_ms,
            bound
        );
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod failure_tests {
    use super::*;
    use crate::config::FailureConfig;
    use condor_model::diurnal::DiurnalProfile;
    use condor_model::owner::OwnerConfig;

    fn spec(id: u64, home: u32, demand_h: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            user: UserId(0),
            home: NodeId::new(home),
            arrival: SimTime::from_hours(1),
            demand: SimDuration::from_hours(demand_h),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        }
    }

    fn crashy_config(stations: usize, mtbf_h: u64, mttr_h: u64) -> ClusterConfig {
        ClusterConfig {
            stations,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.05),
                ..OwnerConfig::default()
            },
            failures: Some(FailureConfig {
                mtbf: SimDuration::from_hours(mtbf_h),
                mttr: SimDuration::from_hours(mttr_h),
            }),
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn jobs_survive_station_crashes() {
        // Frequent crashes: MTBF 12 h per station over a 20-day run.
        let jobs: Vec<JobSpec> = (0..8).map(|i| spec(i, (i % 2) as u32, 6)).collect();
        let out = run_cluster(crashy_config(5, 12, 1), jobs, SimDuration::from_days(20));
        assert!(out.totals.station_failures > 10, "{:?}", out.totals);
        assert_eq!(
            out.completed_jobs().count(),
            8,
            "every job must complete despite crashes: {:?}",
            out.totals
        );
        for j in out.completed_jobs() {
            assert_eq!(j.work_done, j.spec.demand);
        }
    }

    #[test]
    fn crashes_roll_back_to_last_checkpoint() {
        let jobs: Vec<JobSpec> = (0..6).map(|i| spec(i, 0, 10)).collect();
        let out = run_cluster(crashy_config(4, 8, 1), jobs, SimDuration::from_days(25));
        assert!(out.totals.crash_rollbacks > 0, "{:?}", out.totals);
        // Rollbacks redo work: gross consumption exceeds net for some job.
        let lost: f64 = out.jobs.iter().map(|j| j.work_lost.as_hours_f64()).sum();
        assert!(lost > 0.0, "crashes must lose un-checkpointed work");
        // But the guarantee holds.
        assert_eq!(out.completed_jobs().count(), 6);
    }

    #[test]
    fn coordinator_host_crash_stalls_allocation_only() {
        // Deterministic scripted crash via direct model driving.
        let cfg = ClusterConfig {
            stations: 4,
            coordinator_host: 0,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.02),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        };
        let jobs = vec![spec(0, 1, 4), spec(1, 1, 4), spec(2, 1, 4)];
        let cluster = Cluster::new(cfg, jobs);
        let mut engine = Engine::new(cluster);
        Cluster::prime(&mut engine);
        // Let one job start.
        engine.run_until(SimTime::from_hours(2));
        let placements_before = engine.model().totals().placements;
        assert!(placements_before >= 1);
        // Crash the coordinator host.
        engine
            .scheduler()
            .immediately(Event::StationCrash { station: 0 });
        engine.run_until(SimTime::from_hours(2) + SimDuration::from_secs(1));
        // For the next 6 hours no new placements may start, but running
        // jobs keep finishing.
        engine.run_until(SimTime::from_hours(8));
        let placements_during = engine.model().totals().placements;
        assert_eq!(
            placements_during, placements_before,
            "no allocation while the coordinator host is down"
        );
        let finished: usize = engine
            .model()
            .jobs()
            .iter()
            .filter(|j| j.state == JobState::Completed)
            .count();
        assert!(finished >= 1, "running jobs complete during the outage");
        // Recover and drain.
        engine
            .scheduler()
            .immediately(Event::StationRecover { station: 0 });
        engine.run_until(SimTime::from_hours(40));
        assert!(engine
            .model()
            .jobs()
            .iter()
            .all(|j| j.state == JobState::Completed));
    }

    #[test]
    fn checkpoint_server_lifts_home_disk_limit() {
        // Tiny home disks: without a server most submissions bounce;
        // with the §4 checkpoint server everything is admitted.
        let base = ClusterConfig {
            station: condor_model::station::StationProfile::new(1.0, 600_000),
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.02),
                ..OwnerConfig::default()
            },
            stations: 4,
            ..ClusterConfig::default()
        };
        let jobs: Vec<JobSpec> = (0..6).map(|i| spec(i, 0, 1)).collect();
        let without = run_cluster(base.clone(), jobs.clone(), SimDuration::from_days(2));
        assert!(without.totals.submit_rejections > 0);
        let with = run_cluster(
            ClusterConfig { checkpoint_server: true, ..base },
            jobs,
            SimDuration::from_days(2),
        );
        assert_eq!(with.totals.submit_rejections, 0, "server absorbs the images");
        assert_eq!(with.completed_jobs().count(), 6);
    }

    #[test]
    fn crash_and_transfer_race_is_harmless() {
        // Pathological setup: constant crashing with long repairs while
        // transfers are slow (tiny bandwidth). Exercises the stale
        // transfer-sequence guards; the run must neither panic nor violate
        // conservation.
        let mut cfg = crashy_config(3, 4, 2);
        cfg.bus = condor_net::BusConfig {
            bandwidth_bytes_per_sec: 20_000, // 25 s per image
            ..condor_net::BusConfig::default()
        };
        let jobs: Vec<JobSpec> = (0..5).map(|i| spec(i, (i % 3) as u32, 3)).collect();
        let out = run_cluster(cfg, jobs, SimDuration::from_days(30));
        for j in &out.jobs {
            assert!(j.work_done <= j.spec.demand);
            assert!(j.remote_cpu >= j.work_done);
            if j.state == JobState::Completed {
                assert_eq!(j.work_done, j.spec.demand);
            }
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod arch_tests {
    use super::*;
    use condor_model::diurnal::DiurnalProfile;
    use condor_model::owner::OwnerConfig;
    use condor_model::station::{Arch, ArchSet};

    fn spec_with_binaries(id: u64, home: u32, demand_h: u64, binaries: ArchSet) -> JobSpec {
        JobSpec {
            id: JobId(id),
            user: UserId(0),
            home: NodeId::new(home),
            arrival: SimTime::from_hours(1),
            demand: SimDuration::from_hours(demand_h),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 1.0,
            binaries,
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        }
    }

    fn mixed_fleet(stations: usize) -> ClusterConfig {
        ClusterConfig {
            stations,
            arch_pattern: vec![Arch::Vax, Arch::Sun],
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.02),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn vax_only_jobs_never_run_on_suns() {
        // Fleet alternates VAX (even) / SUN (odd).
        let jobs: Vec<JobSpec> =
            (0..6).map(|i| spec_with_binaries(i, 0, 2, ArchSet::vax_only())).collect();
        let out = run_cluster(mixed_fleet(6), jobs, SimDuration::from_days(3));
        assert_eq!(out.completed_jobs().count(), 6);
        for ev in out.trace.events() {
            if let TraceKind::JobStarted { on, .. } = ev.kind {
                assert_eq!(
                    on.index() % 2,
                    0,
                    "VAX-only job started on SUN station {on}"
                );
            }
        }
    }

    #[test]
    fn dual_binary_jobs_use_the_whole_fleet() {
        let jobs: Vec<JobSpec> =
            (0..8).map(|i| spec_with_binaries(i, 0, 3, ArchSet::both())).collect();
        let out = run_cluster(mixed_fleet(4), jobs, SimDuration::from_days(4));
        assert_eq!(out.completed_jobs().count(), 8);
        let mut archs_used = std::collections::HashSet::new();
        for ev in out.trace.events() {
            if let TraceKind::JobStarted { on, .. } = ev.kind {
                archs_used.insert(on.index() % 2);
            }
        }
        assert_eq!(archs_used.len(), 2, "dual binaries should reach both arches");
    }

    #[test]
    fn work_binds_jobs_to_their_first_architecture() {
        // Stormy owners force migrations; a dual-binary job must keep
        // migrating within its first architecture.
        let cfg = ClusterConfig {
            stations: 6,
            arch_pattern: vec![Arch::Vax, Arch::Sun],
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.5),
                mean_active_period: SimDuration::from_minutes(15),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        };
        let jobs = vec![spec_with_binaries(0, 0, 20, ArchSet::both())];
        let out = run_cluster(cfg, jobs, SimDuration::from_days(12));
        let hosts: Vec<u32> = out
            .trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::JobStarted { on, .. } => Some(on.index()),
                _ => None,
            })
            .collect();
        assert!(hosts.len() > 1, "expected migrations, hosts: {hosts:?}");
        let first_arch = hosts[0] % 2;
        assert!(
            hosts.iter().all(|h| h % 2 == first_arch),
            "job crossed architectures after binding: {hosts:?}"
        );
        assert_eq!(out.jobs[0].state, JobState::Completed);
        assert_eq!(
            out.jobs[0].bound_arch,
            Some(if first_arch == 0 { Arch::Vax } else { Arch::Sun })
        );
    }

    #[test]
    fn arch_starvation_is_counted() {
        // Only SUN machines are ever idle (1-station VAX fleet is the
        // home and owner-busy there is irrelevant: home hosts jobs too).
        // Construct: 2 stations [Vax, Sun]; a SUN-only... simpler: jobs are
        // SUN-only, fleet has a VAX; grants to the VAX waste.
        let cfg = ClusterConfig {
            stations: 2,
            arch_pattern: vec![Arch::Vax, Arch::Sun],
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.02),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        };
        let jobs: Vec<JobSpec> =
            (0..3).map(|i| spec_with_binaries(i, 0, 1, ArchSet::sun_only())).collect();
        let out = run_cluster(cfg, jobs, SimDuration::from_days(2));
        assert_eq!(out.completed_jobs().count(), 3, "{:?}", out.totals);
        assert!(
            out.totals.arch_starvation > 0,
            "grants to the VAX machine must be wasted: {:?}",
            out.totals
        );
        for ev in out.trace.events() {
            if let TraceKind::JobStarted { on, .. } = ev.kind {
                assert_eq!(on.index(), 1, "SUN-only job on the VAX");
            }
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod reservation_tests {
    use super::*;
    use crate::config::Reservation;
    use condor_model::diurnal::DiurnalProfile;
    use condor_model::owner::OwnerConfig;

    fn spec(id: u64, user: u32, home: u32, arrival_h: u64, demand_h: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            user: UserId(user),
            home: NodeId::new(home),
            arrival: SimTime::from_hours(arrival_h),
            demand: SimDuration::from_hours(demand_h),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        }
    }

    fn flooded_config(reservations: Vec<Reservation>) -> ClusterConfig {
        ClusterConfig {
            stations: 6,
            reservations,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.02),
                ..OwnerConfig::default()
            },
            owner_heterogeneity: 0.0,
            ..ClusterConfig::default()
        }
    }

    /// A heavy flood from station 0 plus a 3-job batch from station 1 that
    /// arrives exactly when its reservation window opens.
    fn duel_jobs() -> Vec<JobSpec> {
        let mut jobs: Vec<JobSpec> = (0..40).map(|i| spec(i, 0, 0, 0, 50)).collect();
        for k in 0..3 {
            jobs.push(spec(40 + k, 1, 1, 48, 2));
        }
        jobs
    }

    #[test]
    fn reservation_fences_machines_and_serves_the_holder() {
        let reservation = Reservation {
            holder: NodeId::new(1),
            machines: 3,
            from: SimTime::from_hours(48),
            until: SimTime::from_hours(60),
        };
        let out = run_cluster(
            flooded_config(vec![reservation]),
            duel_jobs(),
            SimDuration::from_days(4),
        );
        // The reservation evicted heavy jobs at the window start.
        let started = out
            .trace
            .filtered(|k| matches!(k, TraceKind::ReservationStarted { .. }))
            .next()
            .expect("reservation started");
        assert_eq!(started.at, SimTime::from_hours(48));
        if let TraceKind::ReservationStarted { machines, holder } = started.kind {
            assert_eq!(holder, NodeId::new(1));
            assert_eq!(machines, 3, "all three machines fenced (by eviction)");
        }
        // At least two of the three holder jobs go through the fenced fast
        // path. The exact count depends on the owner-activity RNG stream (a
        // fenced machine whose owner is momentarily active at poll time
        // defers to the general path), so don't pin all three.
        assert!(out.totals.reservation_placements >= 2, "{:?}", out.totals);
        // The holder's jobs all complete inside the window with near-zero
        // wait (2 h jobs, 12 h window, 3 machines).
        for j in out.jobs.iter().filter(|j| j.spec.user == UserId(1)) {
            assert_eq!(j.state, JobState::Completed, "{:?}", j.spec.id);
            let done = j.completed_at.unwrap();
            assert!(
                done <= SimTime::from_hours(60),
                "job {} finished at {done}, after the window",
                j.spec.id
            );
        }
        let ended = out
            .trace
            .count(|k| matches!(k, TraceKind::ReservationEnded { .. }));
        assert_eq!(ended, 1);
    }

    #[test]
    fn without_reservation_the_flood_delays_the_batch() {
        // Control for the test above: same workload, no reservation, FIFO
        // policy (no Up-Down protection) — the batch waits far longer.
        let mut with_r = f64::NAN;
        let mut without = f64::NAN;
        for (reserve, out_var) in [(true, 0usize), (false, 1usize)] {
            let reservations = if reserve {
                vec![Reservation {
                    holder: NodeId::new(1),
                    machines: 3,
                    from: SimTime::from_hours(48),
                    until: SimTime::from_hours(60),
                }]
            } else {
                Vec::new()
            };
            let cfg = ClusterConfig {
                policy: crate::config::PolicyKind::Fifo,
                ..flooded_config(reservations)
            };
            let out = run_cluster(cfg, duel_jobs(), SimDuration::from_days(10));
            // For jobs still waiting at the horizon, use the elapsed wait
            // as a lower bound so an unserved batch counts as a huge (not
            // missing) wait.
            let mean_wait: f64 = {
                let waits: Vec<f64> = out
                    .jobs
                    .iter()
                    .filter(|j| j.spec.user == UserId(1))
                    .map(|j| {
                        j.wait_ratio().unwrap_or_else(|| {
                            let waited = out.horizon.saturating_since(j.spec.arrival);
                            waited.as_secs_f64() / j.spec.demand.as_secs_f64()
                        })
                    })
                    .collect();
                waits.iter().sum::<f64>() / waits.len().max(1) as f64
            };
            if out_var == 0 {
                with_r = mean_wait;
            } else {
                without = mean_wait;
            }
        }
        assert!(
            with_r < without / 2.0,
            "reservation must slash the batch's wait: {with_r:.2} vs {without:.2}"
        );
    }

    #[test]
    fn fence_lifts_after_the_window() {
        let reservation = Reservation {
            holder: NodeId::new(1),
            machines: 3,
            from: SimTime::from_hours(10),
            until: SimTime::from_hours(12),
        };
        // Only the heavy user; the holder never uses its window. Enough
        // work that the backlog outlives the reservation window.
        let jobs: Vec<JobSpec> = (0..20).map(|i| spec(i, 0, 0, 0, 12)).collect();
        let out = run_cluster(
            flooded_config(vec![reservation]),
            jobs,
            SimDuration::from_days(4),
        );
        // Heavy placements continue after the window closes and all jobs
        // eventually complete.
        assert_eq!(out.completed_jobs().count(), 20, "{:?}", out.totals);
        let placements_after_window = out
            .trace
            .filtered(|k| matches!(k, TraceKind::PlacementStarted { .. }))
            .filter(|e| e.at > SimTime::from_hours(12))
            .count();
        assert!(placements_after_window > 0, "pool must reopen");
    }

    #[test]
    fn owner_activity_beats_reservations() {
        // Owners on fenced machines still preempt the holder's jobs.
        let reservation = Reservation {
            holder: NodeId::new(1),
            machines: 2,
            from: SimTime::from_hours(1),
            until: SimTime::from_hours(40),
        };
        let cfg = ClusterConfig {
            stations: 4,
            reservations: vec![reservation],
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.5),
                mean_active_period: SimDuration::from_minutes(30),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        };
        let jobs = vec![spec(0, 1, 1, 1, 15)];
        let out = run_cluster(cfg, jobs, SimDuration::from_days(5));
        assert_eq!(out.jobs[0].state, JobState::Completed);
        assert!(
            out.totals.preemptions_owner > 0,
            "owners must still preempt on fenced machines: {:?}",
            out.totals
        );
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod dependency_tests {
    use super::*;
    use condor_model::diurnal::DiurnalProfile;
    use condor_model::owner::OwnerConfig;

    fn spec_dep(id: u64, arrival_h: u64, demand_h: u64, deps: Vec<u64>) -> JobSpec {
        JobSpec {
            id: JobId(id),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::from_hours(arrival_h),
            demand: SimDuration::from_hours(demand_h),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: deps.into_iter().map(JobId).collect(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        }
    }

    fn quiet(stations: usize) -> ClusterConfig {
        ClusterConfig {
            stations,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.02),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn pipeline_runs_in_order() {
        // A → B → C, all submitted at once on a big idle cluster.
        let jobs = vec![
            spec_dep(0, 0, 2, vec![]),
            spec_dep(1, 0, 2, vec![0]),
            spec_dep(2, 0, 2, vec![1]),
        ];
        let out = run_cluster(quiet(6), jobs, SimDuration::from_days(2));
        assert_eq!(out.completed_jobs().count(), 3);
        let done: Vec<SimTime> = out.jobs.iter().map(|j| j.completed_at.unwrap()).collect();
        assert!(done[0] < done[1] && done[1] < done[2], "{done:?}");
        // B could not start before A finished.
        let b_start = out
            .trace
            .filtered(|k| matches!(k, TraceKind::JobStarted { job, .. } if *job == JobId(1)))
            .next()
            .unwrap()
            .at;
        assert!(b_start >= done[0], "B started {b_start} before A finished {}", done[0]);
    }

    #[test]
    fn diamond_joins_wait_for_both_parents() {
        //   0
        //  / \
        // 1   2   (1 is short, 2 is long)
        //  \ /
        //   3
        let jobs = vec![
            spec_dep(0, 0, 1, vec![]),
            spec_dep(1, 0, 1, vec![0]),
            spec_dep(2, 0, 6, vec![0]),
            spec_dep(3, 0, 1, vec![1, 2]),
        ];
        let out = run_cluster(quiet(6), jobs, SimDuration::from_days(2));
        assert_eq!(out.completed_jobs().count(), 4);
        let done_2 = out.jobs[2].completed_at.unwrap();
        let start_3 = out
            .trace
            .filtered(|k| matches!(k, TraceKind::JobStarted { job, .. } if *job == JobId(3)))
            .next()
            .unwrap()
            .at;
        assert!(start_3 >= done_2, "join started before the slow parent finished");
    }

    #[test]
    fn dependency_completed_before_arrival_does_not_hold() {
        // Parent at t=0 (1 h); child arrives at t=30 h, long after.
        let jobs = vec![spec_dep(0, 0, 1, vec![]), spec_dep(1, 30, 1, vec![0])];
        let out = run_cluster(quiet(4), jobs, SimDuration::from_days(3));
        assert_eq!(out.completed_jobs().count(), 2);
        let child = &out.jobs[1];
        // Served promptly: wait ratio near zero.
        assert!(child.wait_ratio().unwrap() < 0.5, "{:?}", child.wait_ratio());
    }

    #[test]
    fn held_jobs_count_in_the_queue_but_never_place() {
        let jobs = vec![spec_dep(0, 0, 4, vec![]), spec_dep(1, 0, 1, vec![0])];
        let cluster = Cluster::new(quiet(4), jobs);
        let mut engine = Engine::new(cluster);
        Cluster::prime(&mut engine);
        engine.run_until(SimTime::from_hours(2));
        let m = engine.model();
        assert_eq!(m.jobs()[1].state, JobState::Held);
        // No placement of the held job yet.
        let placed = m
            .trace()
            .count(|k| matches!(k, TraceKind::PlacementStarted { job, .. } if *job == JobId(1)));
        assert_eq!(placed, 0);
        engine.run_until(SimTime::from_hours(30));
        assert_eq!(engine.model().jobs()[1].state, JobState::Completed);
    }

    #[test]
    #[should_panic(expected = "dependencies must reference lower ids")]
    fn forward_dependencies_rejected() {
        let jobs = vec![spec_dep(0, 0, 1, vec![1]), spec_dep(1, 0, 1, vec![])];
        Cluster::new(quiet(2), jobs);
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod gang_tests {
    use super::*;
    use condor_model::diurnal::DiurnalProfile;
    use condor_model::owner::OwnerConfig;

    fn gang_spec(id: u64, width: u32, demand_h: u64, arrival_h: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::from_hours(arrival_h),
            demand: SimDuration::from_hours(demand_h),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width,
            resources: Default::default(),
            speedup: Default::default(),
        }
    }

    fn quiet(stations: usize) -> ClusterConfig {
        ClusterConfig {
            stations,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.02),
                ..OwnerConfig::default()
            },
            owner_heterogeneity: 0.0,
            ..ClusterConfig::default()
        }
    }

    fn stormy(stations: usize) -> ClusterConfig {
        ClusterConfig {
            stations,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.4),
                mean_active_period: SimDuration::from_minutes(20),
                ..OwnerConfig::default()
            },
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn gang_runs_on_k_machines_and_completes() {
        let out = run_cluster(quiet(6), vec![gang_spec(0, 3, 4, 0)], SimDuration::from_days(1));
        let j = &out.jobs[0];
        assert_eq!(j.state, JobState::Completed, "{:?}", out.totals);
        assert_eq!(j.work_done, SimDuration::from_hours(4));
        // Capacity consumed = width × work.
        assert_eq!(j.remote_cpu, SimDuration::from_hours(12));
        assert!(out.totals.gang_placements >= 1);
        // Every gang placement round ships exactly width images.
        let member_placements = out
            .trace
            .count(|k| matches!(k, TraceKind::PlacementStarted { .. }));
        assert_eq!(member_placements as u64, 3 * out.totals.gang_placements);
        // Utilization ledger saw 3 machine-streams of ~4 h.
        assert!(
            (out.consumed_cpu_hours() - 12.0).abs() < 0.5,
            "consumed {}",
            out.consumed_cpu_hours()
        );
    }

    #[test]
    fn gang_waits_until_enough_machines() {
        // 4 stations; a width-3 gang plus enough singles to crowd it out
        // initially. The gang must eventually assemble 3 machines.
        let mut jobs = vec![gang_spec(0, 3, 2, 0)];
        for i in 1..4 {
            jobs.push(gang_spec(i, 1, 6, 0));
        }
        let out = run_cluster(quiet(4), jobs, SimDuration::from_days(2));
        assert_eq!(out.completed_jobs().count(), 4, "{:?}", out.totals);
    }

    #[test]
    fn owner_on_any_member_suspends_the_whole_gang() {
        // Stormy owners: the width-3 gang will be interrupted repeatedly
        // but must finish with exact work accounting.
        let out = run_cluster(stormy(6), vec![gang_spec(0, 3, 10, 0)], SimDuration::from_days(20));
        let j = &out.jobs[0];
        assert_eq!(j.state, JobState::Completed, "{:?}", out.totals);
        assert_eq!(j.work_done, j.spec.demand);
        assert_eq!(j.work_lost, SimDuration::ZERO, "grace checkpointing never loses work");
        assert!(
            out.totals.preemptions_owner > 0,
            "storms must interrupt: {:?}",
            out.totals
        );
        // Gross consumption covers width × net work.
        assert!(j.remote_cpu >= j.work_done * 3);
    }

    #[test]
    fn gang_eviction_moves_all_members() {
        let out = run_cluster(stormy(8), vec![gang_spec(0, 4, 12, 0)], SimDuration::from_days(20));
        let j = &out.jobs[0];
        assert_eq!(j.state, JobState::Completed, "{:?}", out.totals);
        if j.checkpoints > 0 {
            // Each gang migration ships width images home.
            let ckpt_transfers = out
                .trace
                .count(|k| matches!(k, TraceKind::CheckpointCompleted { .. }));
            assert_eq!(ckpt_transfers as u32, j.checkpoints * 4);
        }
    }

    #[test]
    fn gang_survives_member_crash() {
        let cfg = ClusterConfig {
            failures: Some(crate::config::FailureConfig {
                mtbf: SimDuration::from_hours(30),
                mttr: SimDuration::from_hours(1),
            }),
            ..quiet(6)
        };
        let out = run_cluster(cfg, vec![gang_spec(0, 3, 12, 0)], SimDuration::from_days(25));
        let j = &out.jobs[0];
        assert_eq!(j.state, JobState::Completed, "{:?}", out.totals);
        assert_eq!(j.work_done, j.spec.demand);
        if out.totals.crash_rollbacks > 0 {
            assert!(j.remote_cpu > j.spec.demand * 3, "redone work shows in gross ledger");
        }
    }

    #[test]
    fn no_station_hosts_two_jobs_even_with_gangs() {
        // Mixed gang + single workload under storms; replay residency.
        let mut jobs = vec![gang_spec(0, 3, 5, 0), gang_spec(1, 2, 4, 2)];
        for i in 2..8 {
            jobs.push(gang_spec(i, 1, 3, i));
        }
        let out = run_cluster(stormy(8), jobs, SimDuration::from_days(15));
        assert_eq!(out.completed_jobs().count(), 8, "{:?}", out.totals);
        // Replay per-station occupancy from placement/teardown events.
        use std::collections::HashMap;
        let mut resident: HashMap<u32, JobId> = HashMap::new();
        for ev in out.trace.events() {
            match ev.kind {
                TraceKind::PlacementStarted { job, target } => {
                    if let Some(&other) = resident.get(&target.index()) {
                        panic!("{target} got {job} while holding {other} at {}", ev.at);
                    }
                    resident.insert(target.index(), job);
                }
                TraceKind::CheckpointCompleted { job, from, .. } => {
                    assert_eq!(resident.remove(&from.index()), Some(job));
                }
                TraceKind::CrashRollback { job, on } => {
                    // Crash frees every member of that job wherever it is.
                    resident.retain(|_, r| *r != job);
                    let _ = on;
                }
                TraceKind::JobCompleted { job, .. } => {
                    resident.retain(|_, r| *r != job);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn priority_preemption_vacates_whole_gang() {
        // Saturate 4 machines with a width-4 gang from a heavy home, then
        // a light home requests: Up-Down preempts, freeing all 4.
        let mut jobs = vec![gang_spec(0, 4, 300, 0)];
        jobs.push(JobSpec {
            id: JobId(1),
            user: UserId(1),
            home: NodeId::new(1),
            arrival: SimTime::from_hours(24),
            demand: SimDuration::HOUR,
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 0.5,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        });
        let out = run_cluster(quiet(4), jobs, SimDuration::from_days(4));
        assert_eq!(out.jobs[1].state, JobState::Completed, "{:?}", out.totals);
        assert!(out.totals.preemptions_priority > 0, "{:?}", out.totals);
        // The gang's coordinated eviction shipped 4 images at once.
        let evicted_images = out
            .trace
            .count(|k| matches!(k, TraceKind::CheckpointStarted { .. }));
        assert!(evicted_images >= 4, "{evicted_images}");
    }

    #[test]
    #[should_panic(expected = "needs 5 machines but the fleet has 4")]
    fn oversized_gang_rejected() {
        let _ = Cluster::new(quiet(4), vec![gang_spec(0, 5, 1, 0)]);
    }
}
