//! Jobs: specifications, lifecycle state, and per-job accounting.
//!
//! A Condor job is a long-running, non-interactive background computation
//! submitted at a *home* workstation. The job's whole life — queueing,
//! placement, execution, suspension, checkpointed migration, completion —
//! is tracked here, together with the ledgers behind the paper's
//! evaluation: wait ratio (Fig. 4), checkpoint rate (Fig. 8), and leverage
//! (Fig. 9).

use condor_model::station::{Arch, ArchSet, ResourceVec};
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};

/// Identifies a job; dense indices into the cluster's job table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Identifies the submitting user (the paper's users A–E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Users print as letters where possible, matching the paper.
        if self.0 < 26 {
            write!(f, "{}", (b'A' + self.0 as u8) as char)
        } else {
            write!(f, "U{}", self.0)
        }
    }
}

/// How a job's execution rate responds to the CPU fraction it is granted.
///
/// The legacy model is linear: a job granted `c` milli-CPUs progresses at
/// `c/1000` of reference speed. Real workloads deviate — I/O-bound jobs
/// saturate (extra CPU buys little), memory-thrashing jobs collapse below
/// a threshold — and the replication/checkpointing experiments need those
/// shapes to price speculative copies honestly. Every curve maps a whole
/// grant (1000 milli) to exactly 1000, so whole-machine runs — the 1988
/// default — are bit-identical whatever the curve says below 1000.
///
/// Arithmetic is pure integer math, keeping runs deterministic across
/// platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpeedupCurve {
    /// Rate is proportional to the grant (the legacy model).
    #[default]
    Linear,
    /// The job reaches full speed at `knee_milli` already: rate climbs
    /// with slope `1000/knee` and saturates at reference speed. I/O-bound
    /// jobs, which cannot use a whole CPU to begin with.
    Saturating {
        /// The grant (milli-CPUs) at which the job hits full speed.
        knee_milli: u32,
    },
    /// Rate collapses quadratically below a whole grant (`(c/1000)²`):
    /// a half-machine share runs at a quarter speed. Working sets that
    /// thrash when squeezed.
    Thrashing,
}

impl SpeedupCurve {
    /// Effective execution rate (milli-units of reference speed) for a
    /// grant of `granted_milli` CPU. Always `1000` for a whole grant.
    pub fn effective_milli(self, granted_milli: u32) -> u32 {
        let c = granted_milli.min(1000);
        match self {
            SpeedupCurve::Linear => c,
            SpeedupCurve::Saturating { knee_milli } => {
                let knee = u64::from(knee_milli.clamp(1, 1000));
                (u64::from(c) * 1000 / knee).min(1000) as u32
            }
            SpeedupCurve::Thrashing => (u64::from(c) * u64::from(c) / 1000) as u32,
        }
    }
}

/// Immutable description of a submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The job's identity.
    pub id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Workstation the job was submitted from; its shadow runs here and its
    /// checkpoint files live on this station's disk.
    pub home: NodeId,
    /// Submission instant.
    pub arrival: SimTime,
    /// Total CPU demand on the reference workstation.
    pub demand: SimDuration,
    /// Size of the executable/checkpoint image in bytes (the paper's
    /// average was ~0.5 MB).
    pub image_bytes: u64,
    /// System calls issued per CPU-second of execution; each costs the home
    /// workstation ~10 ms of shadow CPU. Drives the leverage spread of
    /// Fig. 9.
    pub syscalls_per_cpu_sec: f64,
    /// Architectures the job has binaries for (paper §5(4)). Default:
    /// VAX-only, the 1988 fleet.
    pub binaries: ArchSet,
    /// Jobs that must complete before this one may be placed (paper §5(2)
    /// asks for `fork`/`exec`/`pipe`; dependency DAGs are the batch-world
    /// realisation of process pipelines — the idea that later became
    /// HTCondor's DAGMan). Must reference lower job ids (ids are
    /// arrival-ordered, so the graph is acyclic by construction).
    pub depends_on: Vec<JobId>,
    /// Machines the job needs *simultaneously* (paper §5(2)'s parallel
    /// programs: a job of width k is a gang of k communicating processes).
    /// A gang runs only while every member's machine is idle; if any owner
    /// returns, the whole gang suspends, and evictions checkpoint all
    /// members as a coordinated cut (the §2.3 quiescence rule writ large).
    /// Width 1 — the 1988 reality — is the default.
    pub width: u32,
    /// How execution rate responds to a fractional CPU grant. The default,
    /// [`SpeedupCurve::Linear`], reproduces the legacy model exactly;
    /// whole-machine grants run at reference speed under every curve.
    pub speedup: SpeedupCurve,
    /// Resource demand per machine the job occupies, in milli-units.
    /// Defaults to [`ResourceVec::WHOLE`] (full CPU + memory, no tag),
    /// which reproduces the legacy single-occupancy model exactly. A job
    /// demanding less than a whole CPU runs at fractionally scaled speed
    /// and can share its station with other sub-whole residents. Gangs
    /// (`width > 1`) must demand whole machines.
    pub resources: ResourceVec,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Arrived, but waiting for dependencies to complete before entering
    /// the background queue.
    Held,
    /// Waiting in the home station's background queue.
    Queued,
    /// Image in transit to a remote station.
    Placing {
        /// Destination station.
        target: NodeId,
    },
    /// Executing at a remote station.
    Running {
        /// Hosting station.
        on: NodeId,
    },
    /// Stopped at the remote station because the owner returned; waiting
    /// out the grace period in case the owner leaves again.
    Suspended {
        /// Hosting station.
        on: NodeId,
    },
    /// Checkpoint image in transit back to the home station.
    CheckpointingOut {
        /// Station being vacated.
        from: NodeId,
    },
    /// All demand delivered.
    Completed,
    /// Handed to another pool at a synchronisation barrier (sharded runs
    /// only, see `condor_core::shard`); this record is a stub — the
    /// adopting pool carries the job from here on.
    Forwarded,
}

impl JobState {
    /// The station currently holding the job's image remotely, if any.
    pub fn remote_station(self) -> Option<NodeId> {
        match self {
            JobState::Placing { target } => Some(target),
            JobState::Running { on } | JobState::Suspended { on } => Some(on),
            JobState::CheckpointingOut { from } => Some(from),
            JobState::Held | JobState::Queued | JobState::Completed | JobState::Forwarded => None,
        }
    }

    /// `true` while the job occupies a slot in the system (arrived, not
    /// completed) — the paper counts jobs in service as part of the queue.
    /// A forwarded stub left its pool's system entirely.
    pub fn in_system(self) -> bool {
        !matches!(self, JobState::Completed | JobState::Forwarded)
    }
}

/// Why a running job was taken off its host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptReason {
    /// The station's owner resumed activity.
    OwnerReturned,
    /// The coordinator reassigned the capacity to a higher-priority station
    /// (Up-Down preemption).
    PriorityPreemption,
    /// The hosting station failed or shut down.
    StationFailure,
}

impl std::fmt::Display for PreemptReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PreemptReason::OwnerReturned => "owner returned",
            PreemptReason::PriorityPreemption => "priority preemption",
            PreemptReason::StationFailure => "station failure",
        };
        f.write_str(s)
    }
}

/// A job plus all of its runtime state and accounting.
#[derive(Debug, Clone)]
pub struct Job {
    /// The immutable specification.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Reference-CPU work completed and *safe* (checkpointed or accrued
    /// under a strategy that cannot lose it).
    pub work_done: SimDuration,
    /// Work level captured by the most recent checkpoint; under the
    /// immediate-kill strategy, a kill reverts `work_done` to this.
    pub work_checkpointed: SimDuration,
    /// When the current run segment started (valid in `Running`).
    pub running_since: SimTime,
    /// Completion instant, once completed.
    pub completed_at: Option<SimTime>,
    /// Remote CPU consumed over the job's life, *including* work that was
    /// later lost and redone (the paper's leverage numerator).
    pub remote_cpu: SimDuration,
    /// Local CPU consumed on the home station to support remote execution:
    /// placements, checkpoints, and shadow system calls (the leverage
    /// denominator). Microsecond units for sub-ms syscall precision.
    pub support_us: u64,
    /// Number of initial + migratory placements performed.
    pub placements: u32,
    /// Number of checkpoint migrations after the initial placement (the
    /// Fig. 8 numerator).
    pub checkpoints: u32,
    /// Work lost to kills without checkpoint.
    pub work_lost: SimDuration,
    /// Run-segment generation counter; bumps every time the job starts
    /// executing, so stale deferred events (periodic checkpoints) from an
    /// earlier segment can be recognised and dropped.
    pub epoch: u32,
    /// `true` if the job was refused at submission (home disk full).
    pub rejected: bool,
    /// Monotonic counter of image transfers started for this job
    /// (placements and checkpoint-outs). Transfer-completion events carry
    /// the sequence they belong to, so completions of transfers that died
    /// with a crashed station are recognised as stale and dropped.
    pub transfer_seq: u32,
    /// Once the job has executed on an architecture, its progress is bound
    /// to it: checkpoints are native images, so moving to the other
    /// architecture would lose all work (paper §5(4)). Placements respect
    /// this binding.
    pub bound_arch: Option<Arch>,
    /// `true` if this pool received the job from another pool at a
    /// synchronisation barrier (sharded runs only). Adopted jobs announce
    /// themselves with `JobAdopted` instead of `JobArrived`.
    pub adopted: bool,
}

impl Job {
    /// Wraps a spec in its initial (queued) state.
    pub fn new(spec: JobSpec) -> Self {
        Job {
            spec,
            state: JobState::Queued,
            work_done: SimDuration::ZERO,
            work_checkpointed: SimDuration::ZERO,
            running_since: SimTime::ZERO,
            completed_at: None,
            remote_cpu: SimDuration::ZERO,
            support_us: 0,
            placements: 0,
            checkpoints: 0,
            work_lost: SimDuration::ZERO,
            epoch: 0,
            rejected: false,
            transfer_seq: 0,
            bound_arch: None,
            adopted: false,
        }
    }

    /// Whether the job may be placed on a station of `arch`: it needs a
    /// binary for it, and must not already be bound to the other
    /// architecture by checkpointed progress.
    pub fn can_run_on(&self, arch: Arch) -> bool {
        self.spec.binaries.supports(arch) && self.bound_arch.is_none_or(|b| b == arch)
    }

    /// Work still owed.
    pub fn remaining(&self) -> SimDuration {
        self.spec.demand.saturating_sub(self.work_done)
    }

    /// `true` once all demand is delivered.
    pub fn is_complete(&self) -> bool {
        self.work_done >= self.spec.demand
    }

    /// Accrues a run segment of `wall` duration ending now: counts toward
    /// both `work_done` and the gross `remote_cpu` ledger, and charges the
    /// shadow's system-call support cost for the segment. A gang of width
    /// k advances `work_done` at wall rate but consumes k machines' worth
    /// of capacity.
    pub fn accrue_run(&mut self, wall: SimDuration, remote_syscall_cost_us: u64) {
        self.work_done += wall;
        self.remote_cpu += wall * u64::from(self.spec.width.max(1));
        let calls =
            self.spec.syscalls_per_cpu_sec * wall.as_secs_f64() * f64::from(self.spec.width.max(1));
        self.support_us += (calls * remote_syscall_cost_us as f64).round() as u64;
    }

    /// Charges the home workstation for one image move (placement or
    /// checkpoint) of the job's image.
    pub fn charge_transfer(&mut self, cpu: SimDuration) {
        self.support_us += cpu.as_millis() * 1_000;
    }

    /// Reverts un-checkpointed work after a kill, recording the loss.
    pub fn revert_to_checkpoint(&mut self) {
        let lost = self.work_done.saturating_sub(self.work_checkpointed);
        self.work_lost += lost;
        self.work_done = self.work_checkpointed;
    }

    /// Marks the current work level as safely checkpointed.
    pub fn mark_checkpointed(&mut self) {
        self.work_checkpointed = self.work_done;
    }

    /// Turnaround time (arrival → completion), if completed.
    pub fn turnaround(&self) -> Option<SimDuration> {
        self.completed_at.map(|t| t.since(self.spec.arrival))
    }

    /// The paper's **wait ratio**: time waiting for service divided by
    /// service time. Waiting = turnaround − service demand. `None` until
    /// the job completes.
    pub fn wait_ratio(&self) -> Option<f64> {
        let turnaround = self.turnaround()?;
        let service = self.spec.demand;
        if service.is_zero() {
            return None;
        }
        let wait = turnaround.saturating_sub(service);
        Some(wait.as_secs_f64() / service.as_secs_f64())
    }

    /// The paper's **leverage**: remote capacity consumed divided by local
    /// capacity spent supporting it. `None` when no support was charged
    /// (nothing ran remotely yet).
    pub fn leverage(&self) -> Option<f64> {
        if self.support_us == 0 {
            return None;
        }
        let remote_us = self.remote_cpu.as_millis() as f64 * 1_000.0;
        Some(remote_us / self.support_us as f64)
    }

    /// Checkpoint migrations per hour of service demand (Fig. 8's y-axis).
    pub fn checkpoint_rate_per_hour(&self) -> f64 {
        let hours = self.spec.demand.as_hours_f64();
        if hours <= 0.0 {
            return 0.0;
        }
        f64::from(self.checkpoints) / hours
    }

    /// Local support in seconds (for reporting).
    pub fn support_seconds(&self) -> f64 {
        self.support_us as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(demand_hours: u64) -> JobSpec {
        JobSpec {
            id: JobId(1),
            user: UserId(0),
            home: NodeId::new(0),
            arrival: SimTime::from_hours(1),
            demand: SimDuration::from_hours(demand_hours),
            image_bytes: 500_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        }
    }

    #[test]
    fn ids_display_like_the_paper() {
        assert_eq!(UserId(0).to_string(), "A");
        assert_eq!(UserId(4).to_string(), "E");
        assert_eq!(UserId(30).to_string(), "U30");
        assert_eq!(JobId(7).to_string(), "job7");
    }

    #[test]
    fn fresh_job_is_queued_with_full_remaining() {
        let j = Job::new(spec(6));
        assert_eq!(j.state, JobState::Queued);
        assert_eq!(j.remaining(), SimDuration::from_hours(6));
        assert!(!j.is_complete());
        assert_eq!(j.wait_ratio(), None);
        assert_eq!(j.leverage(), None);
    }

    #[test]
    fn accrue_run_tracks_work_and_syscall_support() {
        let mut j = Job::new(spec(2));
        // 1 hour at 1 syscall/cpu-sec → 3600 calls × 10 000 µs = 36 s.
        j.accrue_run(SimDuration::HOUR, 10_000);
        assert_eq!(j.work_done, SimDuration::HOUR);
        assert_eq!(j.remote_cpu, SimDuration::HOUR);
        assert_eq!(j.support_us, 3_600 * 10_000);
        assert_eq!(j.remaining(), SimDuration::HOUR);
    }

    #[test]
    fn transfer_charges_add_up() {
        let mut j = Job::new(spec(2));
        j.charge_transfer(SimDuration::from_millis(2_500));
        j.charge_transfer(SimDuration::from_millis(2_500));
        assert_eq!(j.support_seconds(), 5.0);
    }

    #[test]
    fn leverage_matches_paper_arithmetic() {
        // Paper: ~1 minute of local support buys ~22 hours of remote CPU at
        // leverage ≈ 1300.
        let mut j = Job::new(spec(22));
        j.accrue_run(SimDuration::from_hours(22), 0); // no syscalls
        j.charge_transfer(SimDuration::from_secs(60));
        let lev = j.leverage().unwrap();
        assert!((lev - 1_320.0).abs() < 1.0, "leverage {lev}");
    }

    #[test]
    fn wait_ratio_zero_when_served_immediately() {
        let mut j = Job::new(spec(4));
        j.completed_at = Some(j.spec.arrival + SimDuration::from_hours(4));
        assert_eq!(j.wait_ratio(), Some(0.0));
    }

    #[test]
    fn wait_ratio_counts_queueing() {
        let mut j = Job::new(spec(2));
        // Took 6 h wall for 2 h of work → waited 4 h → ratio 2.
        j.completed_at = Some(j.spec.arrival + SimDuration::from_hours(6));
        assert_eq!(j.wait_ratio(), Some(2.0));
        assert_eq!(j.turnaround(), Some(SimDuration::from_hours(6)));
    }

    #[test]
    fn revert_loses_unsaved_work_only() {
        let mut j = Job::new(spec(10));
        j.accrue_run(SimDuration::from_hours(3), 0);
        j.mark_checkpointed();
        j.accrue_run(SimDuration::from_hours(2), 0);
        j.revert_to_checkpoint();
        assert_eq!(j.work_done, SimDuration::from_hours(3));
        assert_eq!(j.work_lost, SimDuration::from_hours(2));
        // Gross remote consumption keeps the lost segment.
        assert_eq!(j.remote_cpu, SimDuration::from_hours(5));
    }

    #[test]
    fn checkpoint_rate_per_demand_hour() {
        let mut j = Job::new(spec(4));
        j.checkpoints = 2;
        assert_eq!(j.checkpoint_rate_per_hour(), 0.5);
    }

    #[test]
    fn completion_detection() {
        let mut j = Job::new(spec(1));
        j.accrue_run(SimDuration::from_minutes(59), 0);
        assert!(!j.is_complete());
        j.accrue_run(SimDuration::from_minutes(1), 0);
        assert!(j.is_complete());
        assert_eq!(j.remaining(), SimDuration::ZERO);
    }

    #[test]
    fn state_helpers() {
        assert_eq!(
            JobState::Running { on: NodeId::new(3) }.remote_station(),
            Some(NodeId::new(3))
        );
        assert_eq!(JobState::Queued.remote_station(), None);
        assert!(JobState::Queued.in_system());
        assert!(!JobState::Completed.in_system());
        assert_eq!(
            JobState::CheckpointingOut { from: NodeId::new(1) }.remote_station(),
            Some(NodeId::new(1))
        );
    }

    #[test]
    fn preempt_reason_display() {
        assert_eq!(PreemptReason::OwnerReturned.to_string(), "owner returned");
        assert_eq!(
            PreemptReason::PriorityPreemption.to_string(),
            "priority preemption"
        );
    }

    #[test]
    fn every_speedup_curve_is_identity_at_a_whole_grant() {
        for curve in [
            SpeedupCurve::Linear,
            SpeedupCurve::Saturating { knee_milli: 1 },
            SpeedupCurve::Saturating { knee_milli: 400 },
            SpeedupCurve::Saturating { knee_milli: 1000 },
            SpeedupCurve::Thrashing,
        ] {
            assert_eq!(curve.effective_milli(1000), 1000, "{curve:?}");
            // Over-grants clamp rather than over-speed.
            assert_eq!(curve.effective_milli(1500), 1000, "{curve:?}");
        }
    }

    #[test]
    fn speedup_curves_shape_fractional_grants() {
        // Linear: proportional.
        assert_eq!(SpeedupCurve::Linear.effective_milli(250), 250);
        // Saturating with knee 400: full speed from 400 up, linear below.
        let sat = SpeedupCurve::Saturating { knee_milli: 400 };
        assert_eq!(sat.effective_milli(400), 1000);
        assert_eq!(sat.effective_milli(700), 1000);
        assert_eq!(sat.effective_milli(200), 500);
        // Thrashing: quadratic collapse — half the CPU, a quarter the speed.
        assert_eq!(SpeedupCurve::Thrashing.effective_milli(500), 250);
        assert_eq!(SpeedupCurve::Thrashing.effective_milli(0), 0);
    }

    #[test]
    fn speedup_curves_are_monotone_in_the_grant() {
        for curve in [
            SpeedupCurve::Linear,
            SpeedupCurve::Saturating { knee_milli: 300 },
            SpeedupCurve::Thrashing,
        ] {
            let mut prev = 0;
            for c in (0..=1000).step_by(50) {
                let eff = curve.effective_milli(c);
                assert!(eff >= prev, "{curve:?} dipped at {c}");
                prev = eff;
            }
        }
    }
}
