//! The Up-Down algorithm (Mutka & Livny 1987; paper §2.4).
//!
//! The coordinator keeps a **schedule index** per workstation. The index
//! goes *up* while the station consumes remote capacity and *down* while it
//! waits for capacity it was denied; stations with **lower** index have
//! higher priority. The effect is the paper's headline fairness result:
//! heavy users keep steady access to leftover capacity, but can never lock
//! light users out — a light user's index is near zero (or negative), so
//! its occasional batches are served immediately, preempting the heavy
//! user if necessary.
//!
//! Parametrisation (our reconstruction; the 1987 paper gives the scheme,
//! not the constants):
//!
//! * `up_per_machine` — index increase per poll per remote machine in use;
//! * `down_when_denied` — index decrease per poll while the station has
//!   waiting jobs that were not granted capacity;
//! * `idle_drift` — pull toward zero per poll when the station neither
//!   uses nor wants capacity, so history fades and a reformed heavy user
//!   is not punished forever;
//! * `preemption_margin` — how much *lower* a requester's index must be
//!   than a consumer's before the consumer's job is preempted, adding
//!   hysteresis so near-equals do not thrash.

use condor_net::NodeId;
use condor_sim::time::SimTime;

use crate::policy::{AllocationPolicy, Order, PollInput};

/// Tunables of the Up-Down algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpDownConfig {
    /// Index increase per poll per machine of remote capacity in use.
    pub up_per_machine: f64,
    /// Index decrease per poll while demand goes unmet.
    pub down_when_denied: f64,
    /// Magnitude of the per-poll pull toward zero when inactive.
    pub idle_drift: f64,
    /// Required index gap before preempting a running consumer.
    pub preemption_margin: f64,
    /// Maximum preemptions issued per poll (capacity freed by a preemption
    /// is only assignable at a later poll, after the checkpoint completes).
    pub max_preemptions_per_poll: usize,
}

impl Default for UpDownConfig {
    fn default() -> Self {
        UpDownConfig {
            up_per_machine: 1.0,
            down_when_denied: 1.0,
            idle_drift: 0.25,
            preemption_margin: 2.0,
            max_preemptions_per_poll: 1,
        }
    }
}

/// The Up-Down allocation policy.
///
/// # Examples
///
/// ```
/// use condor_core::updown::{UpDown, UpDownConfig};
/// use condor_core::policy::AllocationPolicy;
///
/// let policy = UpDown::new(UpDownConfig::default());
/// assert_eq!(policy.name(), "up-down");
/// ```
#[derive(Debug)]
pub struct UpDown {
    config: UpDownConfig,
    /// Sparse schedule index as a sorted `(station, index)` vector:
    /// stations at exactly zero carry no entry, so per-poll bookkeeping
    /// scales with the *active* stations rather than the fleet, and entry
    /// count is self-limiting — idle drift compacts every entry back to
    /// zero within `|index| / idle_drift` polls of going quiet. The flat
    /// sorted layout (vs. the previous `BTreeMap`) keeps the per-poll
    /// drift-and-compact walk a single linear merge over contiguous
    /// memory, which is what lets a 100k-station fleet's index stay cheap
    /// even when tens of thousands of entries are briefly live.
    index: Vec<(NodeId, f64)>,
    // Scratch buffers reused across polls (taken out with `mem::take` for
    // the duration of a `decide`, then put back).
    scratch_requesters: Vec<(f64, NodeId, usize)>,
    scratch_used: Vec<(NodeId, usize)>,
    scratch_granted: Vec<(NodeId, usize)>,
    scratch_free: Vec<NodeId>,
    scratch_victims: Vec<(f64, NodeId, NodeId)>,
    scratch_active: Vec<(NodeId, usize, usize)>,
    /// Double buffer for the index merge pass.
    scratch_index: Vec<(NodeId, f64)>,
}

/// Sorted-vec counter map: the key sets here (active homes within one
/// poll) are tiny, so binary search beats hashing.
fn bump(map: &mut Vec<(NodeId, usize)>, key: NodeId, by: usize) {
    match map.binary_search_by_key(&key, |e| e.0) {
        Ok(i) => map[i].1 += by,
        Err(i) => map.insert(i, (key, by)),
    }
}

fn lookup(map: &[(NodeId, usize)], key: NodeId) -> usize {
    map.binary_search_by_key(&key, |e| e.0)
        .map(|i| map[i].1)
        .unwrap_or(0)
}

impl UpDown {
    /// Creates the policy with all indices at zero.
    pub fn new(config: UpDownConfig) -> Self {
        assert!(config.up_per_machine >= 0.0, "negative up rate");
        assert!(config.down_when_denied >= 0.0, "negative down rate");
        assert!(config.idle_drift >= 0.0, "negative drift");
        UpDown {
            config,
            index: Vec::new(),
            scratch_requesters: Vec::new(),
            scratch_used: Vec::new(),
            scratch_granted: Vec::new(),
            scratch_free: Vec::new(),
            scratch_victims: Vec::new(),
            scratch_active: Vec::new(),
            scratch_index: Vec::new(),
        }
    }

    /// The current schedule index of a station (zero if never seen).
    pub fn index_of(&self, node: NodeId) -> f64 {
        self.index
            .binary_search_by_key(&node, |e| e.0)
            .map(|i| self.index[i].1)
            .unwrap_or(0.0)
    }

    /// Sum of all station indices. Stations at zero carry no entry and
    /// contribute nothing, which leaves an IEEE-754 sum bit-identical to
    /// summing `index_of` over every station in id order (zero terms never
    /// change a running sum, and the sum can never sit at `-0.0`).
    pub fn index_sum(&self) -> f64 {
        self.index.iter().map(|e| e.1).sum()
    }

    /// The configuration in force.
    pub fn config(&self) -> &UpDownConfig {
        &self.config
    }

    fn drift_toward_zero(value: f64, drift: f64) -> f64 {
        if value > 0.0 {
            (value - drift).max(0.0)
        } else {
            (value + drift).min(0.0)
        }
    }
}

/// Per-node accumulator for the index-update pass: `(node, machines used,
/// jobs waiting)`. Kept sorted by node.
fn merge_active(active: &mut Vec<(NodeId, usize, usize)>, node: NodeId, used: usize, waiting: usize) {
    match active.binary_search_by_key(&node, |e| e.0) {
        Ok(i) => {
            active[i].1 += used;
            active[i].2 += waiting;
        }
        Err(i) => active.insert(i, (node, used, waiting)),
    }
}

impl AllocationPolicy for UpDown {
    fn name(&self) -> &'static str {
        "up-down"
    }

    /// With no requesters and no hosts, a `decide` issues no orders and
    /// the index pass reduces to pure idle drift — a no-op exactly when
    /// the index is already empty.
    fn quiescent(&self) -> bool {
        self.index.is_empty()
    }

    fn decide(&mut self, _now: SimTime, input: &PollInput<'_>) -> Vec<Order> {
        // Every pass below walks the pre-extracted requester/host sets, so
        // a poll costs O(active stations), not O(fleet). Scratch buffers
        // are taken out of `self` for the borrow and restored at the end.
        let mut requesters = std::mem::take(&mut self.scratch_requesters);
        let mut used_map = std::mem::take(&mut self.scratch_used);
        let mut granted = std::mem::take(&mut self.scratch_granted);
        let mut free = std::mem::take(&mut self.scratch_free);
        let mut victims = std::mem::take(&mut self.scratch_victims);
        requesters.clear();
        used_map.clear();
        granted.clear();
        free.clear();
        victims.clear();

        // 1. How many remote machines does each home currently use?
        for &h in input.hosts {
            let home = input.views[h.as_usize()]
                .hosting_for
                .expect("host set contains only hosting stations");
            bump(&mut used_map, home, 1);
        }

        // 2. Requesters sorted by (index, node id) — lowest index wins.
        //    Both the requester set and the index are in ascending id
        //    order, so one co-walk annotates every requester with its
        //    index — no per-requester binary search. The same pass seeds
        //    the step-6 `active` accumulator (pure appends while ids
        //    ascend), saving a second scattered read of the views later.
        let mut active: Vec<(NodeId, usize, usize)> = std::mem::take(&mut self.scratch_active);
        active.clear();
        {
            let mut ix = 0usize;
            for &r in input.requesters {
                while ix < self.index.len() && self.index[ix].0 < r {
                    ix += 1;
                }
                let idx = if ix < self.index.len() && self.index[ix].0 == r {
                    self.index[ix].1
                } else {
                    0.0
                };
                let waiting = input.views[r.as_usize()].waiting_jobs;
                requesters.push((idx, r, waiting));
                active.push((r, 0, waiting));
            }
        }
        // Steps 4 and 5 below read the priority order only up to a provable
        // prefix: the grant pass serves at most `max_placements` distinct
        // requesters (round one hands each unmet requester one machine
        // until the budget is gone), and the preemption pass visits at most
        // one requester per satisfied grantee or issued preemption before
        // breaking. Selecting and sorting just that prefix is therefore
        // order-identical to a full sort — and O(r) instead of O(r log r)
        // on a backlogged fleet. Distinct station ids make `(index, id)` a
        // total order with no equal elements, so the unstable select/sort
        // pair is deterministic.
        let need = input
            .max_placements
            .saturating_add(self.config.max_preemptions_per_poll)
            .saturating_add(1);
        let cmp = |a: &(f64, NodeId, usize), b: &(f64, NodeId, usize)| {
            a.0.partial_cmp(&b.0).expect("no NaN index").then(a.1.cmp(&b.1))
        };
        if requesters.len() > need {
            requesters.select_nth_unstable_by(need - 1, cmp);
            requesters.truncate(need);
        }
        requesters.sort_unstable_by(cmp);

        // 3. Free machines in the cluster's preference order (history-aware
        //    placement reorders this list before the call).
        free.extend_from_slice(input.free);
        free.reverse();

        // 4. Grant machines round-robin across requesters in priority
        //    order, one per round, until machines or budget run out.
        let mut orders = Vec::new();
        let mut progress = true;
        while progress && orders.len() < input.max_placements && !free.is_empty() {
            progress = false;
            for &(_, home, demand) in &requesters {
                if orders.len() >= input.max_placements || free.is_empty() {
                    break;
                }
                if lookup(&granted, home) < demand {
                    let target = free.pop().expect("checked non-empty");
                    orders.push(Order::Assign { home, target });
                    bump(&mut granted, home, 1);
                    progress = true;
                }
            }
        }

        // 5. Preemption: requesters that remain unsatisfied with no free
        //    machines may claim capacity from consumers whose index exceeds
        //    theirs by the margin. Victim = running job whose *home* has
        //    the highest index. "No free machines" is judged against the
        //    whole hostable set, not the (possibly budget-truncated)
        //    `free` prefix: every order so far is an assign consuming one
        //    machine, so the fleet is exhausted exactly when the assign
        //    count reaches `free_total`.
        let mut preemptions = 0usize;
        if input.free_total == orders.len() {
            for &h in input.hosts {
                let home = input.views[h.as_usize()]
                    .hosting_for
                    .expect("host set contains only hosting stations");
                victims.push((self.index_of(home), home, h));
            }
            // Highest-index consumer first; ties broken by target id so the
            // choice is deterministic.
            victims.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN").then(a.2.cmp(&b.2)));
            let mut victim_iter = victims.iter().copied();
            for &(req_idx, req_home, demand) in &requesters {
                if preemptions >= self.config.max_preemptions_per_poll {
                    break;
                }
                if lookup(&granted, req_home) >= demand {
                    continue;
                }
                // Find the next victim not belonging to the requester
                // itself and exceeding the margin. Under fractional
                // capacities a station can be hosting *and* still
                // hostable, so a machine already claimed by an assign
                // this poll is off the victim list — one order per
                // target.
                let victim = victim_iter
                    .by_ref()
                    .find(|&(v_idx, v_home, target)| {
                        v_home != req_home
                            && v_idx > req_idx + self.config.preemption_margin
                            && !orders.iter().any(|o| {
                                matches!(o, Order::Assign { target: t, .. } if *t == target)
                            })
                    });
                match victim {
                    Some((_, _, target)) => {
                        orders.push(Order::Preempt { target });
                        preemptions += 1;
                    }
                    None => break, // victims are sorted; nobody further qualifies
                }
            }
        }

        // 6. Index updates. Only stations that used capacity, got grants,
        //    or requested can move up or down; everyone else drifts toward
        //    zero, so only the sparse map's existing entries are walked and
        //    entries landing on zero are dropped. A station not listed here
        //    behaves exactly as if its (absent) zero entry had drifted.
        //    `active` was seeded with the requesters in step 2; fold in the
        //    (small) consumer and grant maps.
        for &(n, u) in &used_map {
            merge_active(&mut active, n, u, 0);
        }
        for &(n, g) in &granted {
            merge_active(&mut active, n, g, 0);
        }
        // One linear merge over the sorted index and the sorted active
        // list replaces the old per-entry map lookups: active entries are
        // bumped (starting from an implicit 0.0 when absent), inactive
        // entries drift toward zero, and entries landing exactly on zero
        // are compacted away. The per-node arithmetic is identical to the
        // previous entry/retain pair, so every surviving value — and the
        // id-ordered `index_sum` — stays bit-identical.
        let config = self.config;
        let bump_entry = |value: f64, used: usize, waiting: usize, granted_n: usize| -> f64 {
            let mut v = value;
            if used > 0 {
                v += config.up_per_machine * used as f64;
            }
            let unmet = waiting > granted_n;
            if unmet {
                v -= config.down_when_denied;
            }
            if used == 0 && !unmet {
                v = Self::drift_toward_zero(v, config.idle_drift);
            }
            v
        };
        let mut merged = std::mem::take(&mut self.scratch_index);
        merged.clear();
        let mut ai = 0usize;
        for &(node, value) in &self.index {
            while ai < active.len() && active[ai].0 < node {
                let (n, used, waiting) = active[ai];
                let v = bump_entry(0.0, used, waiting, lookup(&granted, n));
                if v != 0.0 {
                    merged.push((n, v));
                }
                ai += 1;
            }
            let v = if ai < active.len() && active[ai].0 == node {
                let (n, used, waiting) = active[ai];
                ai += 1;
                bump_entry(value, used, waiting, lookup(&granted, n))
            } else {
                Self::drift_toward_zero(value, config.idle_drift)
            };
            if v != 0.0 {
                merged.push((node, v));
            }
        }
        while ai < active.len() {
            let (n, used, waiting) = active[ai];
            let v = bump_entry(0.0, used, waiting, lookup(&granted, n));
            if v != 0.0 {
                merged.push((n, v));
            }
            ai += 1;
        }
        self.scratch_index = std::mem::replace(&mut self.index, merged);

        self.scratch_active = active;
        self.scratch_requesters = requesters;
        self.scratch_used = used_map;
        self.scratch_granted = granted;
        self.scratch_free = free;
        self.scratch_victims = victims;
        orders
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{decide_from_views, validate_orders, StationView};

    fn free_of(views: &[StationView]) -> Vec<NodeId> {
        views.iter().filter(|v| v.can_host).map(|v| v.node).collect()
    }

    fn views(spec: &[(bool, Option<u32>, usize)]) -> Vec<StationView> {
        spec.iter()
            .enumerate()
            .map(|(i, &(can_host, hosting, waiting))| StationView {
                node: NodeId::new(i as u32),
                can_host,
                free_cpu_milli: if can_host { 1000 } else { 0 },
                hosting_for: hosting.map(NodeId::new),
                waiting_jobs: waiting,
            })
            .collect()
    }

    #[test]
    fn indices_rise_with_usage_and_fall_with_denial() {
        let mut p = UpDown::new(UpDownConfig::default());
        // Station 0 hosts nothing but uses stations 1 and 2; station 3
        // wants capacity and is denied (no free machines).
        let v = views(&[
            (false, None, 0),
            (false, Some(0), 0),
            (false, Some(0), 0),
            (false, None, 2),
        ]);
        let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 1);
        // Preemption margin (2.0) not yet exceeded: index of 0 is 0 at
        // decision time.
        assert!(orders.is_empty());
        assert_eq!(p.index_of(NodeId::new(0)), 2.0); // two machines
        assert_eq!(p.index_of(NodeId::new(3)), -1.0); // denied
    }

    #[test]
    fn light_user_eventually_preempts_heavy_user() {
        let mut p = UpDown::new(UpDownConfig::default());
        // Heavy user = station 0, hogging both machines. Light user =
        // station 3, always denied. Eventually the gap exceeds the margin
        // and a preemption is ordered.
        let v = views(&[
            (false, None, 5),
            (false, Some(0), 0),
            (false, Some(0), 0),
            (false, None, 1),
        ]);
        let mut preempted_at = None;
        for poll in 0..10 {
            let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 1);
            validate_orders(&orders, &v).unwrap();
            if orders.iter().any(|o| matches!(o, Order::Preempt { .. })) {
                preempted_at = Some(poll);
                break;
            }
        }
        let poll = preempted_at.expect("light user must eventually preempt");
        assert!(poll >= 1, "margin must delay the first preemption");
        assert!(
            p.index_of(NodeId::new(0)) > p.index_of(NodeId::new(3)) + 2.0,
            "gap at preemption time"
        );
    }

    #[test]
    fn preemption_never_targets_requesters_own_jobs() {
        let mut p = UpDown::new(UpDownConfig {
            preemption_margin: 0.0,
            ..UpDownConfig::default()
        });
        // Station 0 both uses machines AND has more demand; it must not
        // preempt itself even though its own index is the highest.
        let v = views(&[
            (false, None, 5),
            (false, Some(0), 0),
            (false, Some(0), 0),
        ]);
        for _ in 0..5 {
            let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 1);
            assert!(
                orders.iter().all(|o| !matches!(o, Order::Preempt { .. })),
                "self-preemption ordered: {orders:?}"
            );
        }
    }

    #[test]
    fn equal_priorities_share_machines_round_robin() {
        let mut p = UpDown::new(UpDownConfig::default());
        let v = views(&[
            (false, None, 3),
            (false, None, 3),
            (true, None, 0),
            (true, None, 0),
        ]);
        let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 10);
        validate_orders(&orders, &v).unwrap();
        let homes: Vec<NodeId> = orders
            .iter()
            .filter_map(|o| match o {
                Order::Assign { home, .. } => Some(*home),
                _ => None,
            })
            .collect();
        assert_eq!(homes, vec![NodeId::new(0), NodeId::new(1)], "one each");
    }

    #[test]
    fn lower_index_station_is_served_first() {
        let mut p = UpDown::new(UpDownConfig::default());
        // Warm-up: station 0 consumes for 3 polls → high index.
        let warm = views(&[(false, None, 0), (false, Some(0), 0)]);
        for _ in 0..3 {
            decide_from_views(&mut p, SimTime::ZERO, &warm, &free_of(&warm), 1);
        }
        // Now both 0 and 2 want the single free machine.
        let v = views(&[
            (false, None, 2),
            (false, None, 0),
            (false, None, 2),
            (true, None, 0),
        ]);
        let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 1);
        assert_eq!(
            orders,
            vec![Order::Assign { home: NodeId::new(2), target: NodeId::new(3) }]
        );
    }

    #[test]
    fn idle_drift_pulls_indices_back_to_zero() {
        let mut p = UpDown::new(UpDownConfig::default());
        let consuming = views(&[(false, None, 0), (false, Some(0), 0)]);
        for _ in 0..4 {
            decide_from_views(&mut p, SimTime::ZERO, &consuming, &free_of(&consuming), 1);
        }
        let peak = p.index_of(NodeId::new(0));
        assert!(peak >= 4.0);
        // Station 0 stops using and wanting capacity.
        let quiet = views(&[(false, None, 0), (false, None, 0)]);
        for _ in 0..100 {
            decide_from_views(&mut p, SimTime::ZERO, &quiet, &free_of(&quiet), 1);
        }
        assert_eq!(p.index_of(NodeId::new(0)), 0.0, "history fades");
        // Negative indices drift up toward zero as well.
        let denied = views(&[(false, None, 1), (false, None, 0)]);
        decide_from_views(&mut p, SimTime::ZERO, &denied, &free_of(&denied), 0); // budget 0: denial guaranteed
        assert!(p.index_of(NodeId::new(0)) < 0.0);
        for _ in 0..100 {
            decide_from_views(&mut p, SimTime::ZERO, &quiet, &free_of(&quiet), 1);
        }
        assert_eq!(p.index_of(NodeId::new(0)), 0.0);
    }

    #[test]
    fn placement_budget_is_respected() {
        let mut p = UpDown::new(UpDownConfig::default());
        let v = views(&[
            (false, None, 4),
            (true, None, 0),
            (true, None, 0),
            (true, None, 0),
        ]);
        let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 1);
        assert_eq!(orders.len(), 1);
    }

    #[test]
    fn max_preemptions_per_poll_caps_evictions() {
        let mut p = UpDown::new(UpDownConfig {
            preemption_margin: 0.5,
            max_preemptions_per_poll: 1,
            ..UpDownConfig::default()
        });
        // Make station 0 heavy.
        let warm = views(&[
            (false, None, 0),
            (false, Some(0), 0),
            (false, Some(0), 0),
            (false, Some(0), 0),
        ]);
        for _ in 0..5 {
            decide_from_views(&mut p, SimTime::ZERO, &warm, &free_of(&warm), 1);
        }
        // Two light stations now demand; only one preemption per poll.
        let v = views(&[
            (false, None, 0),
            (false, Some(0), 0),
            (false, Some(0), 0),
            (false, Some(0), 0),
            (false, None, 1),
            (false, None, 1),
        ]);
        let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 1);
        let preempts = orders
            .iter()
            .filter(|o| matches!(o, Order::Preempt { .. }))
            .count();
        assert_eq!(preempts, 1);
    }

    #[test]
    fn decide_is_deterministic() {
        let run = || {
            let mut p = UpDown::new(UpDownConfig::default());
            let mut all = Vec::new();
            for i in 0..20u32 {
                let v = views(&[
                    (i % 3 == 0, None, (i % 4) as usize),
                    (false, (i % 2 == 0).then_some(0), 0),
                    (i % 5 == 0, None, 1),
                ]);
                all.push(decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 1));
            }
            all
        };
        assert_eq!(run(), run());
    }
}
