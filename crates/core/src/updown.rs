//! The Up-Down algorithm (Mutka & Livny 1987; paper §2.4).
//!
//! The coordinator keeps a **schedule index** per workstation. The index
//! goes *up* while the station consumes remote capacity and *down* while it
//! waits for capacity it was denied; stations with **lower** index have
//! higher priority. The effect is the paper's headline fairness result:
//! heavy users keep steady access to leftover capacity, but can never lock
//! light users out — a light user's index is near zero (or negative), so
//! its occasional batches are served immediately, preempting the heavy
//! user if necessary.
//!
//! Parametrisation (our reconstruction; the 1987 paper gives the scheme,
//! not the constants):
//!
//! * `up_per_machine` — index increase per poll per remote machine in use;
//! * `down_when_denied` — index decrease per poll while the station has
//!   waiting jobs that were not granted capacity;
//! * `idle_drift` — pull toward zero per poll when the station neither
//!   uses nor wants capacity, so history fades and a reformed heavy user
//!   is not punished forever;
//! * `preemption_margin` — how much *lower* a requester's index must be
//!   than a consumer's before the consumer's job is preempted, adding
//!   hysteresis so near-equals do not thrash.

use std::collections::HashMap;

use condor_net::NodeId;
use condor_sim::time::SimTime;

use crate::policy::{AllocationPolicy, Order, StationView};

/// Tunables of the Up-Down algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpDownConfig {
    /// Index increase per poll per machine of remote capacity in use.
    pub up_per_machine: f64,
    /// Index decrease per poll while demand goes unmet.
    pub down_when_denied: f64,
    /// Magnitude of the per-poll pull toward zero when inactive.
    pub idle_drift: f64,
    /// Required index gap before preempting a running consumer.
    pub preemption_margin: f64,
    /// Maximum preemptions issued per poll (capacity freed by a preemption
    /// is only assignable at a later poll, after the checkpoint completes).
    pub max_preemptions_per_poll: usize,
}

impl Default for UpDownConfig {
    fn default() -> Self {
        UpDownConfig {
            up_per_machine: 1.0,
            down_when_denied: 1.0,
            idle_drift: 0.25,
            preemption_margin: 2.0,
            max_preemptions_per_poll: 1,
        }
    }
}

/// The Up-Down allocation policy.
///
/// # Examples
///
/// ```
/// use condor_core::updown::{UpDown, UpDownConfig};
/// use condor_core::policy::AllocationPolicy;
///
/// let policy = UpDown::new(UpDownConfig::default());
/// assert_eq!(policy.name(), "up-down");
/// ```
#[derive(Debug)]
pub struct UpDown {
    config: UpDownConfig,
    index: HashMap<NodeId, f64>,
}

impl UpDown {
    /// Creates the policy with all indices at zero.
    pub fn new(config: UpDownConfig) -> Self {
        assert!(config.up_per_machine >= 0.0, "negative up rate");
        assert!(config.down_when_denied >= 0.0, "negative down rate");
        assert!(config.idle_drift >= 0.0, "negative drift");
        UpDown {
            config,
            index: HashMap::new(),
        }
    }

    /// The current schedule index of a station (zero if never seen).
    pub fn index_of(&self, node: NodeId) -> f64 {
        self.index.get(&node).copied().unwrap_or(0.0)
    }

    /// The configuration in force.
    pub fn config(&self) -> &UpDownConfig {
        &self.config
    }

    fn drift_toward_zero(value: f64, drift: f64) -> f64 {
        if value > 0.0 {
            (value - drift).max(0.0)
        } else {
            (value + drift).min(0.0)
        }
    }
}

impl AllocationPolicy for UpDown {
    fn name(&self) -> &'static str {
        "up-down"
    }

    fn decide(
        &mut self,
        _now: SimTime,
        views: &[StationView],
        free: &[NodeId],
        max_placements: usize,
    ) -> Vec<Order> {
        // 1. How many remote machines does each home currently use?
        let mut machines_used: HashMap<NodeId, usize> = HashMap::new();
        for v in views {
            if let Some(home) = v.hosting_for {
                *machines_used.entry(home).or_insert(0) += 1;
            }
        }

        // 2. Requesters sorted by (index, node id) — lowest index wins.
        let mut requesters: Vec<(f64, NodeId, usize)> = views
            .iter()
            .filter(|v| v.waiting_jobs > 0)
            .map(|v| (self.index_of(v.node), v.node, v.waiting_jobs))
            .collect();
        requesters.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN index").then(a.1.cmp(&b.1)));

        // 3. Free machines in the cluster's preference order (history-aware
        //    placement reorders this list before the call).
        let mut free: Vec<NodeId> = free.to_vec();
        free.reverse();

        // 4. Grant machines round-robin across requesters in priority
        //    order, one per round, until machines or budget run out.
        let mut orders = Vec::new();
        let mut granted: HashMap<NodeId, usize> = HashMap::new();
        let mut progress = true;
        while progress && orders.len() < max_placements && !free.is_empty() {
            progress = false;
            for &(_, home, demand) in &requesters {
                if orders.len() >= max_placements || free.is_empty() {
                    break;
                }
                let got = granted.get(&home).copied().unwrap_or(0);
                if got < demand {
                    let target = free.pop().expect("checked non-empty");
                    orders.push(Order::Assign { home, target });
                    *granted.entry(home).or_insert(0) += 1;
                    progress = true;
                }
            }
        }

        // 5. Preemption: requesters that remain unsatisfied with no free
        //    machines may claim capacity from consumers whose index exceeds
        //    theirs by the margin. Victim = running job whose *home* has
        //    the highest index.
        let mut preemptions = 0usize;
        if free.is_empty() {
            let mut victims: Vec<(f64, NodeId, NodeId)> = views
                .iter()
                .filter_map(|v| {
                    v.hosting_for
                        .map(|home| (self.index_of(home), home, v.node))
                })
                .collect();
            // Highest-index consumer first; ties broken by target id so the
            // choice is deterministic.
            victims.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN").then(a.2.cmp(&b.2)));
            let mut victim_iter = victims.into_iter();
            for &(req_idx, req_home, demand) in &requesters {
                if preemptions >= self.config.max_preemptions_per_poll {
                    break;
                }
                let got = granted.get(&req_home).copied().unwrap_or(0);
                if got >= demand {
                    continue;
                }
                // Find the next victim not belonging to the requester
                // itself and exceeding the margin.
                let victim = victim_iter
                    .by_ref()
                    .find(|&(v_idx, v_home, _)| {
                        v_home != req_home && v_idx > req_idx + self.config.preemption_margin
                    });
                match victim {
                    Some((_, _, target)) => {
                        orders.push(Order::Preempt { target });
                        preemptions += 1;
                    }
                    None => break, // victims are sorted; nobody further qualifies
                }
            }
        }

        // 6. Index updates: up for usage (including fresh grants), down for
        //    denial, drift toward zero otherwise.
        for v in views {
            let used = machines_used.get(&v.node).copied().unwrap_or(0)
                + granted.get(&v.node).copied().unwrap_or(0);
            let entry = self.index.entry(v.node).or_insert(0.0);
            if used > 0 {
                *entry += self.config.up_per_machine * used as f64;
            }
            let unmet = v.waiting_jobs > granted.get(&v.node).copied().unwrap_or(0);
            if unmet {
                *entry -= self.config.down_when_denied;
            }
            if used == 0 && !unmet {
                *entry = Self::drift_toward_zero(*entry, self.config.idle_drift);
            }
        }

        orders
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::validate_orders;

    fn free_of(views: &[StationView]) -> Vec<NodeId> {
        views.iter().filter(|v| v.can_host).map(|v| v.node).collect()
    }

    fn views(spec: &[(bool, Option<u32>, usize)]) -> Vec<StationView> {
        spec.iter()
            .enumerate()
            .map(|(i, &(can_host, hosting, waiting))| StationView {
                node: NodeId::new(i as u32),
                can_host,
                hosting_for: hosting.map(NodeId::new),
                waiting_jobs: waiting,
            })
            .collect()
    }

    #[test]
    fn indices_rise_with_usage_and_fall_with_denial() {
        let mut p = UpDown::new(UpDownConfig::default());
        // Station 0 hosts nothing but uses stations 1 and 2; station 3
        // wants capacity and is denied (no free machines).
        let v = views(&[
            (false, None, 0),
            (false, Some(0), 0),
            (false, Some(0), 0),
            (false, None, 2),
        ]);
        let orders = p.decide(SimTime::ZERO, &v, &free_of(&v), 1);
        // Preemption margin (2.0) not yet exceeded: index of 0 is 0 at
        // decision time.
        assert!(orders.is_empty());
        assert_eq!(p.index_of(NodeId::new(0)), 2.0); // two machines
        assert_eq!(p.index_of(NodeId::new(3)), -1.0); // denied
    }

    #[test]
    fn light_user_eventually_preempts_heavy_user() {
        let mut p = UpDown::new(UpDownConfig::default());
        // Heavy user = station 0, hogging both machines. Light user =
        // station 3, always denied. Eventually the gap exceeds the margin
        // and a preemption is ordered.
        let v = views(&[
            (false, None, 5),
            (false, Some(0), 0),
            (false, Some(0), 0),
            (false, None, 1),
        ]);
        let mut preempted_at = None;
        for poll in 0..10 {
            let orders = p.decide(SimTime::ZERO, &v, &free_of(&v), 1);
            validate_orders(&orders, &v).unwrap();
            if orders.iter().any(|o| matches!(o, Order::Preempt { .. })) {
                preempted_at = Some(poll);
                break;
            }
        }
        let poll = preempted_at.expect("light user must eventually preempt");
        assert!(poll >= 1, "margin must delay the first preemption");
        assert!(
            p.index_of(NodeId::new(0)) > p.index_of(NodeId::new(3)) + 2.0,
            "gap at preemption time"
        );
    }

    #[test]
    fn preemption_never_targets_requesters_own_jobs() {
        let mut p = UpDown::new(UpDownConfig {
            preemption_margin: 0.0,
            ..UpDownConfig::default()
        });
        // Station 0 both uses machines AND has more demand; it must not
        // preempt itself even though its own index is the highest.
        let v = views(&[
            (false, None, 5),
            (false, Some(0), 0),
            (false, Some(0), 0),
        ]);
        for _ in 0..5 {
            let orders = p.decide(SimTime::ZERO, &v, &free_of(&v), 1);
            assert!(
                orders.iter().all(|o| !matches!(o, Order::Preempt { .. })),
                "self-preemption ordered: {orders:?}"
            );
        }
    }

    #[test]
    fn equal_priorities_share_machines_round_robin() {
        let mut p = UpDown::new(UpDownConfig::default());
        let v = views(&[
            (false, None, 3),
            (false, None, 3),
            (true, None, 0),
            (true, None, 0),
        ]);
        let orders = p.decide(SimTime::ZERO, &v, &free_of(&v), 10);
        validate_orders(&orders, &v).unwrap();
        let homes: Vec<NodeId> = orders
            .iter()
            .filter_map(|o| match o {
                Order::Assign { home, .. } => Some(*home),
                _ => None,
            })
            .collect();
        assert_eq!(homes, vec![NodeId::new(0), NodeId::new(1)], "one each");
    }

    #[test]
    fn lower_index_station_is_served_first() {
        let mut p = UpDown::new(UpDownConfig::default());
        // Warm-up: station 0 consumes for 3 polls → high index.
        let warm = views(&[(false, None, 0), (false, Some(0), 0)]);
        for _ in 0..3 {
            p.decide(SimTime::ZERO, &warm, &free_of(&warm), 1);
        }
        // Now both 0 and 2 want the single free machine.
        let v = views(&[
            (false, None, 2),
            (false, None, 0),
            (false, None, 2),
            (true, None, 0),
        ]);
        let orders = p.decide(SimTime::ZERO, &v, &free_of(&v), 1);
        assert_eq!(
            orders,
            vec![Order::Assign { home: NodeId::new(2), target: NodeId::new(3) }]
        );
    }

    #[test]
    fn idle_drift_pulls_indices_back_to_zero() {
        let mut p = UpDown::new(UpDownConfig::default());
        let consuming = views(&[(false, None, 0), (false, Some(0), 0)]);
        for _ in 0..4 {
            p.decide(SimTime::ZERO, &consuming, &free_of(&consuming), 1);
        }
        let peak = p.index_of(NodeId::new(0));
        assert!(peak >= 4.0);
        // Station 0 stops using and wanting capacity.
        let quiet = views(&[(false, None, 0), (false, None, 0)]);
        for _ in 0..100 {
            p.decide(SimTime::ZERO, &quiet, &free_of(&quiet), 1);
        }
        assert_eq!(p.index_of(NodeId::new(0)), 0.0, "history fades");
        // Negative indices drift up toward zero as well.
        let denied = views(&[(false, None, 1), (false, None, 0)]);
        p.decide(SimTime::ZERO, &denied, &free_of(&denied), 0); // budget 0: denial guaranteed
        assert!(p.index_of(NodeId::new(0)) < 0.0);
        for _ in 0..100 {
            p.decide(SimTime::ZERO, &quiet, &free_of(&quiet), 1);
        }
        assert_eq!(p.index_of(NodeId::new(0)), 0.0);
    }

    #[test]
    fn placement_budget_is_respected() {
        let mut p = UpDown::new(UpDownConfig::default());
        let v = views(&[
            (false, None, 4),
            (true, None, 0),
            (true, None, 0),
            (true, None, 0),
        ]);
        let orders = p.decide(SimTime::ZERO, &v, &free_of(&v), 1);
        assert_eq!(orders.len(), 1);
    }

    #[test]
    fn max_preemptions_per_poll_caps_evictions() {
        let mut p = UpDown::new(UpDownConfig {
            preemption_margin: 0.5,
            max_preemptions_per_poll: 1,
            ..UpDownConfig::default()
        });
        // Make station 0 heavy.
        let warm = views(&[
            (false, None, 0),
            (false, Some(0), 0),
            (false, Some(0), 0),
            (false, Some(0), 0),
        ]);
        for _ in 0..5 {
            p.decide(SimTime::ZERO, &warm, &free_of(&warm), 1);
        }
        // Two light stations now demand; only one preemption per poll.
        let v = views(&[
            (false, None, 0),
            (false, Some(0), 0),
            (false, Some(0), 0),
            (false, Some(0), 0),
            (false, None, 1),
            (false, None, 1),
        ]);
        let orders = p.decide(SimTime::ZERO, &v, &free_of(&v), 1);
        let preempts = orders
            .iter()
            .filter(|o| matches!(o, Order::Preempt { .. }))
            .count();
        assert_eq!(preempts, 1);
    }

    #[test]
    fn decide_is_deterministic() {
        let run = || {
            let mut p = UpDown::new(UpDownConfig::default());
            let mut all = Vec::new();
            for i in 0..20u32 {
                let v = views(&[
                    (i % 3 == 0, None, (i % 4) as usize),
                    (false, (i % 2 == 0).then_some(0), 0),
                    (i % 5 == 0, None, 1),
                ]);
                all.push(p.decide(SimTime::ZERO, &v, &free_of(&v), 1));
            }
            all
        };
        assert_eq!(run(), run());
    }
}
