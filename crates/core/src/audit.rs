//! Online protocol auditing: a [`TraceSink`] that checks the cluster's
//! observable invariants *as the events stream past*.
//!
//! The invariants are the ones `tests/protocol.rs` replays offline —
//! promoted here into a reusable state machine so they can run against a
//! live simulation (attach an [`AuditSink`] to `run_cluster_with_sinks`)
//! or against a saved JSONL trace (`condor audit --jsonl trace.jsonl`):
//!
//! 1. **Per-job lifecycle legality** — one arrival per job, placements
//!    only after arrival, starts only after placement, a completion is
//!    terminal, and every transition follows the phase machine (including
//!    the gang corners: k same-instant placement starts, k checkpoint
//!    completions, resume markers paired with restarts).
//! 2. **Station capacity conservation** — the demand vectors of a
//!    machine's resident foreign jobs never sum past its capacity in any
//!    dimension (for whole-machine streams this degenerates to the classic
//!    at-most-one-resident exclusivity), and every occupancy is closed by
//!    the job that opened it. Station capacities default to whole machines;
//!    pin a fleet's profile with [`AuditSink::with_capacities`].
//! 3. **Owner alternation** — per-station activity transitions alternate
//!    (never active-while-active or idle-while-idle).
//! 4. **Coordinator cadence** — polls tick at a fixed interval (gaps are
//!    exact positive multiples of it while the coordinator host is down),
//!    and placement starts never bunch tighter than that interval.
//!
//! Violations are *recorded, not panicked*: the auditor keeps streaming so
//! one corruption early in a trace still yields a full report. The first
//! [`AuditSink::MAX_RECORDED`] violations are kept verbatim; beyond that
//! only the count grows. Auditing state is O(active jobs + stations).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

use condor_model::station::ResourceVec;
use condor_net::NodeId;
use condor_sim::time::{SimDuration, SimTime};

use crate::job::JobId;
use crate::telemetry::TraceSink;
use crate::trace::{TraceEvent, TraceKind};

/// Phase a job occupies in the auditor's replica of the lifecycle machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Queued,
    Transfer,
    Running,
    Suspended,
    Checkpointing,
    /// Terminal: completed, or rejected at admission.
    Done,
}

impl JobPhase {
    fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Transfer => "transfer",
            JobPhase::Running => "running",
            JobPhase::Suspended => "suspended",
            JobPhase::Checkpointing => "checkpointing",
            JobPhase::Done => "done",
        }
    }
}

/// Auditor-side record for one job that has entered the system.
#[derive(Debug)]
struct JobAudit {
    phase: JobPhase,
    /// Checkpoint transfers in flight (started, not yet completed).
    ckpt_in_flight: u32,
    /// Instant of the gang fan-out currently in progress, if any: extra
    /// same-instant `PlacementStarted` / `CheckpointStarted` events for
    /// the same job are legal only at exactly this time.
    fanout_at: Option<SimTime>,
    /// Instant of the last `JobStarted`, pairing the two legal
    /// resume-event orders (start-then-marker and marker-then-start).
    started_at: Option<SimTime>,
    /// Instant of the last `JobResumedInPlace`.
    resumed_at: Option<SimTime>,
    /// Instant of the last `ChaosLocalStart` (an autonomous start while
    /// the coordinator is unreachable); the paired same-instant
    /// `JobStarted` is legal straight from `Queued`.
    local_start_at: Option<SimTime>,
    /// Resource demand, set by `JobGranted` ahead of a fractional
    /// placement; whole-machine jobs never emit the grant and stay here.
    demand: ResourceVec,
}

/// One invariant breach, with the instant it was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// When the offending event was recorded (for end-of-run checks, the
    /// finish horizon).
    pub at: SimTime,
    /// What went wrong.
    pub kind: AuditViolationKind,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.at, self.kind)
    }
}

/// The typed invariant breaches [`AuditSink`] can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolationKind {
    /// A job emitted `JobArrived` more than once.
    DuplicateArrival {
        /// The job.
        job: JobId,
    },
    /// A lifecycle event referenced a job that never arrived.
    EventBeforeArrival {
        /// The job.
        job: JobId,
        /// Trace-kind name of the offending event.
        event: &'static str,
    },
    /// A lifecycle event arrived for a job already completed or rejected.
    EventAfterTerminal {
        /// The job.
        job: JobId,
        /// Trace-kind name of the offending event.
        event: &'static str,
    },
    /// An event was illegal in the job's current phase.
    IllegalTransition {
        /// The job.
        job: JobId,
        /// Phase the auditor had the job in.
        phase: &'static str,
        /// Trace-kind name of the offending event.
        event: &'static str,
    },
    /// `CheckpointCompleted` with no matching start in flight.
    UnmatchedCheckpointCompletion {
        /// The job.
        job: JobId,
        /// Claimed source station.
        station: NodeId,
    },
    /// Checkpoint starts outnumber completions at end of run for a job
    /// that is *not* mid-checkpoint (a transfer was silently lost).
    CheckpointImbalance {
        /// The job.
        job: JobId,
        /// Starts minus completions.
        in_flight: u32,
    },
    /// A placement targeted a station already hosting a foreign job.
    ///
    /// Reported for whole-machine placements only: a whole-machine demand
    /// can never legally share, so naming the resident is more useful than
    /// the raw capacity arithmetic. Fractional overcommits report
    /// [`AuditViolationKind::CapacityExceeded`] instead.
    DoubleOccupancy {
        /// The station.
        station: NodeId,
        /// The job already resident.
        resident: JobId,
        /// The job being placed onto it.
        incoming: JobId,
    },
    /// A placement pushed a station's granted capacity past its limit in
    /// some dimension.
    CapacityExceeded {
        /// The station.
        station: NodeId,
        /// Dimension name: `cpu`, `mem`, or `tag`.
        dimension: &'static str,
        /// Milli-units granted in that dimension after the placement.
        granted_milli: u32,
        /// The station's capacity in that dimension, in milli-units.
        capacity_milli: u32,
        /// The job being placed.
        incoming: JobId,
    },
    /// A completion/checkpoint/kill named a station the job did not hold.
    WrongStationRelease {
        /// The station named by the event.
        station: NodeId,
        /// The job.
        job: JobId,
        /// Trace-kind name of the offending event.
        event: &'static str,
    },
    /// An owner went active twice (or idle twice) in a row.
    OwnerTransitionRepeated {
        /// The station.
        station: NodeId,
        /// `true` for double-active, `false` for double-idle.
        active: bool,
    },
    /// A poll gap was not a positive whole multiple of the cadence.
    PollCadenceBroken {
        /// The observed gap.
        gap: SimDuration,
        /// The established cadence.
        cadence: SimDuration,
    },
    /// Two placement fan-outs bunched tighter than the poll cadence.
    PlacementThrottleBroken {
        /// The observed gap.
        gap: SimDuration,
        /// The established cadence.
        cadence: SimDuration,
    },
    /// A chaos recovery event (`chaos_coord_up` / `chaos_link_up`) with
    /// no matching outage or partition in effect.
    UnmatchedChaosRecovery {
        /// Trace-kind name of the offending event.
        event: &'static str,
    },
    /// `ReplicaSpawned` for a station already holding a live replica of
    /// the same job.
    DuplicateReplica {
        /// The job.
        job: JobId,
        /// The station.
        station: NodeId,
    },
    /// `ReplicaCancelled` naming a (job, station) pair with no live
    /// replica there.
    UnmatchedReplicaCancel {
        /// The job.
        job: JobId,
        /// The station.
        station: NodeId,
    },
    /// Replica conservation broken: spawned copies neither cancelled nor
    /// consumed by the job's completion (observed at completion or at the
    /// end of the run).
    ReplicaLeaked {
        /// The job.
        job: JobId,
        /// Live replicas left dangling.
        live: u32,
    },
}

impl fmt::Display for AuditViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use AuditViolationKind as K;
        match self {
            K::DuplicateArrival { job } => write!(f, "{job:?} arrived twice"),
            K::EventBeforeArrival { job, event } => {
                write!(f, "{event} for {job:?} before it arrived")
            }
            K::EventAfterTerminal { job, event } => {
                write!(f, "{event} for {job:?} after it completed/was rejected")
            }
            K::IllegalTransition { job, phase, event } => {
                write!(f, "{event} illegal for {job:?} while {phase}")
            }
            K::UnmatchedCheckpointCompletion { job, station } => {
                write!(f, "checkpoint_completed for {job:?} from {station} with none in flight")
            }
            K::CheckpointImbalance { job, in_flight } => {
                write!(f, "{job:?} ended with {in_flight} checkpoint transfer(s) lost")
            }
            K::DoubleOccupancy { station, resident, incoming } => {
                write!(f, "{station} received {incoming:?} while hosting {resident:?}")
            }
            K::CapacityExceeded { station, dimension, granted_milli, capacity_milli, incoming } => {
                write!(
                    f,
                    "{station} {dimension} over capacity: {granted_milli}/{capacity_milli} milli \
                     after placing {incoming:?}"
                )
            }
            K::WrongStationRelease { station, job, event } => {
                write!(f, "{event} for {job:?} names {station}, which it does not hold")
            }
            K::OwnerTransitionRepeated { station, active } => {
                let what = if *active { "active" } else { "idle" };
                write!(f, "{station} owner went {what} twice in a row")
            }
            K::PollCadenceBroken { gap, cadence } => {
                write!(f, "poll gap {gap} is not a whole multiple of cadence {cadence}")
            }
            K::PlacementThrottleBroken { gap, cadence } => {
                write!(f, "placements {gap} apart violate the {cadence} throttle")
            }
            K::UnmatchedChaosRecovery { event } => {
                write!(f, "{event} with no matching chaos fault in effect")
            }
            K::DuplicateReplica { job, station } => {
                write!(f, "{station} spawned a second live replica of {job:?}")
            }
            K::UnmatchedReplicaCancel { job, station } => {
                write!(f, "replica_cancelled for {job:?} on {station} with no live replica there")
            }
            K::ReplicaLeaked { job, live } => {
                write!(f, "{job:?} left {live} replica(s) neither cancelled nor completed")
            }
        }
    }
}

/// Returns whether `gap` is a positive whole multiple of `cadence`.
fn whole_multiple(gap: SimDuration, cadence: SimDuration) -> bool {
    !gap.is_zero() && !cadence.is_zero() && cadence * (gap / cadence) == gap
}

/// A [`TraceSink`] that audits the protocol invariants online.
///
/// # Examples
///
/// ```
/// use condor_core::audit::AuditSink;
/// use condor_core::telemetry::TraceSink;
/// use condor_core::trace::{TraceEvent, TraceKind};
/// use condor_core::job::JobId;
/// use condor_net::NodeId;
/// use condor_sim::time::SimTime;
///
/// let mut audit = AuditSink::new();
/// // A start with no preceding arrival or placement: two violations.
/// audit.record(&TraceEvent {
///     at: SimTime::from_secs(5),
///     kind: TraceKind::JobStarted { job: JobId(9), on: NodeId::new(0) },
/// });
/// audit.finish(SimTime::from_secs(10));
/// assert!(!audit.is_clean());
/// ```
#[derive(Debug, Default)]
pub struct AuditSink {
    jobs: HashMap<JobId, JobAudit>,
    /// The foreign jobs each station currently hosts, with their granted
    /// demand vectors (several residents are legal when every dimension
    /// stays within the station's capacity).
    residents: HashMap<NodeId, Vec<(JobId, ResourceVec)>>,
    /// Per-station capacity vectors, indexed by station id; stations past
    /// the end (or an empty vector) default to a whole machine.
    capacities: Vec<ResourceVec>,
    /// Reverse of `residents`: every station a job holds (k for gangs).
    held: HashMap<JobId, Vec<NodeId>>,
    /// Last owner transition per station (`true` = active).
    owner_active: HashMap<NodeId, bool>,
    /// Established poll cadence; inferred from observed gaps unless pinned
    /// via [`AuditSink::with_poll_interval`].
    cadence: Option<SimDuration>,
    cadence_pinned: bool,
    /// Independent coordinators feeding this stream (>1 for merged
    /// sharded-run traces). Zero means one. With several coordinators the
    /// pools tick one shared grid, so same-instant polls and fan-outs are
    /// legal cross-pool ties; only those zero gaps are exempt from the
    /// poll-cadence and placement-throttle checks. Every per-job and
    /// per-station check applies regardless.
    pools: usize,
    last_poll: Option<SimTime>,
    /// Last placement fan-out instant and job (gang members share one).
    last_placement: Option<(SimTime, JobId)>,
    /// Off-grid poll instant announced by `ChaosPollDelayed`: the
    /// same-instant `CoordinatorPolled` (and any placements it fans out)
    /// is exempt from the cadence and throttle checks and does not move
    /// either baseline.
    delayed_poll_at: Option<SimTime>,
    /// Nesting depth of chaos coordinator-outage windows.
    chaos_coord_depth: u32,
    /// Nesting depth of chaos partitions, per cut-off station.
    chaos_link_depth: HashMap<NodeId, u32>,
    /// Stations holding a live speculative replica of each job (see
    /// [`crate::redundancy`]); every entry must be closed by a
    /// `ReplicaCancelled` or consumed by the job's completion.
    live_replicas: HashMap<JobId, Vec<NodeId>>,
    /// `ReplicaSpawned` events observed.
    replicas_spawned: u64,
    /// `ReplicaCancelled` events observed.
    replicas_cancelled: u64,
    /// Sum of the `wasted_ms` carried by cancellations.
    replica_wasted_ms: u64,
    events: u64,
    total: u64,
    violations: Vec<AuditViolation>,
}

impl AuditSink {
    /// Violations kept verbatim; beyond this only the total count grows.
    pub const MAX_RECORDED: usize = 1024;

    /// Creates an auditor that infers the poll cadence from the trace.
    pub fn new() -> Self {
        AuditSink::default()
    }

    /// Pins the expected coordinator poll cadence instead of inferring it
    /// from the first observed gap.
    pub fn with_poll_interval(mut self, cadence: SimDuration) -> Self {
        self.cadence = Some(cadence);
        self.cadence_pinned = true;
        self
    }

    /// Declares how many independent pool coordinators feed this stream
    /// (the pool count of a sharded run). With more than one, same-instant
    /// polls and placement fan-outs are treated as legal cross-pool ties
    /// on the shared grid; nonzero gaps still get the full poll-cadence
    /// and placement-throttle checks, so a single pool's violations stay
    /// visible even in a merged trace. Job-lifecycle and station-capacity
    /// checks are unaffected.
    pub fn with_pools(mut self, pools: usize) -> Self {
        self.pools = pools;
        self
    }

    /// Pins the fleet's per-station capacity vectors (indexed by station
    /// id). Without this, every station is audited as a whole machine —
    /// matching [`ClusterConfig`](crate::config::ClusterConfig)'s default
    /// capacity profile. Stations past the end of the vector default to
    /// whole machines.
    pub fn with_capacities(mut self, capacities: Vec<ResourceVec>) -> Self {
        self.capacities = capacities;
        self
    }

    /// Events inspected so far.
    pub fn events_seen(&self) -> u64 {
        self.events
    }

    /// Total violations observed (including any beyond the recorded cap).
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// The recorded violations, in observation order (first
    /// [`AuditSink::MAX_RECORDED`] only).
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Whether no invariant was breached.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Replica accounting observed so far: `(spawned, cancelled,
    /// wasted_ms)`. With the conservation invariant clean,
    /// `spawned - cancelled` is exactly the number of completions a
    /// replica delivered, and `wasted_ms` sums the work the cancelled
    /// copies threw away.
    pub fn replica_totals(&self) -> (u64, u64, u64) {
        (self.replicas_spawned, self.replicas_cancelled, self.replica_wasted_ms)
    }

    /// Consumes the auditor, yielding the recorded violations.
    pub fn into_violations(self) -> Vec<AuditViolation> {
        self.violations
    }

    fn report(&mut self, at: SimTime, kind: AuditViolationKind) {
        self.total += 1;
        if self.violations.len() < Self::MAX_RECORDED {
            self.violations.push(AuditViolation { at, kind });
        }
    }

    /// Fetches the job record, reporting if the job never arrived or is
    /// already terminal. Returns `None` when the event must be dropped.
    fn job_for_event(&mut self, at: SimTime, job: JobId, event: &'static str) -> bool {
        match self.jobs.get(&job) {
            None => {
                self.report(at, AuditViolationKind::EventBeforeArrival { job, event });
                false
            }
            Some(a) if a.phase == JobPhase::Done => {
                self.report(at, AuditViolationKind::EventAfterTerminal { job, event });
                false
            }
            Some(_) => true,
        }
    }

    /// Copies out the phase and fan-out instant for a job known to exist.
    fn job_snapshot(&self, job: JobId) -> (JobPhase, Option<SimTime>) {
        let a = self.jobs.get(&job).expect("caller checked presence");
        (a.phase, a.fanout_at)
    }

    fn illegal(&mut self, at: SimTime, job: JobId, phase: JobPhase, event: &'static str) {
        self.report(
            at,
            AuditViolationKind::IllegalTransition { job, phase: phase.name(), event },
        );
    }

    /// The audited capacity of a station (whole machine unless pinned).
    fn capacity_of(&self, station: NodeId) -> ResourceVec {
        self.capacities
            .get(station.as_usize())
            .copied()
            .unwrap_or(ResourceVec::WHOLE)
    }

    /// Admits `job` onto `station`, checking per-dimension capacity
    /// conservation against the residents already there. Whole-machine
    /// demands landing on an occupied station report the classic
    /// `DoubleOccupancy`; fractional overcommits report the offending
    /// dimension.
    fn admit(&mut self, at: SimTime, job: JobId, station: NodeId) {
        let demand = self.jobs.get(&job).map_or(ResourceVec::WHOLE, |a| a.demand);
        let capacity = self.capacity_of(station);
        let list = self.residents.entry(station).or_default();
        let used = list
            .iter()
            .fold(ResourceVec::ZERO, |acc, &(_, d)| acc.add(d));
        let first_resident = list.first().map(|&(j, _)| j);
        list.push((job, demand));
        self.held.entry(job).or_default().push(station);
        let granted = used.add(demand);
        if granted.fits(capacity) {
            return;
        }
        if let (true, Some(resident)) = (demand.is_whole(), first_resident) {
            self.report(
                at,
                AuditViolationKind::DoubleOccupancy { station, resident, incoming: job },
            );
            return;
        }
        let over = [
            ("cpu", granted.cpu_milli, capacity.cpu_milli),
            ("mem", granted.mem_milli, capacity.mem_milli),
            ("tag", granted.tag_milli, capacity.tag_milli),
        ];
        for (dimension, granted_milli, capacity_milli) in over {
            if granted_milli > capacity_milli {
                self.report(
                    at,
                    AuditViolationKind::CapacityExceeded {
                        station,
                        dimension,
                        granted_milli,
                        capacity_milli,
                        incoming: job,
                    },
                );
                return;
            }
        }
    }

    /// Removes one station from the job's holdings, reporting a
    /// wrong-station release if it was not held.
    fn release(&mut self, at: SimTime, job: JobId, station: NodeId, event: &'static str) {
        let held = self.held.entry(job).or_default();
        if let Some(pos) = held.iter().position(|&n| n == station) {
            held.swap_remove(pos);
            if let Some(list) = self.residents.get_mut(&station) {
                if let Some(p) = list.iter().position(|&(j, _)| j == job) {
                    list.swap_remove(p);
                }
            }
        } else {
            self.report(at, AuditViolationKind::WrongStationRelease { station, job, event });
        }
    }

    /// Frees every station the job holds (completion or crash teardown).
    fn release_all(&mut self, job: JobId) {
        for station in self.held.remove(&job).unwrap_or_default() {
            if let Some(list) = self.residents.get_mut(&station) {
                if let Some(p) = list.iter().position(|&(j, _)| j == job) {
                    list.swap_remove(p);
                }
            }
        }
    }
}

impl TraceSink for AuditSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events += 1;
        let at = ev.at;
        match ev.kind {
            TraceKind::JobArrived { job } => {
                let duplicate = match self.jobs.entry(job) {
                    Entry::Occupied(_) => true,
                    Entry::Vacant(slot) => {
                        slot.insert(JobAudit {
                            phase: JobPhase::Queued,
                            ckpt_in_flight: 0,
                            fanout_at: None,
                            started_at: None,
                            resumed_at: None,
                            local_start_at: None,
                            demand: ResourceVec::WHOLE,
                        });
                        false
                    }
                };
                if duplicate {
                    self.report(at, AuditViolationKind::DuplicateArrival { job });
                }
            }
            TraceKind::JobRejected { job } => {
                // Rejection replaces arrival; both for one job is illegal.
                let duplicate = match self.jobs.entry(job) {
                    Entry::Occupied(_) => true,
                    Entry::Vacant(slot) => {
                        slot.insert(JobAudit {
                            phase: JobPhase::Done,
                            ckpt_in_flight: 0,
                            fanout_at: None,
                            started_at: None,
                            resumed_at: None,
                            local_start_at: None,
                            demand: ResourceVec::WHOLE,
                        });
                        false
                    }
                };
                if duplicate {
                    self.report(at, AuditViolationKind::DuplicateArrival { job });
                }
            }
            TraceKind::JobGranted { job, cpu_milli, mem_milli, tag_milli, .. } => {
                // Announces the fractional demand of the placement that
                // follows at this same instant; the demand is fixed for
                // the job's life, so it persists across re-placements.
                if self.job_for_event(at, job, "job_granted") {
                    let a = self.jobs.get_mut(&job).expect("checked");
                    let phase = a.phase;
                    a.demand = ResourceVec { cpu_milli, mem_milli, tag_milli };
                    if phase != JobPhase::Queued {
                        self.illegal(at, job, phase, "job_granted");
                    }
                }
            }
            TraceKind::PlacementStarted { job, target } => {
                if self.job_for_event(at, job, "placement_started") {
                    let (phase, fanout_at) = self.job_snapshot(job);
                    match phase {
                        JobPhase::Queued => {
                            // Throttle: fan-outs for *different* placements
                            // must sit at least one poll cadence apart. A
                            // fan-out from a chaos-delayed poll is off the
                            // grid by construction and is not remembered,
                            // so the next on-grid fan-out is measured
                            // against the previous on-grid one. In a merged
                            // multi-pool stream, same-instant fan-outs are
                            // distinct pools ticking the shared grid
                            // together — only that zero gap is exempt.
                            if self.delayed_poll_at != Some(at) {
                                if let (Some((prev, _)), Some(cadence)) =
                                    (self.last_placement, self.cadence)
                                {
                                    let gap = at.since(prev);
                                    let cross_pool_tie = self.pools > 1 && gap.is_zero();
                                    if gap < cadence && !cross_pool_tie {
                                        self.report(
                                            at,
                                            AuditViolationKind::PlacementThrottleBroken {
                                                gap,
                                                cadence,
                                            },
                                        );
                                    }
                                }
                                self.last_placement = Some((at, job));
                            }
                            let a = self.jobs.get_mut(&job).expect("checked");
                            a.phase = JobPhase::Transfer;
                            a.fanout_at = Some(at);
                        }
                        // Gang fan-out: extra members at the same instant.
                        JobPhase::Transfer if fanout_at == Some(at) => {}
                        phase => {
                            // Report, then follow the event anyway so one
                            // corruption does not cascade into noise.
                            self.illegal(at, job, phase, "placement_started");
                            let a = self.jobs.get_mut(&job).expect("checked");
                            a.phase = JobPhase::Transfer;
                            a.fanout_at = Some(at);
                        }
                    }
                    self.admit(at, job, target);
                }
            }
            TraceKind::PlacementDiskRejected { job, .. } => {
                if self.job_for_event(at, job, "placement_disk_rejected") {
                    let (phase, _) = self.job_snapshot(job);
                    if phase != JobPhase::Queued {
                        self.illegal(at, job, phase, "placement_disk_rejected");
                    }
                }
            }
            TraceKind::JobStarted { job, on: _ } => {
                if self.job_for_event(at, job, "job_started") {
                    let a = self.jobs.get_mut(&job).expect("checked");
                    let (phase, resumed_at, local_start_at) =
                        (a.phase, a.resumed_at, a.local_start_at);
                    a.started_at = Some(at);
                    a.phase = JobPhase::Running;
                    // Legal from a landed transfer or a suspension; also as
                    // the restart notification paired with a same-instant
                    // resume marker (the gang event order), or straight
                    // from the queue when paired with a same-instant
                    // autonomous chaos start.
                    let legal = matches!(phase, JobPhase::Transfer | JobPhase::Suspended)
                        || (phase == JobPhase::Running && resumed_at == Some(at))
                        || (phase == JobPhase::Queued && local_start_at == Some(at));
                    if !legal {
                        self.illegal(at, job, phase, "job_started");
                    }
                }
            }
            TraceKind::JobResumedInPlace { job, on: _ } => {
                if self.job_for_event(at, job, "job_resumed_in_place") {
                    let a = self.jobs.get_mut(&job).expect("checked");
                    let (phase, started_at) = (a.phase, a.started_at);
                    a.resumed_at = Some(at);
                    a.phase = JobPhase::Running;
                    // Legal from a suspension; also as the marker paired
                    // with a same-instant restart (single-job event order).
                    let legal = phase == JobPhase::Suspended
                        || (phase == JobPhase::Running && started_at == Some(at));
                    if !legal {
                        self.illegal(at, job, phase, "job_resumed_in_place");
                    }
                }
            }
            TraceKind::JobSuspended { job, on: _ } => {
                if self.job_for_event(at, job, "job_suspended") {
                    let a = self.jobs.get_mut(&job).expect("checked");
                    let phase = a.phase;
                    a.phase = JobPhase::Suspended;
                    // Transfer → Suspended is legal: the owner was already
                    // active when the placement image landed.
                    if !matches!(phase, JobPhase::Running | JobPhase::Transfer) {
                        self.illegal(at, job, phase, "job_suspended");
                    }
                }
            }
            TraceKind::CheckpointStarted { job, .. } => {
                if self.job_for_event(at, job, "checkpoint_started") {
                    let a = self.jobs.get_mut(&job).expect("checked");
                    let (phase, fanout_at) = (a.phase, a.fanout_at);
                    a.ckpt_in_flight += 1;
                    a.phase = JobPhase::Checkpointing;
                    // Gang checkpoint-out repeats at the same instant.
                    let gang_member = phase == JobPhase::Checkpointing && fanout_at == Some(at);
                    if !gang_member {
                        a.fanout_at = Some(at);
                    }
                    let legal =
                        matches!(phase, JobPhase::Running | JobPhase::Suspended) || gang_member;
                    if !legal {
                        self.illegal(at, job, phase, "checkpoint_started");
                    }
                }
            }
            TraceKind::CheckpointCompleted { job, from, .. } => {
                if self.job_for_event(at, job, "checkpoint_completed") {
                    let a = self.jobs.get_mut(&job).expect("checked");
                    if a.ckpt_in_flight == 0 {
                        self.report(
                            at,
                            AuditViolationKind::UnmatchedCheckpointCompletion {
                                job,
                                station: from,
                            },
                        );
                    } else {
                        a.ckpt_in_flight -= 1;
                        if a.ckpt_in_flight == 0 {
                            a.phase = JobPhase::Queued;
                        }
                    }
                    self.release(at, job, from, "checkpoint_completed");
                }
            }
            TraceKind::JobKilled { job, on } => {
                if self.job_for_event(at, job, "job_killed") {
                    let a = self.jobs.get_mut(&job).expect("checked");
                    let phase = a.phase;
                    a.phase = JobPhase::Queued;
                    if !matches!(
                        phase,
                        JobPhase::Transfer | JobPhase::Running | JobPhase::Suspended
                    ) {
                        self.illegal(at, job, phase, "job_killed");
                    }
                    self.release(at, job, on, "job_killed");
                }
            }
            TraceKind::PeriodicCheckpoint { job, on: _ } => {
                if self.job_for_event(at, job, "periodic_checkpoint") {
                    let (phase, _) = self.job_snapshot(job);
                    if phase != JobPhase::Running {
                        self.illegal(at, job, phase, "periodic_checkpoint");
                    }
                }
            }
            TraceKind::JobCompleted { job, on } => {
                if self.job_for_event(at, job, "job_completed") {
                    // A completion delivered by a live replica on `on` is
                    // legal from *any* primary phase: the win tears the
                    // primary down wherever it was — queued, mid-transfer,
                    // suspended, even mid-checkpoint (that transfer will
                    // never complete, so its in-flight count is forgiven).
                    let replica_win = self
                        .live_replicas
                        .get(&job)
                        .is_some_and(|stations| stations.contains(&on));
                    let (phase, _) = self.job_snapshot(job);
                    if phase != JobPhase::Running && !replica_win {
                        self.illegal(at, job, phase, "job_completed");
                    }
                    {
                        let a = self.jobs.get_mut(&job).expect("checked");
                        a.phase = JobPhase::Done;
                        if replica_win {
                            a.ckpt_in_flight = 0;
                        }
                    }
                    if !self.held.get(&job).is_some_and(|h| h.contains(&on)) {
                        self.report(
                            at,
                            AuditViolationKind::WrongStationRelease {
                                station: on,
                                job,
                                event: "job_completed",
                            },
                        );
                    }
                    self.release_all(job);
                    // Completion consumes at most the winning replica;
                    // rivals must have been cancelled beforehand.
                    if let Some(mut stations) = self.live_replicas.remove(&job) {
                        stations.retain(|&n| n != on);
                        if !stations.is_empty() {
                            self.report(
                                at,
                                AuditViolationKind::ReplicaLeaked {
                                    job,
                                    live: stations.len() as u32,
                                },
                            );
                        }
                    }
                }
            }
            TraceKind::CrashRollback { job, on: _ } => {
                if self.job_for_event(at, job, "crash_rollback") {
                    let a = self.jobs.get_mut(&job).expect("checked");
                    a.phase = JobPhase::Queued;
                    // The crash tears down any in-flight checkpoint
                    // transfer: the completion will never come.
                    a.ckpt_in_flight = 0;
                    self.release_all(job);
                }
            }
            TraceKind::OwnerActive { station } => {
                if self.owner_active.insert(station, true) == Some(true) {
                    self.report(
                        at,
                        AuditViolationKind::OwnerTransitionRepeated { station, active: true },
                    );
                }
            }
            TraceKind::OwnerIdle { station } => {
                if self.owner_active.insert(station, false) == Some(false) {
                    self.report(
                        at,
                        AuditViolationKind::OwnerTransitionRepeated { station, active: false },
                    );
                }
            }
            TraceKind::CoordinatorPolled { .. } => {
                // A chaos-delayed poll is off the grid by construction; it
                // neither gets the cadence check nor becomes the baseline
                // the next on-grid poll is measured against.
                if self.delayed_poll_at == Some(at) {
                    return;
                }
                if let Some(prev) = self.last_poll {
                    let gap = at.since(prev);
                    // Merged multi-pool streams tick one shared grid:
                    // same-instant polls are distinct pools tying, which a
                    // single coordinator can never legally produce. Only
                    // that zero gap is exempt; nonzero gaps keep the check.
                    if self.pools > 1 && gap.is_zero() {
                        return;
                    }
                    match self.cadence {
                        None => self.cadence = Some(gap),
                        Some(cadence) => {
                            if !whole_multiple(gap, cadence) {
                                // A shorter gap that evenly divides the
                                // inferred cadence means the first gap we
                                // saw spanned coordinator downtime:
                                // re-baseline rather than report.
                                if !self.cadence_pinned
                                    && gap < cadence
                                    && whole_multiple(cadence, gap)
                                {
                                    self.cadence = Some(gap);
                                } else {
                                    self.report(
                                        at,
                                        AuditViolationKind::PollCadenceBroken { gap, cadence },
                                    );
                                }
                            }
                        }
                    }
                }
                self.last_poll = Some(at);
            }
            TraceKind::ChaosPollDelayed { .. } => {
                self.delayed_poll_at = Some(at);
            }
            TraceKind::ChaosLocalStart { job, on } => {
                if self.job_for_event(at, job, "chaos_local_start") {
                    let a = self.jobs.get_mut(&job).expect("checked");
                    let phase = a.phase;
                    a.local_start_at = Some(at);
                    if phase != JobPhase::Queued {
                        self.illegal(at, job, phase, "chaos_local_start");
                    }
                    self.admit(at, job, on);
                }
            }
            TraceKind::ChaosCkptCorrupted { job, .. } => {
                if self.job_for_event(at, job, "chaos_ckpt_corrupted") {
                    // The retry keeps the transfer in flight: phase and
                    // `ckpt_in_flight` are both unchanged.
                    let (phase, _) = self.job_snapshot(job);
                    if phase != JobPhase::Checkpointing {
                        self.illegal(at, job, phase, "chaos_ckpt_corrupted");
                    }
                }
            }
            TraceKind::ChaosCoordDown => self.chaos_coord_depth += 1,
            TraceKind::ChaosCoordUp => {
                if self.chaos_coord_depth == 0 {
                    self.report(
                        at,
                        AuditViolationKind::UnmatchedChaosRecovery { event: "chaos_coord_up" },
                    );
                } else {
                    self.chaos_coord_depth -= 1;
                }
            }
            TraceKind::ChaosLinkDown { station } => {
                *self.chaos_link_depth.entry(station).or_insert(0) += 1;
            }
            TraceKind::ChaosLinkUp { station } => match self.chaos_link_depth.get_mut(&station) {
                Some(depth) if *depth > 0 => *depth -= 1,
                _ => self.report(
                    at,
                    AuditViolationKind::UnmatchedChaosRecovery { event: "chaos_link_up" },
                ),
            },
            TraceKind::JobForwarded { job, .. } => {
                // The job leaves this pool while still queued; it stays
                // tracked so a merged trace can follow it into adoption.
                if self.job_for_event(at, job, "job_forwarded") {
                    let (phase, _) = self.job_snapshot(job);
                    if phase != JobPhase::Queued {
                        self.illegal(at, job, phase, "job_forwarded");
                    }
                }
            }
            TraceKind::JobAdopted { job, on: _ } => {
                // Adoption is the destination-pool arrival of a forwarded
                // job. In a merged trace the job is already tracked (it
                // was forwarded while queued); in a per-pool trace this is
                // its first appearance and plays the role of an arrival.
                match self.jobs.entry(job) {
                    Entry::Occupied(mut slot) => {
                        let phase = slot.get().phase;
                        slot.get_mut().phase = JobPhase::Queued;
                        if phase != JobPhase::Queued {
                            self.illegal(at, job, phase, "job_adopted");
                        }
                    }
                    Entry::Vacant(slot) => {
                        slot.insert(JobAudit {
                            phase: JobPhase::Queued,
                            ckpt_in_flight: 0,
                            fanout_at: None,
                            started_at: None,
                            resumed_at: None,
                            local_start_at: None,
                            demand: ResourceVec::WHOLE,
                        });
                    }
                }
            }
            TraceKind::ReplicaSpawned { job, on } => {
                // Replicas are phase-independent of the primary (they
                // spawn alongside its placement and outlive its evictions)
                // but still occupy real capacity on their station.
                if self.job_for_event(at, job, "replica_spawned") {
                    let list = self.live_replicas.entry(job).or_default();
                    if list.contains(&on) {
                        self.report(
                            at,
                            AuditViolationKind::DuplicateReplica { job, station: on },
                        );
                    } else {
                        list.push(on);
                    }
                    self.replicas_spawned += 1;
                    self.admit(at, job, on);
                }
            }
            TraceKind::ReplicaCancelled { job, on, wasted_ms } => {
                if self.job_for_event(at, job, "replica_cancelled") {
                    let matched = self
                        .live_replicas
                        .get_mut(&job)
                        .and_then(|list| {
                            list.iter().position(|&n| n == on).map(|p| {
                                list.swap_remove(p);
                            })
                        })
                        .is_some();
                    if !matched {
                        self.report(
                            at,
                            AuditViolationKind::UnmatchedReplicaCancel { job, station: on },
                        );
                    }
                    self.replicas_cancelled += 1;
                    self.replica_wasted_ms += wasted_ms;
                    self.release(at, job, on, "replica_cancelled");
                }
            }
            TraceKind::ChaosPollLost
            | TraceKind::ChaosDupDropped
            | TraceKind::StationFailed { .. }
            | TraceKind::StationRecovered { .. }
            | TraceKind::ReservationStarted { .. }
            | TraceKind::ReservationEnded { .. } => {}
        }
    }

    fn finish(&mut self, at: SimTime) {
        // Transfers still in flight at the horizon are legal only while
        // the job is mid-checkpoint; anything else lost a completion.
        let mut imbalanced: Vec<(JobId, u32)> = self
            .jobs
            .iter()
            .filter(|(_, a)| a.ckpt_in_flight > 0 && a.phase != JobPhase::Checkpointing)
            .map(|(&job, a)| (job, a.ckpt_in_flight))
            .collect();
        imbalanced.sort_unstable_by_key(|&(job, _)| job);
        for (job, in_flight) in imbalanced {
            self.report(at, AuditViolationKind::CheckpointImbalance { job, in_flight });
        }
        // Replica conservation: every spawned copy must have been
        // cancelled or consumed by its job's completion by the horizon
        // (the simulation cancels survivors in `finalize`).
        let mut leaked: Vec<(JobId, u32)> = self
            .live_replicas
            .iter()
            .filter(|(_, stations)| !stations.is_empty())
            .map(|(&job, stations)| (job, stations.len() as u32))
            .collect();
        leaked.sort_unstable_by_key(|&(job, _)| job);
        for (job, live) in leaked {
            self.report(at, AuditViolationKind::ReplicaLeaked { job, live });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(secs: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { at: SimTime::from_secs(secs), kind }
    }

    fn audit(events: &[TraceEvent]) -> AuditSink {
        let mut sink = AuditSink::new();
        for e in events {
            sink.record(e);
        }
        sink.finish(events.last().map_or(SimTime::ZERO, |e| e.at));
        sink
    }

    #[test]
    fn clean_lifecycle_passes() {
        let job = JobId(0);
        let on = NodeId::new(1);
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job }),
            ev(120, TraceKind::PlacementStarted { job, target: on }),
            ev(130, TraceKind::JobStarted { job, on }),
            ev(400, TraceKind::JobCompleted { job, on }),
        ]);
        assert!(sink.is_clean(), "{:?}", sink.violations());
        assert_eq!(sink.events_seen(), 4);
    }

    #[test]
    fn start_before_placement_is_flagged() {
        let job = JobId(0);
        let on = NodeId::new(1);
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job }),
            ev(10, TraceKind::JobStarted { job, on }),
        ]);
        assert_eq!(sink.total_violations(), 1);
        assert!(matches!(
            sink.violations()[0].kind,
            AuditViolationKind::IllegalTransition { event: "job_started", .. }
        ));
    }

    #[test]
    fn double_occupancy_is_flagged() {
        let (j0, j1) = (JobId(0), JobId(1));
        let on = NodeId::new(2);
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job: j0 }),
            ev(0, TraceKind::JobArrived { job: j1 }),
            ev(120, TraceKind::PlacementStarted { job: j0, target: on }),
            ev(240, TraceKind::PlacementStarted { job: j1, target: on }),
        ]);
        assert!(sink
            .violations()
            .iter()
            .any(|v| matches!(v.kind, AuditViolationKind::DoubleOccupancy { .. })));
    }

    #[test]
    fn events_after_completion_are_flagged() {
        let job = JobId(0);
        let on = NodeId::new(0);
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job }),
            ev(120, TraceKind::PlacementStarted { job, target: on }),
            ev(121, TraceKind::JobStarted { job, on }),
            ev(200, TraceKind::JobCompleted { job, on }),
            ev(201, TraceKind::JobSuspended { job, on }),
        ]);
        assert!(sink.violations().iter().any(|v| matches!(
            v.kind,
            AuditViolationKind::EventAfterTerminal { event: "job_suspended", .. }
        )));
    }

    #[test]
    fn lost_checkpoint_transfer_is_flagged_at_finish() {
        let job = JobId(0);
        let on = NodeId::new(0);
        let mut sink = AuditSink::new();
        for e in [
            ev(0, TraceKind::JobArrived { job }),
            ev(120, TraceKind::PlacementStarted { job, target: on }),
            ev(121, TraceKind::JobStarted { job, on }),
            ev(300, TraceKind::CheckpointStarted {
                job,
                from: on,
                reason: crate::job::PreemptReason::OwnerReturned,
                bytes: 10,
            }),
            // Completion never arrives, and the job (illegally) restarts.
            ev(400, TraceKind::JobStarted { job, on }),
        ] {
            sink.record(&e);
        }
        sink.finish(SimTime::from_secs(1000));
        assert!(sink.violations().iter().any(|v| matches!(
            v.kind,
            AuditViolationKind::CheckpointImbalance { in_flight: 1, .. }
        )));
        // In-flight at the horizon while still checkpointing is fine:
        let mut ok = AuditSink::new();
        for e in [
            ev(0, TraceKind::JobArrived { job }),
            ev(120, TraceKind::PlacementStarted { job, target: on }),
            ev(121, TraceKind::JobStarted { job, on }),
            ev(300, TraceKind::CheckpointStarted {
                job,
                from: on,
                reason: crate::job::PreemptReason::OwnerReturned,
                bytes: 10,
            }),
        ] {
            ok.record(&e);
        }
        ok.finish(SimTime::from_secs(1000));
        assert!(ok.is_clean(), "{:?}", ok.violations());
    }

    #[test]
    fn owner_double_active_is_flagged() {
        let station = NodeId::new(3);
        let sink = audit(&[
            ev(10, TraceKind::OwnerActive { station }),
            ev(20, TraceKind::OwnerActive { station }),
        ]);
        assert_eq!(sink.total_violations(), 1);
    }

    #[test]
    fn poll_cadence_allows_downtime_multiples_only() {
        let polled = TraceKind::CoordinatorPolled {
            free_machines: 0,
            waiting_jobs: 0,
            placements: 0,
            preemptions: 0,
        };
        // 120 s cadence with one 360 s downtime gap: clean.
        let sink = audit(&[
            ev(120, polled),
            ev(240, polled),
            ev(600, polled),
            ev(720, polled),
        ]);
        assert!(sink.is_clean(), "{:?}", sink.violations());
        // An off-cadence poll: flagged.
        let sink = audit(&[
            ev(120, polled),
            ev(240, polled),
            ev(330, polled),
        ]);
        assert!(matches!(
            sink.violations()[0].kind,
            AuditViolationKind::PollCadenceBroken { .. }
        ));
        // First observed gap spans downtime; later true-cadence gaps
        // re-baseline instead of reporting.
        let sink = audit(&[
            ev(120, polled),
            ev(480, polled), // 360 s (down for two cycles)
            ev(600, polled), // 120 s — re-baseline
            ev(720, polled),
        ]);
        assert!(sink.is_clean(), "{:?}", sink.violations());
    }

    #[test]
    fn placement_throttle_uses_inferred_cadence() {
        let polled = TraceKind::CoordinatorPolled {
            free_machines: 1,
            waiting_jobs: 1,
            placements: 1,
            preemptions: 0,
        };
        let (j0, j1) = (JobId(0), JobId(1));
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job: j0 }),
            ev(0, TraceKind::JobArrived { job: j1 }),
            ev(120, polled),
            ev(240, polled),
            ev(240, TraceKind::PlacementStarted { job: j0, target: a }),
            // 30 s later: tighter than the 120 s cadence.
            ev(270, TraceKind::PlacementStarted { job: j1, target: b }),
        ]);
        assert!(sink.violations().iter().any(|v| matches!(
            v.kind,
            AuditViolationKind::PlacementThrottleBroken { .. }
        )));
    }

    #[test]
    fn chaos_local_start_pairs_with_job_started() {
        let job = JobId(0);
        let on = NodeId::new(4);
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job }),
            ev(60, TraceKind::ChaosCoordDown),
            ev(90, TraceKind::ChaosLocalStart { job, on }),
            ev(90, TraceKind::JobStarted { job, on }),
            ev(200, TraceKind::ChaosCoordUp),
            ev(400, TraceKind::JobCompleted { job, on }),
        ]);
        assert!(sink.is_clean(), "{:?}", sink.violations());
        // Without the paired marker, Queued → Running stays illegal.
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job }),
            ev(90, TraceKind::JobStarted { job, on }),
        ]);
        assert!(!sink.is_clean());
    }

    #[test]
    fn chaos_recovery_without_fault_is_flagged() {
        let sink = audit(&[ev(10, TraceKind::ChaosCoordUp)]);
        assert!(matches!(
            sink.violations()[0].kind,
            AuditViolationKind::UnmatchedChaosRecovery { event: "chaos_coord_up" }
        ));
        let sink = audit(&[ev(10, TraceKind::ChaosLinkUp { station: NodeId::new(2) })]);
        assert!(matches!(
            sink.violations()[0].kind,
            AuditViolationKind::UnmatchedChaosRecovery { event: "chaos_link_up" }
        ));
        // Matched pairs are clean, including nested partitions.
        let s = NodeId::new(2);
        let sink = audit(&[
            ev(10, TraceKind::ChaosLinkDown { station: s }),
            ev(15, TraceKind::ChaosLinkDown { station: s }),
            ev(20, TraceKind::ChaosLinkUp { station: s }),
            ev(25, TraceKind::ChaosLinkUp { station: s }),
        ]);
        assert!(sink.is_clean(), "{:?}", sink.violations());
    }

    #[test]
    fn chaos_delayed_poll_is_cadence_exempt() {
        let polled = TraceKind::CoordinatorPolled {
            free_machines: 0,
            waiting_jobs: 0,
            placements: 0,
            preemptions: 0,
        };
        // An off-grid poll at 270 s is announced by the delay marker and
        // does not break the 120 s cadence or re-baseline it.
        let sink = audit(&[
            ev(120, polled),
            ev(240, polled),
            ev(270, TraceKind::ChaosPollDelayed { delay_ms: 30_000 }),
            ev(270, polled),
            ev(360, polled),
        ]);
        assert!(sink.is_clean(), "{:?}", sink.violations());
        // The same off-grid poll without the marker is flagged (cadence
        // pinned: an inferring auditor would re-baseline to the divisor).
        let mut sink = AuditSink::new().with_poll_interval(SimDuration::from_secs(120));
        for e in [ev(120, polled), ev(240, polled), ev(270, polled)] {
            sink.record(&e);
        }
        sink.finish(SimTime::from_secs(270));
        assert!(!sink.is_clean());
    }

    #[test]
    fn chaos_ckpt_corrupted_requires_checkpointing_phase() {
        let job = JobId(0);
        let on = NodeId::new(0);
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job }),
            ev(120, TraceKind::PlacementStarted { job, target: on }),
            ev(121, TraceKind::JobStarted { job, on }),
            ev(300, TraceKind::CheckpointStarted {
                job,
                from: on,
                reason: crate::job::PreemptReason::OwnerReturned,
                bytes: 10,
            }),
            ev(310, TraceKind::ChaosCkptCorrupted { job, from: on, attempt: 1 }),
            ev(340, TraceKind::CheckpointCompleted { job, from: on, bytes: 10 }),
        ]);
        assert!(sink.is_clean(), "{:?}", sink.violations());
        // Corruption outside a checkpoint is illegal.
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job }),
            ev(120, TraceKind::PlacementStarted { job, target: on }),
            ev(121, TraceKind::JobStarted { job, on }),
            ev(130, TraceKind::ChaosCkptCorrupted { job, from: on, attempt: 1 }),
        ]);
        assert!(matches!(
            sink.violations()[0].kind,
            AuditViolationKind::IllegalTransition { event: "chaos_ckpt_corrupted", .. }
        ));
    }

    #[test]
    fn gang_fanout_at_same_instant_is_legal() {
        let job = JobId(0);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job }),
            ev(120, TraceKind::PlacementStarted { job, target: a }),
            ev(120, TraceKind::PlacementStarted { job, target: b }),
            ev(130, TraceKind::JobStarted { job, on: a }),
            ev(300, TraceKind::CheckpointStarted {
                job,
                from: a,
                reason: crate::job::PreemptReason::PriorityPreemption,
                bytes: 5,
            }),
            ev(300, TraceKind::CheckpointStarted {
                job,
                from: b,
                reason: crate::job::PreemptReason::PriorityPreemption,
                bytes: 5,
            }),
            ev(310, TraceKind::CheckpointCompleted { job, from: a, bytes: 5 }),
            ev(330, TraceKind::CheckpointCompleted { job, from: b, bytes: 5 }),
        ]);
        assert!(sink.is_clean(), "{:?}", sink.violations());
    }

    fn poll(free: u32) -> TraceKind {
        TraceKind::CoordinatorPolled {
            free_machines: free,
            waiting_jobs: 0,
            placements: 0,
            preemptions: 0,
        }
    }

    /// Regression: `with_pools` used to skip the cadence checks wholesale.
    /// The skip is scoped to cross-pool *ties* (zero gaps); a merged
    /// stream whose polls come from a single pool still has its nonzero
    /// gaps held to the established cadence.
    #[test]
    fn single_pool_stream_through_with_pools_still_enforces_cadence() {
        let mut sink = AuditSink::new()
            .with_pools(2)
            .with_poll_interval(SimDuration::from_secs(120));
        for e in [
            ev(120, poll(3)),
            ev(240, poll(3)),
            ev(330, poll(3)), // 90 s gap: off-cadence, must be flagged
        ] {
            sink.record(&e);
        }
        sink.finish(SimTime::from_secs(400));
        assert!(sink.violations().iter().any(|v| matches!(
            v.kind,
            AuditViolationKind::PollCadenceBroken { .. }
        )));
    }

    /// Same-instant polls from sibling pools share one grid tick; the
    /// zero gaps between them are exempt, and the nonzero gaps between
    /// ticks still audit clean when they match the cadence.
    #[test]
    fn cross_pool_poll_ties_are_exempt_from_cadence() {
        let mut sink = AuditSink::new()
            .with_pools(2)
            .with_poll_interval(SimDuration::from_secs(120));
        for e in [
            ev(120, poll(2)),
            ev(120, poll(4)),
            ev(240, poll(2)),
            ev(240, poll(4)),
        ] {
            sink.record(&e);
        }
        sink.finish(SimTime::from_secs(300));
        assert!(sink.is_clean(), "{:?}", sink.violations());
    }

    /// Two half-CPU residents share one station: within capacity on every
    /// dimension, so the capacity-conservation invariant holds.
    #[test]
    fn fractional_co_residency_within_capacity_is_clean() {
        let (j0, j1) = (JobId(0), JobId(1));
        let on = NodeId::new(2);
        let grant = |job| TraceKind::JobGranted { job, on, cpu_milli: 500, mem_milli: 400, tag_milli: 0 };
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job: j0 }),
            ev(0, TraceKind::JobArrived { job: j1 }),
            ev(120, grant(j0)),
            ev(120, TraceKind::PlacementStarted { job: j0, target: on }),
            ev(240, grant(j1)),
            ev(240, TraceKind::PlacementStarted { job: j1, target: on }),
            ev(250, TraceKind::JobStarted { job: j0, on }),
            ev(260, TraceKind::JobStarted { job: j1, on }),
            ev(900, TraceKind::JobCompleted { job: j0, on }),
            ev(950, TraceKind::JobCompleted { job: j1, on }),
        ]);
        assert!(sink.is_clean(), "{:?}", sink.violations());
    }

    /// A second resident whose demand overflows the CPU dimension trips
    /// `CapacityExceeded` naming the offending dimension.
    #[test]
    fn capacity_overcommit_is_flagged_per_dimension() {
        let (j0, j1) = (JobId(0), JobId(1));
        let on = NodeId::new(0);
        let grant = |job| TraceKind::JobGranted { job, on, cpu_milli: 600, mem_milli: 100, tag_milli: 0 };
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job: j0 }),
            ev(0, TraceKind::JobArrived { job: j1 }),
            ev(120, grant(j0)),
            ev(120, TraceKind::PlacementStarted { job: j0, target: on }),
            ev(240, grant(j1)),
            ev(240, TraceKind::PlacementStarted { job: j1, target: on }),
        ]);
        assert!(sink.violations().iter().any(|v| matches!(
            v.kind,
            AuditViolationKind::CapacityExceeded { dimension: "cpu", granted_milli: 1200, capacity_milli: 1000, .. }
        )), "{:?}", sink.violations());
    }

    /// Freed capacity is reusable: once the first resident completes, a
    /// demand that would have overflowed alongside it fits cleanly.
    #[test]
    fn released_capacity_admits_new_residents() {
        let (j0, j1) = (JobId(0), JobId(1));
        let on = NodeId::new(0);
        let grant = |job| TraceKind::JobGranted { job, on, cpu_milli: 700, mem_milli: 700, tag_milli: 0 };
        let sink = audit(&[
            ev(0, TraceKind::JobArrived { job: j0 }),
            ev(0, TraceKind::JobArrived { job: j1 }),
            ev(120, grant(j0)),
            ev(120, TraceKind::PlacementStarted { job: j0, target: on }),
            ev(130, TraceKind::JobStarted { job: j0, on }),
            ev(300, TraceKind::JobCompleted { job: j0, on }),
            ev(360, grant(j1)),
            ev(360, TraceKind::PlacementStarted { job: j1, target: on }),
        ]);
        assert!(sink.is_clean(), "{:?}", sink.violations());
    }

    /// `with_capacities` audits against per-station capacity vectors, so
    /// a grant that fits the default whole machine can still overflow a
    /// smaller station.
    #[test]
    fn with_capacities_enforces_per_station_limits() {
        let job = JobId(0);
        let on = NodeId::new(1);
        let mut sink = AuditSink::new()
            .with_capacities(vec![ResourceVec::WHOLE, ResourceVec::new(400, 1000)]);
        for e in [
            ev(0, TraceKind::JobArrived { job }),
            ev(120, TraceKind::JobGranted { job, on, cpu_milli: 500, mem_milli: 200, tag_milli: 0 }),
            ev(120, TraceKind::PlacementStarted { job, target: on }),
        ] {
            sink.record(&e);
        }
        sink.finish(SimTime::from_secs(200));
        assert!(sink.violations().iter().any(|v| matches!(
            v.kind,
            AuditViolationKind::CapacityExceeded { dimension: "cpu", granted_milli: 500, capacity_milli: 400, .. }
        )), "{:?}", sink.violations());
    }
}
