//! Cluster configuration.

use condor_model::costs::CostModel;
use condor_model::owner::OwnerConfig;
use condor_model::station::{Arch, StationProfile};
use condor_net::{BusConfig, NodeId};
use condor_sim::time::{SimDuration, SimTime};

use crate::queue::LocalOrder;
use crate::updown::UpDownConfig;

/// Stochastic station-failure injection.
///
/// The paper's §1 requirement: *"if a remote site running a background job
/// fails, the job should be restarted automatically at some other location
/// to guarantee job completion."* With failures enabled, each station
/// crashes after an exponential time-to-failure and recovers after an
/// exponential repair time; a crash destroys the foreign image on that
/// station (the job restarts from its last checkpoint at home) and freezes
/// the station's own queue until recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureConfig {
    /// Mean time between failures per station.
    pub mtbf: SimDuration,
    /// Mean time to repair.
    pub mttr: SimDuration,
}

impl FailureConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if either mean is zero.
    pub fn validate(&self) {
        assert!(!self.mtbf.is_zero(), "zero MTBF");
        assert!(!self.mttr.is_zero(), "zero MTTR");
    }
}

/// An advance reservation of remote capacity (paper §5, future-work item
/// 3: "Reservations guarantee computing capacity for users in advance in
/// order to conduct experiments in distributed computations").
///
/// During the window, up to `machines` stations are *fenced* for the
/// holder: foreign jobs of other users are evicted at the start, and only
/// the holder's queue may be served on fenced machines. Owners always keep
/// absolute priority — a fenced machine whose owner sits down is still
/// surrendered immediately, exactly like any other.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reservation {
    /// The station whose queue the reserved capacity serves.
    pub holder: NodeId,
    /// Number of machines to fence.
    pub machines: usize,
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl Reservation {
    /// Validates the reservation.
    ///
    /// # Panics
    ///
    /// Panics on an empty window or zero machines.
    pub fn validate(&self, stations: usize) {
        assert!(self.machines > 0, "zero-machine reservation");
        assert!(self.from < self.until, "empty reservation window");
        assert!(
            self.holder.as_usize() < stations,
            "reservation holder {} outside the fleet",
            self.holder
        );
        assert!(
            self.machines < stations,
            "cannot reserve the entire fleet ({} of {stations})",
            self.machines
        );
    }
}

/// What happens when a workstation owner returns while a foreign job runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionStrategy {
    /// The 1988 implementation (paper §4): stop the job in place and wait
    /// out a grace period; if the owner is still active when it expires,
    /// checkpoint and move. No work is ever lost, but the job's image
    /// occupies the owner's disk during the grace window.
    GraceThenCheckpoint {
        /// How long to wait before vacating (paper: 5 minutes).
        grace: SimDuration,
    },
    /// The §4 alternative the authors were considering: kill the job
    /// immediately (minimal owner interference) and rely on periodic
    /// checkpoints; work since the last checkpoint is redone.
    ImmediateKill {
        /// Interval between periodic while-running checkpoints.
        checkpoint_every: SimDuration,
    },
}

impl Default for EvictionStrategy {
    fn default() -> Self {
        EvictionStrategy::GraceThenCheckpoint {
            grace: SimDuration::from_minutes(5),
        }
    }
}

/// Which allocation policy the coordinator runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// The paper's Up-Down algorithm.
    UpDown(UpDownConfig),
    /// First-come-first-served over stations; no preemption.
    Fifo,
    /// Round-robin over demanding stations; no preemption.
    RoundRobin,
    /// Uniformly random demanding station; no preemption.
    Random,
}

impl Default for PolicyKind {
    fn default() -> Self {
        PolicyKind::UpDown(UpDownConfig::default())
    }
}

/// Full configuration of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of workstations (the paper observed 23).
    pub stations: usize,
    /// Master seed; every stochastic component derives a substream.
    pub seed: u64,
    /// The coordinator's allocation policy.
    pub policy: PolicyKind,
    /// Control-plane intervals and per-operation costs.
    pub costs: CostModel,
    /// Owner-return handling.
    pub eviction: EvictionStrategy,
    /// Owner-activity process parameters (shared base; stations get
    /// heterogeneous scales via `owner_heterogeneity`).
    pub owner: OwnerConfig,
    /// Spread of per-station activity scales (0 = identical owners).
    pub owner_heterogeneity: f64,
    /// Hardware profile applied to every station.
    pub station: StationProfile,
    /// Network parameters.
    pub bus: BusConfig,
    /// How local schedulers order their own queues.
    pub local_order: LocalOrder,
    /// Maximum placements started per coordinator poll (paper §4: one).
    pub placements_per_poll: usize,
    /// Prefer placement targets with the longest expected idle periods
    /// (paper §5 future-work item 1).
    pub history_aware_placement: bool,
    /// Optional stochastic station failures (None = stations never fail).
    pub failures: Option<FailureConfig>,
    /// The station hosting the central coordinator (paper §2.1: "One
    /// workstation holds the central coordinator"). If that station fails,
    /// allocation of new capacity stops until it recovers — running jobs
    /// are unaffected.
    pub coordinator_host: u32,
    /// Architecture of each station, cycled over the fleet (station `i`
    /// has `arch_pattern[i % len]`). The 1988 fleet is all-VAX
    /// (`vec![Arch::Vax]`); a mixed pattern reproduces the §5(4) planned
    /// SUN port, where placement must respect job binaries.
    pub arch_pattern: Vec<Arch>,
    /// Store checkpoint files on a dedicated checkpoint server instead of
    /// the submitting workstation's disk (the §4 disk-server idea). The
    /// server has unbounded capacity, so home disks only gate the number
    /// of *executable* images, not standing checkpoints.
    pub checkpoint_server: bool,
    /// Advance capacity reservations (paper §5(3)).
    pub reservations: Vec<Reservation>,
    /// Record the full event trace (disable for huge benchmark runs).
    pub record_trace: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            stations: 23,
            seed: 1988,
            policy: PolicyKind::default(),
            costs: CostModel::default(),
            eviction: EvictionStrategy::default(),
            owner: OwnerConfig::default(),
            owner_heterogeneity: 0.4,
            station: StationProfile::default(),
            bus: BusConfig::default(),
            local_order: LocalOrder::Fifo,
            placements_per_poll: 1,
            history_aware_placement: false,
            failures: None,
            coordinator_host: 0,
            arch_pattern: vec![Arch::Vax],
            checkpoint_server: false,
            reservations: Vec::new(),
            record_trace: true,
        }
    }
}

impl ClusterConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on structurally impossible configurations.
    pub fn validate(&self) {
        assert!(self.stations > 0, "a cluster needs at least one station");
        assert!(
            self.placements_per_poll > 0,
            "placements_per_poll must be positive"
        );
        assert!(
            !self.costs.coordinator_poll_interval.is_zero(),
            "zero poll interval"
        );
        assert!(
            !self.costs.owner_check_interval.is_zero(),
            "zero owner-check interval"
        );
        if let EvictionStrategy::ImmediateKill { checkpoint_every } = self.eviction {
            assert!(!checkpoint_every.is_zero(), "zero periodic-checkpoint interval");
        }
        if let Some(f) = &self.failures {
            f.validate();
        }
        assert!(
            (self.coordinator_host as usize) < self.stations,
            "coordinator host {} outside the fleet",
            self.coordinator_host
        );
        assert!(!self.arch_pattern.is_empty(), "empty architecture pattern");
        for r in &self.reservations {
            r.validate(self.stations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_setup() {
        let c = ClusterConfig::default();
        c.validate();
        assert_eq!(c.stations, 23);
        assert_eq!(c.placements_per_poll, 1);
        assert!(matches!(c.policy, PolicyKind::UpDown(_)));
        assert!(matches!(
            c.eviction,
            EvictionStrategy::GraceThenCheckpoint { grace } if grace == SimDuration::from_minutes(5)
        ));
        assert!(!c.history_aware_placement);
        assert!(c.failures.is_none());
        assert_eq!(c.coordinator_host, 0);
        assert!(!c.checkpoint_server);
        assert_eq!(c.arch_pattern, vec![Arch::Vax]);
        assert!(c.reservations.is_empty());
    }

    #[test]
    #[should_panic(expected = "entire fleet")]
    fn whole_fleet_reservation_rejected() {
        ClusterConfig {
            reservations: vec![Reservation {
                holder: NodeId::new(0),
                machines: 23,
                from: SimTime::ZERO,
                until: SimTime::from_hours(1),
            }],
            ..ClusterConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "zero MTBF")]
    fn zero_mtbf_rejected() {
        ClusterConfig {
            failures: Some(FailureConfig {
                mtbf: SimDuration::ZERO,
                mttr: SimDuration::HOUR,
            }),
            ..ClusterConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "outside the fleet")]
    fn coordinator_host_must_exist() {
        ClusterConfig {
            coordinator_host: 99,
            ..ClusterConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_rejected() {
        ClusterConfig {
            stations: 0,
            ..ClusterConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_placements_rejected() {
        ClusterConfig {
            placements_per_poll: 0,
            ..ClusterConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "periodic-checkpoint")]
    fn zero_periodic_checkpoint_rejected() {
        ClusterConfig {
            eviction: EvictionStrategy::ImmediateKill {
                checkpoint_every: SimDuration::ZERO,
            },
            ..ClusterConfig::default()
        }
        .validate();
    }
}
