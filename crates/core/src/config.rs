//! Cluster configuration.

use condor_model::costs::CostModel;
use condor_model::owner::OwnerConfig;
use condor_model::station::{Arch, ResourceVec, StationProfile};
use condor_net::{BusConfig, NodeId, PoolLinks};
use condor_sim::time::{SimDuration, SimTime};

use crate::chaos::ChaosConfig;
use crate::job::JobId;
use crate::queue::LocalOrder;
use crate::redundancy::RedundancyConfig;
use crate::updown::UpDownConfig;

/// Why a configuration (or the job set submitted with it) is invalid.
///
/// Produced by [`ClusterConfig::check`], [`ClusterConfig::builder`],
/// [`FailureConfig::check`], [`Reservation::check`], and
/// [`Cluster::try_new`](crate::cluster::Cluster::try_new).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `stations` is zero.
    NoStations,
    /// `placements_per_poll` is zero.
    ZeroPlacementsPerPoll,
    /// The coordinator poll interval is zero.
    ZeroPollInterval,
    /// The owner-check interval is zero.
    ZeroOwnerCheckInterval,
    /// Immediate-kill eviction with a zero periodic-checkpoint interval.
    ZeroPeriodicCheckpoint,
    /// Failure injection with a zero mean time between failures.
    ZeroMtbf,
    /// Failure injection with a zero mean time to repair.
    ZeroMttr,
    /// `coordinator_host` does not index a station.
    CoordinatorHostOutsideFleet {
        /// The configured host index.
        host: u32,
    },
    /// `arch_pattern` is empty.
    EmptyArchPattern,
    /// `capacity_profiles` is empty.
    EmptyCapacityProfiles,
    /// A capacity profile with zero CPU — such a station could never host
    /// anything, which is always a configuration mistake (fence stations
    /// with reservations or failures instead).
    CapacityProfileZeroCpu {
        /// Index of the offending profile in `capacity_profiles`.
        index: usize,
    },
    /// A job demanding zero CPU — it would never make progress.
    JobZeroCpuDemand {
        /// The job.
        job: JobId,
    },
    /// A gang (`width > 1`) with a fractional resource demand; gangs
    /// coordinate whole machines and cannot share them.
    GangFractionalResources {
        /// The job.
        job: JobId,
    },
    /// A reservation fences zero machines.
    ReservationZeroMachines,
    /// A reservation window with `from >= until`.
    ReservationEmptyWindow,
    /// A reservation whose holder does not index a station.
    ReservationHolderOutsideFleet {
        /// The configured holder.
        holder: NodeId,
    },
    /// A reservation fencing every machine in the fleet (or more).
    ReservationWholeFleet {
        /// Machines the reservation asked for.
        machines: usize,
        /// Fleet size.
        stations: usize,
    },
    /// Submitted job ids are not `0, 1, 2, …` in order.
    JobIdsNotDense,
    /// A job's home station does not exist.
    JobHomeOutsideFleet {
        /// The job.
        job: JobId,
        /// Its configured home.
        home: NodeId,
    },
    /// A job depends on a job with an equal or higher id.
    JobDependencyOrder {
        /// The job.
        job: JobId,
        /// The offending dependency.
        dep: JobId,
    },
    /// A job requests zero machines.
    JobZeroWidth {
        /// The job.
        job: JobId,
    },
    /// A job requests more machines than the fleet has.
    JobWidthExceedsFleet {
        /// The job.
        job: JobId,
        /// Machines requested.
        width: usize,
        /// Fleet size.
        stations: usize,
    },
    /// Chaos schedule entries are not sorted by injection time.
    ChaosScheduleUnsorted,
    /// A chaos fault with a zero-length window or delay.
    ChaosZeroDuration,
    /// A chaos partition cutting off zero machines.
    ChaosPartitionZeroMachines,
    /// A chaos partition naming stations outside the fleet.
    ChaosPartitionOutsideFleet {
        /// First station in the partitioned range.
        first_station: u32,
        /// Number of stations cut off.
        machines: u32,
        /// Fleet size.
        stations: usize,
    },
    /// A zero checkpoint-retry backoff base.
    ChaosZeroBackoff,
    /// A pool topology with zero pools.
    TopologyNoPools,
    /// A pool topology with more pools than stations.
    TopologyMorePoolsThanStations {
        /// Pools requested.
        pools: usize,
        /// Fleet size.
        stations: usize,
    },
    /// A pool topology whose synchronisation window exceeds the inter-pool
    /// link latency — the conservative lookahead bound would be violated.
    TopologyWindowExceedsLookahead {
        /// The configured window.
        window: SimDuration,
        /// The minimum inter-pool latency (the lookahead bound).
        lookahead: SimDuration,
    },
    /// A job depends on a job homed in a different pool; cross-pool
    /// dependency release is not part of the sharded model.
    TopologyCrossPoolDependency {
        /// The dependent job.
        job: JobId,
        /// The dependency in another pool.
        dep: JobId,
    },
    /// An opportunistic checkpoint timer with a zero evaluation interval.
    RedundancyZeroCheckInterval,
    /// An opportunistic checkpoint hazard threshold that is not a finite
    /// positive number.
    RedundancyBadHazardThreshold {
        /// The offending threshold.
        threshold: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoStations => f.write_str("a cluster needs at least one station"),
            ConfigError::ZeroPlacementsPerPoll => {
                f.write_str("placements_per_poll must be positive")
            }
            ConfigError::ZeroPollInterval => f.write_str("zero poll interval"),
            ConfigError::ZeroOwnerCheckInterval => f.write_str("zero owner-check interval"),
            ConfigError::ZeroPeriodicCheckpoint => {
                f.write_str("zero periodic-checkpoint interval")
            }
            ConfigError::ZeroMtbf => f.write_str("zero MTBF"),
            ConfigError::ZeroMttr => f.write_str("zero MTTR"),
            ConfigError::CoordinatorHostOutsideFleet { host } => {
                write!(f, "coordinator host {host} outside the fleet")
            }
            ConfigError::EmptyArchPattern => f.write_str("empty architecture pattern"),
            ConfigError::EmptyCapacityProfiles => f.write_str("empty capacity-profile pattern"),
            ConfigError::CapacityProfileZeroCpu { index } => {
                write!(f, "capacity profile {index} has zero CPU")
            }
            ConfigError::JobZeroCpuDemand { job } => {
                write!(f, "job {} demands zero CPU", job.0)
            }
            ConfigError::GangFractionalResources { job } => {
                write!(
                    f,
                    "job {} is a gang with a fractional resource demand — gangs need whole machines",
                    job.0
                )
            }
            ConfigError::ReservationZeroMachines => f.write_str("zero-machine reservation"),
            ConfigError::ReservationEmptyWindow => f.write_str("empty reservation window"),
            ConfigError::TopologyNoPools => f.write_str("a pool topology needs at least one pool"),
            ConfigError::TopologyMorePoolsThanStations { pools, stations } => {
                write!(f, "{pools} pools cannot partition {stations} stations")
            }
            ConfigError::TopologyWindowExceedsLookahead { window, lookahead } => write!(
                f,
                "synchronisation window {window} exceeds the {lookahead} inter-pool \
                 lookahead bound"
            ),
            ConfigError::TopologyCrossPoolDependency { job, dep } => write!(
                f,
                "{job} depends on {dep}, which is homed in a different pool"
            ),
            ConfigError::ReservationHolderOutsideFleet { holder } => {
                write!(f, "reservation holder {holder} outside the fleet")
            }
            ConfigError::ReservationWholeFleet { machines, stations } => {
                write!(f, "cannot reserve the entire fleet ({machines} of {stations})")
            }
            ConfigError::JobIdsNotDense => f.write_str("job ids must be dense and ordered"),
            ConfigError::JobHomeOutsideFleet { job, home } => {
                write!(f, "job {} homed at nonexistent station {home}", job.0)
            }
            ConfigError::JobDependencyOrder { job, dep } => {
                write!(
                    f,
                    "job {} depends on {} — dependencies must reference lower ids",
                    job.0, dep.0
                )
            }
            ConfigError::JobZeroWidth { job } => write!(f, "job {} has zero width", job.0),
            ConfigError::JobWidthExceedsFleet { job, width, stations } => {
                write!(
                    f,
                    "job {} needs {width} machines but the fleet has {stations}",
                    job.0
                )
            }
            ConfigError::ChaosScheduleUnsorted => {
                f.write_str("chaos schedule entries must be sorted by time")
            }
            ConfigError::ChaosZeroDuration => {
                f.write_str("chaos fault with a zero duration or delay")
            }
            ConfigError::ChaosPartitionZeroMachines => {
                f.write_str("chaos partition cuts off zero machines")
            }
            ConfigError::ChaosPartitionOutsideFleet { first_station, machines, stations } => {
                write!(
                    f,
                    "chaos partition [{first_station}, {}) outside the {stations}-station fleet",
                    first_station + machines
                )
            }
            ConfigError::ChaosZeroBackoff => f.write_str("zero chaos retry backoff base"),
            ConfigError::RedundancyZeroCheckInterval => {
                f.write_str("zero opportunistic-checkpoint evaluation interval")
            }
            ConfigError::RedundancyBadHazardThreshold { threshold } => {
                write!(f, "opportunistic-checkpoint hazard threshold {threshold} must be a finite positive number")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Stochastic station-failure injection.
///
/// The paper's §1 requirement: *"if a remote site running a background job
/// fails, the job should be restarted automatically at some other location
/// to guarantee job completion."* With failures enabled, each station
/// crashes after an exponential time-to-failure and recovers after an
/// exponential repair time; a crash destroys the foreign image on that
/// station (the job restarts from its last checkpoint at home) and freezes
/// the station's own queue until recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureConfig {
    /// Mean time between failures per station.
    pub mtbf: SimDuration,
    /// Mean time to repair.
    pub mttr: SimDuration,
}

impl FailureConfig {
    /// Checks the configuration, rejecting zero means.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.mtbf.is_zero() {
            return Err(ConfigError::ZeroMtbf);
        }
        if self.mttr.is_zero() {
            return Err(ConfigError::ZeroMttr);
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if either mean is zero.
    #[deprecated(note = "use `check()`, which returns a typed ConfigError instead of panicking")]
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// An advance reservation of remote capacity (paper §5, future-work item
/// 3: "Reservations guarantee computing capacity for users in advance in
/// order to conduct experiments in distributed computations").
///
/// During the window, up to `machines` stations are *fenced* for the
/// holder: foreign jobs of other users are evicted at the start, and only
/// the holder's queue may be served on fenced machines. Owners always keep
/// absolute priority — a fenced machine whose owner sits down is still
/// surrendered immediately, exactly like any other.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reservation {
    /// The station whose queue the reserved capacity serves.
    pub holder: NodeId,
    /// Number of machines to fence.
    pub machines: usize,
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl Reservation {
    /// Checks the reservation against a fleet of `stations` machines.
    pub fn check(&self, stations: usize) -> Result<(), ConfigError> {
        if self.machines == 0 {
            return Err(ConfigError::ReservationZeroMachines);
        }
        if self.from >= self.until {
            return Err(ConfigError::ReservationEmptyWindow);
        }
        if self.holder.as_usize() >= stations {
            return Err(ConfigError::ReservationHolderOutsideFleet { holder: self.holder });
        }
        if self.machines >= stations {
            return Err(ConfigError::ReservationWholeFleet { machines: self.machines, stations });
        }
        Ok(())
    }

    /// Validates the reservation.
    ///
    /// # Panics
    ///
    /// Panics on an empty window or zero machines.
    #[deprecated(note = "use `check()`, which returns a typed ConfigError instead of panicking")]
    pub fn validate(&self, stations: usize) {
        if let Err(e) = self.check(stations) {
            panic!("{e}");
        }
    }
}

/// What happens when a workstation owner returns while a foreign job runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionStrategy {
    /// The 1988 implementation (paper §4): stop the job in place and wait
    /// out a grace period; if the owner is still active when it expires,
    /// checkpoint and move. No work is ever lost, but the job's image
    /// occupies the owner's disk during the grace window.
    GraceThenCheckpoint {
        /// How long to wait before vacating (paper: 5 minutes).
        grace: SimDuration,
    },
    /// The §4 alternative the authors were considering: kill the job
    /// immediately (minimal owner interference) and rely on periodic
    /// checkpoints; work since the last checkpoint is redone.
    ImmediateKill {
        /// Interval between periodic while-running checkpoints.
        checkpoint_every: SimDuration,
    },
}

impl Default for EvictionStrategy {
    fn default() -> Self {
        EvictionStrategy::GraceThenCheckpoint {
            grace: SimDuration::from_minutes(5),
        }
    }
}

/// Which allocation policy the coordinator runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// The paper's Up-Down algorithm.
    UpDown(UpDownConfig),
    /// First-come-first-served over stations; no preemption.
    Fifo,
    /// Round-robin over demanding stations; no preemption.
    RoundRobin,
    /// Uniformly random demanding station; no preemption.
    Random,
    /// Capacity-aware best-fit packing for fractional workloads: serves
    /// requesting stations first-come-first-served but targets the free
    /// station with the *least* free CPU that still has any, packing
    /// residents together and keeping whole machines open for whole-demand
    /// jobs. No preemption.
    Frac,
    /// Up-Down plus speculative replication and an optional opportunistic
    /// checkpoint timer (see [`crate::redundancy`]). With
    /// [`RedundancyConfig::off`] this is bit-identical to
    /// [`PolicyKind::UpDown`].
    Redundant(RedundancyConfig),
}

impl Default for PolicyKind {
    fn default() -> Self {
        PolicyKind::UpDown(UpDownConfig::default())
    }
}

/// Full configuration of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of workstations (the paper observed 23).
    pub stations: usize,
    /// Master seed; every stochastic component derives a substream.
    pub seed: u64,
    /// The coordinator's allocation policy.
    pub policy: PolicyKind,
    /// Control-plane intervals and per-operation costs.
    pub costs: CostModel,
    /// Owner-return handling.
    pub eviction: EvictionStrategy,
    /// Owner-activity process parameters (shared base; stations get
    /// heterogeneous scales via `owner_heterogeneity`).
    pub owner: OwnerConfig,
    /// Spread of per-station activity scales (0 = identical owners).
    pub owner_heterogeneity: f64,
    /// Hardware profile applied to every station.
    pub station: StationProfile,
    /// Network parameters.
    pub bus: BusConfig,
    /// How local schedulers order their own queues.
    pub local_order: LocalOrder,
    /// Maximum placements started per coordinator poll (paper §4: one).
    pub placements_per_poll: usize,
    /// Prefer placement targets with the longest expected idle periods
    /// (paper §5 future-work item 1).
    pub history_aware_placement: bool,
    /// Optional stochastic station failures (None = stations never fail).
    pub failures: Option<FailureConfig>,
    /// The station hosting the central coordinator (paper §2.1: "One
    /// workstation holds the central coordinator"). If that station fails,
    /// allocation of new capacity stops until it recovers — running jobs
    /// are unaffected.
    pub coordinator_host: u32,
    /// Architecture of each station, cycled over the fleet (station `i`
    /// has `arch_pattern[i % len]`). The 1988 fleet is all-VAX
    /// (`vec![Arch::Vax]`); a mixed pattern reproduces the §5(4) planned
    /// SUN port, where placement must respect job binaries.
    pub arch_pattern: Vec<Arch>,
    /// Capacity vector of each station, cycled over the fleet (station `i`
    /// has `capacity_profiles[i % len]`), mirroring `arch_pattern`. The
    /// default — `vec![ResourceVec::WHOLE]` — gives every station exactly
    /// one whole machine, which together with whole-machine job demands
    /// reproduces the legacy single-occupancy model bit for bit.
    pub capacity_profiles: Vec<ResourceVec>,
    /// Store checkpoint files on a dedicated checkpoint server instead of
    /// the submitting workstation's disk (the §4 disk-server idea). The
    /// server has unbounded capacity, so home disks only gate the number
    /// of *executable* images, not standing checkpoints.
    pub checkpoint_server: bool,
    /// Advance capacity reservations (paper §5(3)).
    pub reservations: Vec<Reservation>,
    /// Record the full event trace (disable for huge benchmark runs).
    pub record_trace: bool,
    /// Optional deterministic fault injection (see [`crate::chaos`]).
    /// `None` — and `Some` with an empty schedule — leave the run
    /// bit-identical to an unconfigured one.
    pub chaos: Option<ChaosConfig>,
    /// Optional pool topology. `None` runs the classic monolithic
    /// simulation; `Some` partitions the fleet into per-pool shards that
    /// run as a conservative space-parallel simulation (see
    /// [`crate::shard`]). A one-pool topology is bit-identical to `None`.
    pub topology: Option<PoolTopology>,
}

/// Partition of the fleet into independently simulated pools.
///
/// Stations are split into `pools` contiguous, near-equal ranges; each
/// pool gets its own coordinator, queues, and event wheel. Pools exchange
/// cross-shard traffic (overflow job forwards) only at synchronisation
/// barriers, and any message sent at a barrier arrives no earlier than the
/// [`PoolLinks`] latency later — which is what lets shards advance one
/// window ahead of each other without risk of causality violations.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolTopology {
    /// Number of pools the fleet is split into.
    pub pools: usize,
    /// The inter-pool link model; its minimum latency bounds the lookahead.
    pub links: PoolLinks,
    /// Synchronisation-window length. `None` uses the full lookahead
    /// (`links.min_latency()`); an explicit value must not exceed it.
    pub window: Option<SimDuration>,
    /// Cap on overflow jobs a saturated pool may forward to an idle pool
    /// at each barrier. Zero disables cross-pool forwarding entirely.
    pub max_forwards_per_window: u32,
}

impl PoolTopology {
    /// A uniform mesh: `pools` pools, one `latency` on every inter-pool
    /// link, window equal to the lookahead, one forward per barrier.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is zero or `latency` is zero (delegated to
    /// [`PoolLinks::uniform`]).
    pub fn uniform(pools: usize, latency: SimDuration) -> Self {
        PoolTopology {
            pools,
            links: PoolLinks::uniform(pools, latency),
            window: None,
            max_forwards_per_window: 1,
        }
    }

    /// The effective synchronisation window: the explicit `window` if set,
    /// otherwise the full conservative lookahead.
    pub fn effective_window(&self) -> SimDuration {
        self.window.unwrap_or_else(|| self.links.min_latency())
    }

    /// The station-index range owned by pool `pool` when partitioning
    /// `stations` stations: contiguous ranges, sizes differing by at most
    /// one, earlier pools taking the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `pool >= self.pools`.
    pub fn range(&self, pool: usize, stations: usize) -> std::ops::Range<usize> {
        assert!(pool < self.pools, "pool {pool} out of range");
        let base = stations / self.pools;
        let rem = stations % self.pools;
        let start = pool * base + pool.min(rem);
        let len = base + usize::from(pool < rem);
        start..start + len
    }

    /// The pool owning global station index `station`.
    ///
    /// # Panics
    ///
    /// Panics if `station >= stations`.
    pub fn pool_of(&self, station: usize, stations: usize) -> usize {
        assert!(station < stations, "station {station} outside the fleet");
        let base = stations / self.pools;
        let rem = stations % self.pools;
        let fat = rem * (base + 1); // stations held by the larger pools
        if station < fat {
            station / (base + 1)
        } else {
            rem + (station - fat) / base.max(1)
        }
    }

    /// Checks the topology against a fleet size.
    pub fn check(&self, stations: usize) -> Result<(), ConfigError> {
        if self.pools == 0 {
            return Err(ConfigError::TopologyNoPools);
        }
        if self.pools > stations {
            return Err(ConfigError::TopologyMorePoolsThanStations {
                pools: self.pools,
                stations,
            });
        }
        if let Some(w) = self.window {
            // A zero window would never make progress; report it through
            // the same lookahead-bound error (an empty window is outside
            // the valid (0, lookahead] interval on both ends).
            if w.is_zero() || w > self.links.min_latency() {
                return Err(ConfigError::TopologyWindowExceedsLookahead {
                    window: w,
                    lookahead: self.links.min_latency(),
                });
            }
        }
        debug_assert_eq!(self.links.pools(), self.pools, "link mesh size mismatch");
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            stations: 23,
            seed: 1988,
            policy: PolicyKind::default(),
            costs: CostModel::default(),
            eviction: EvictionStrategy::default(),
            owner: OwnerConfig::default(),
            owner_heterogeneity: 0.4,
            station: StationProfile::default(),
            bus: BusConfig::default(),
            local_order: LocalOrder::Fifo,
            placements_per_poll: 1,
            history_aware_placement: false,
            failures: None,
            coordinator_host: 0,
            arch_pattern: vec![Arch::Vax],
            capacity_profiles: vec![ResourceVec::WHOLE],
            checkpoint_server: false,
            reservations: Vec::new(),
            record_trace: true,
            chaos: None,
            topology: None,
        }
    }
}

impl ClusterConfig {
    /// Starts a fluent builder seeded with [`ClusterConfig::default`] (the
    /// paper's 23-station setup); its `build()` runs [`check`](Self::check).
    ///
    /// # Examples
    ///
    /// ```
    /// use condor_core::config::ClusterConfig;
    ///
    /// let config = ClusterConfig::builder()
    ///     .stations(8)
    ///     .seed(7)
    ///     .record_trace(false)
    ///     .build()
    ///     .expect("valid configuration");
    /// assert_eq!(config.stations, 8);
    /// ```
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder { config: ClusterConfig::default() }
    }

    /// Checks the configuration for structural impossibilities.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.stations == 0 {
            return Err(ConfigError::NoStations);
        }
        if self.placements_per_poll == 0 {
            return Err(ConfigError::ZeroPlacementsPerPoll);
        }
        if self.costs.coordinator_poll_interval.is_zero() {
            return Err(ConfigError::ZeroPollInterval);
        }
        if self.costs.owner_check_interval.is_zero() {
            return Err(ConfigError::ZeroOwnerCheckInterval);
        }
        if let EvictionStrategy::ImmediateKill { checkpoint_every } = self.eviction {
            if checkpoint_every.is_zero() {
                return Err(ConfigError::ZeroPeriodicCheckpoint);
            }
        }
        if let Some(f) = &self.failures {
            f.check()?;
        }
        if (self.coordinator_host as usize) >= self.stations {
            return Err(ConfigError::CoordinatorHostOutsideFleet { host: self.coordinator_host });
        }
        if self.arch_pattern.is_empty() {
            return Err(ConfigError::EmptyArchPattern);
        }
        if self.capacity_profiles.is_empty() {
            return Err(ConfigError::EmptyCapacityProfiles);
        }
        for (index, p) in self.capacity_profiles.iter().enumerate() {
            if p.cpu_milli == 0 {
                return Err(ConfigError::CapacityProfileZeroCpu { index });
            }
        }
        for r in &self.reservations {
            r.check(self.stations)?;
        }
        if let Some(c) = &self.chaos {
            c.check(self.stations)?;
        }
        if let Some(t) = &self.topology {
            t.check(self.stations)?;
        }
        if let PolicyKind::Redundant(r) = &self.policy {
            r.check()?;
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on structurally impossible configurations.
    #[deprecated(note = "use `check()`, which returns a typed ConfigError instead of panicking")]
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// Fluent constructor for [`ClusterConfig`], created by
/// [`ClusterConfig::builder`].
///
/// Every field starts at its [`ClusterConfig::default`] value; setters
/// override individual fields and [`build`](Self::build) validates the
/// result — invalid combinations surface as a [`ConfigError`] instead of a
/// panic deep inside the simulator.
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Sets the number of workstations.
    pub fn stations(mut self, stations: usize) -> Self {
        self.config.stations = stations;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the coordinator's allocation policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets control-plane intervals and per-operation costs.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.config.costs = costs;
        self
    }

    /// Sets owner-return handling.
    pub fn eviction(mut self, eviction: EvictionStrategy) -> Self {
        self.config.eviction = eviction;
        self
    }

    /// Sets the owner-activity process parameters.
    pub fn owner(mut self, owner: OwnerConfig) -> Self {
        self.config.owner = owner;
        self
    }

    /// Sets the spread of per-station activity scales.
    pub fn owner_heterogeneity(mut self, spread: f64) -> Self {
        self.config.owner_heterogeneity = spread;
        self
    }

    /// Sets the hardware profile applied to every station.
    pub fn station(mut self, station: StationProfile) -> Self {
        self.config.station = station;
        self
    }

    /// Sets the network parameters.
    pub fn bus(mut self, bus: BusConfig) -> Self {
        self.config.bus = bus;
        self
    }

    /// Sets how local schedulers order their own queues.
    pub fn local_order(mut self, order: LocalOrder) -> Self {
        self.config.local_order = order;
        self
    }

    /// Sets the maximum placements started per coordinator poll.
    pub fn placements_per_poll(mut self, n: usize) -> Self {
        self.config.placements_per_poll = n;
        self
    }

    /// Enables or disables history-aware placement.
    pub fn history_aware_placement(mut self, enabled: bool) -> Self {
        self.config.history_aware_placement = enabled;
        self
    }

    /// Enables stochastic station failures.
    pub fn failures(mut self, failures: FailureConfig) -> Self {
        self.config.failures = Some(failures);
        self
    }

    /// Sets the station hosting the central coordinator.
    pub fn coordinator_host(mut self, host: u32) -> Self {
        self.config.coordinator_host = host;
        self
    }

    /// Sets the architecture pattern cycled over the fleet.
    pub fn arch_pattern(mut self, pattern: Vec<Arch>) -> Self {
        self.config.arch_pattern = pattern;
        self
    }

    /// Sets the capacity-profile pattern cycled over the fleet.
    pub fn capacity_profiles(mut self, profiles: Vec<ResourceVec>) -> Self {
        self.config.capacity_profiles = profiles;
        self
    }

    /// Enables the dedicated checkpoint server.
    pub fn checkpoint_server(mut self, enabled: bool) -> Self {
        self.config.checkpoint_server = enabled;
        self
    }

    /// Adds one advance capacity reservation.
    pub fn reservation(mut self, r: Reservation) -> Self {
        self.config.reservations.push(r);
        self
    }

    /// Replaces the whole reservation list.
    pub fn reservations(mut self, rs: Vec<Reservation>) -> Self {
        self.config.reservations = rs;
        self
    }

    /// Enables or disables full event-trace recording.
    pub fn record_trace(mut self, enabled: bool) -> Self {
        self.config.record_trace = enabled;
        self
    }

    /// Enables deterministic chaos fault injection.
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.config.chaos = Some(chaos);
        self
    }

    /// Partitions the fleet into per-pool shards (see [`PoolTopology`]).
    pub fn topology(mut self, topology: PoolTopology) -> Self {
        self.config.topology = Some(topology);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ClusterConfig, ConfigError> {
        self.config.check()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_setup() {
        let c = ClusterConfig::default();
        c.check().expect("default config is valid");
        assert_eq!(c.stations, 23);
        assert_eq!(c.placements_per_poll, 1);
        assert!(matches!(c.policy, PolicyKind::UpDown(_)));
        assert!(matches!(
            c.eviction,
            EvictionStrategy::GraceThenCheckpoint { grace } if grace == SimDuration::from_minutes(5)
        ));
        assert!(!c.history_aware_placement);
        assert!(c.failures.is_none());
        assert_eq!(c.coordinator_host, 0);
        assert!(!c.checkpoint_server);
        assert_eq!(c.arch_pattern, vec![Arch::Vax]);
        assert!(c.reservations.is_empty());
    }

    #[test]
    fn whole_fleet_reservation_rejected() {
        let err = ClusterConfig {
            reservations: vec![Reservation {
                holder: NodeId::new(0),
                machines: 23,
                from: SimTime::ZERO,
                until: SimTime::from_hours(1),
            }],
            ..ClusterConfig::default()
        }
        .check()
        .unwrap_err();
        assert_eq!(err, ConfigError::ReservationWholeFleet { machines: 23, stations: 23 });
        assert!(err.to_string().contains("entire fleet"));
    }

    #[test]
    fn zero_mtbf_rejected() {
        let err = ClusterConfig {
            failures: Some(FailureConfig {
                mtbf: SimDuration::ZERO,
                mttr: SimDuration::HOUR,
            }),
            ..ClusterConfig::default()
        }
        .check()
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroMtbf);
        assert_eq!(err.to_string(), "zero MTBF");
    }

    #[test]
    fn coordinator_host_must_exist() {
        let err = ClusterConfig {
            coordinator_host: 99,
            ..ClusterConfig::default()
        }
        .check()
        .unwrap_err();
        assert_eq!(err, ConfigError::CoordinatorHostOutsideFleet { host: 99 });
        assert!(err.to_string().contains("outside the fleet"));
    }

    #[test]
    fn zero_stations_rejected() {
        let err = ClusterConfig { stations: 0, ..ClusterConfig::default() }
            .check()
            .unwrap_err();
        assert_eq!(err, ConfigError::NoStations);
        assert!(err.to_string().contains("at least one station"));
    }

    #[test]
    fn zero_placements_rejected() {
        let err = ClusterConfig { placements_per_poll: 0, ..ClusterConfig::default() }
            .check()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroPlacementsPerPoll);
    }

    #[test]
    fn zero_periodic_checkpoint_rejected() {
        let err = ClusterConfig {
            eviction: EvictionStrategy::ImmediateKill {
                checkpoint_every: SimDuration::ZERO,
            },
            ..ClusterConfig::default()
        }
        .check()
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroPeriodicCheckpoint);
        assert!(err.to_string().contains("periodic-checkpoint"));
    }

    #[test]
    fn capacity_profiles_validated() {
        let err = ClusterConfig { capacity_profiles: Vec::new(), ..ClusterConfig::default() }
            .check()
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptyCapacityProfiles);

        let err = ClusterConfig::builder()
            .capacity_profiles(vec![ResourceVec::WHOLE, ResourceVec::new(0, 1000)])
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::CapacityProfileZeroCpu { index: 1 });
        assert!(err.to_string().contains("zero CPU"));

        let c = ClusterConfig::builder()
            .capacity_profiles(vec![ResourceVec::share(2000)])
            .build()
            .expect("oversized capacity is legal");
        assert_eq!(c.capacity_profiles[0].cpu_milli, 2000);
    }

    #[test]
    fn reservation_checks_run_standalone() {
        let r = Reservation {
            holder: NodeId::new(5),
            machines: 2,
            from: SimTime::ZERO,
            until: SimTime::from_hours(1),
        };
        assert_eq!(r.check(23), Ok(()));
        assert_eq!(
            r.check(4),
            Err(ConfigError::ReservationHolderOutsideFleet { holder: NodeId::new(5) })
        );
        let empty = Reservation { until: SimTime::ZERO, ..r };
        assert_eq!(empty.check(23), Err(ConfigError::ReservationEmptyWindow));
        let none = Reservation { machines: 0, ..r };
        assert_eq!(none.check(23), Err(ConfigError::ReservationZeroMachines));
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "zero MTBF")]
    fn deprecated_validate_still_panics() {
        FailureConfig { mtbf: SimDuration::ZERO, mttr: SimDuration::HOUR }.validate();
    }

    #[test]
    fn builder_builds_and_validates() {
        let c = ClusterConfig::builder()
            .stations(8)
            .seed(42)
            .placements_per_poll(3)
            .record_trace(false)
            .reservation(Reservation {
                holder: NodeId::new(1),
                machines: 2,
                from: SimTime::ZERO,
                until: SimTime::from_hours(2),
            })
            .build()
            .expect("valid config");
        assert_eq!(c.stations, 8);
        assert_eq!(c.seed, 42);
        assert_eq!(c.placements_per_poll, 3);
        assert!(!c.record_trace);
        assert_eq!(c.reservations.len(), 1);
        // Untouched fields keep their defaults.
        assert!(matches!(c.policy, PolicyKind::UpDown(_)));

        let err = ClusterConfig::builder().stations(0).build().unwrap_err();
        assert_eq!(err, ConfigError::NoStations);
    }
}
