//! The cluster's event trace: a replayable record of everything observable.
//!
//! Experiments and the metrics crate consume this trace instead of poking
//! at simulator internals; integration tests assert protocol invariants
//! over it (e.g. *every placement is eventually matched by a checkpoint,
//! kill, or completion*).

use condor_net::NodeId;
use condor_sim::time::SimTime;

use crate::job::{JobId, PreemptReason};

/// One observable event in a cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A job entered its home station's queue.
    JobArrived {
        /// The job.
        job: JobId,
    },
    /// A job was rejected at submission (home disk full).
    JobRejected {
        /// The job.
        job: JobId,
    },
    /// The coordinator granted a machine and the image transfer began.
    PlacementStarted {
        /// The job.
        job: JobId,
        /// Destination machine.
        target: NodeId,
    },
    /// A granted placement was abandoned because the target's disk was
    /// full (paper §4).
    PlacementDiskRejected {
        /// The job.
        job: JobId,
        /// The machine that could not take the image.
        target: NodeId,
    },
    /// The image arrived and the job started (or resumed) executing.
    JobStarted {
        /// The job.
        job: JobId,
        /// Hosting machine.
        on: NodeId,
    },
    /// The owner returned; the job was stopped in place pending the grace
    /// period.
    JobSuspended {
        /// The job.
        job: JobId,
        /// Hosting machine.
        on: NodeId,
    },
    /// The owner left again within the grace period; the job resumed where
    /// it was.
    JobResumedInPlace {
        /// The job.
        job: JobId,
        /// Hosting machine.
        on: NodeId,
    },
    /// A checkpoint transfer back to the home station began.
    CheckpointStarted {
        /// The job.
        job: JobId,
        /// Machine being vacated.
        from: NodeId,
        /// Why the job is leaving.
        reason: PreemptReason,
    },
    /// The checkpoint landed at home; the job is queued again.
    CheckpointCompleted {
        /// The job.
        job: JobId,
        /// Machine vacated.
        from: NodeId,
    },
    /// The job was killed without an outgoing checkpoint (immediate-kill
    /// strategy); work since the last periodic checkpoint was lost.
    JobKilled {
        /// The job.
        job: JobId,
        /// Machine it was killed on.
        on: NodeId,
    },
    /// A periodic (while-running) checkpoint completed.
    PeriodicCheckpoint {
        /// The job.
        job: JobId,
        /// Hosting machine.
        on: NodeId,
    },
    /// All demand delivered.
    JobCompleted {
        /// The job.
        job: JobId,
        /// Machine it finished on.
        on: NodeId,
    },
    /// A workstation owner started using their machine.
    OwnerActive {
        /// The station.
        station: NodeId,
    },
    /// A workstation owner went idle.
    OwnerIdle {
        /// The station.
        station: NodeId,
    },
    /// A workstation crashed; any foreign image on it is lost.
    StationFailed {
        /// The station.
        station: NodeId,
    },
    /// A crashed workstation came back.
    StationRecovered {
        /// The station.
        station: NodeId,
    },
    /// A foreign job's progress was rolled back to its last checkpoint
    /// because its host crashed.
    CrashRollback {
        /// The job.
        job: JobId,
        /// The crashed host.
        on: NodeId,
    },
    /// A capacity reservation window opened; fenced machines now serve
    /// only the holder.
    ReservationStarted {
        /// Beneficiary station.
        holder: NodeId,
        /// Machines fenced.
        machines: u32,
    },
    /// A reservation window closed; its machines rejoin the general pool.
    ReservationEnded {
        /// Beneficiary station.
        holder: NodeId,
    },
    /// One coordinator poll cycle ran.
    CoordinatorPolled {
        /// Machines currently able to host.
        free_machines: u32,
        /// Jobs waiting across all queues.
        waiting_jobs: u32,
        /// Placement orders issued this cycle.
        placements: u32,
        /// Preemption orders issued this cycle.
        preemptions: u32,
    },
}

/// A timestamped trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// An append-only trace with query helpers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled trace.
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled trace (events are dropped); cuts memory for very
    /// long benchmark runs.
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Appends an event (no-op when disabled).
    pub fn record(&mut self, at: SimTime, kind: TraceKind) {
        if self.enabled {
            self.events.push(TraceEvent { at, kind });
        }
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events matching a predicate.
    pub fn filtered<'a, F>(&'a self, mut pred: F) -> impl Iterator<Item = &'a TraceEvent>
    where
        F: FnMut(&TraceKind) -> bool + 'a,
    {
        self.events.iter().filter(move |e| pred(&e.kind))
    }

    /// Counts events matching a predicate.
    pub fn count<F>(&self, pred: F) -> usize
    where
        F: FnMut(&TraceKind) -> bool,
    {
        let mut pred = pred;
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), TraceKind::JobArrived { job: JobId(1) });
        t.record(
            SimTime::from_secs(2),
            TraceKind::OwnerActive { station: NodeId::new(3) },
        );
        t.record(SimTime::from_secs(3), TraceKind::JobArrived { job: JobId(2) });
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let arrivals = t.count(|k| matches!(k, TraceKind::JobArrived { .. }));
        assert_eq!(arrivals, 2);
        let first = t
            .filtered(|k| matches!(k, TraceKind::OwnerActive { .. }))
            .next()
            .unwrap();
        assert_eq!(first.at, SimTime::from_secs(2));
    }

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::JobArrived { job: JobId(1) });
        assert!(t.is_empty());
        assert_eq!(t.events(), &[]);
    }
}
