//! The cluster's event trace: a replayable record of everything observable.
//!
//! Experiments and the metrics crate consume this trace instead of poking
//! at simulator internals; integration tests assert protocol invariants
//! over it (e.g. *every placement is eventually matched by a checkpoint,
//! kill, or completion*).

use condor_net::NodeId;
use condor_sim::time::SimTime;

use crate::job::{JobId, PreemptReason};

/// One observable event in a cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A job entered its home station's queue.
    JobArrived {
        /// The job.
        job: JobId,
    },
    /// A job was rejected at submission (home disk full).
    JobRejected {
        /// The job.
        job: JobId,
    },
    /// The coordinator granted a machine and the image transfer began.
    PlacementStarted {
        /// The job.
        job: JobId,
        /// Destination machine.
        target: NodeId,
    },
    /// A granted placement was abandoned because the target's disk was
    /// full (paper §4).
    PlacementDiskRejected {
        /// The job.
        job: JobId,
        /// The machine that could not take the image.
        target: NodeId,
    },
    /// The image arrived and the job started (or resumed) executing.
    JobStarted {
        /// The job.
        job: JobId,
        /// Hosting machine.
        on: NodeId,
    },
    /// The owner returned; the job was stopped in place pending the grace
    /// period.
    JobSuspended {
        /// The job.
        job: JobId,
        /// Hosting machine.
        on: NodeId,
    },
    /// The owner left again within the grace period; the job resumed where
    /// it was.
    JobResumedInPlace {
        /// The job.
        job: JobId,
        /// Hosting machine.
        on: NodeId,
    },
    /// A checkpoint transfer back to the home station began.
    CheckpointStarted {
        /// The job.
        job: JobId,
        /// Machine being vacated.
        from: NodeId,
        /// Why the job is leaving.
        reason: PreemptReason,
        /// Size of the checkpoint image on the wire.
        bytes: u64,
    },
    /// The checkpoint landed at home; the job is queued again.
    CheckpointCompleted {
        /// The job.
        job: JobId,
        /// Machine vacated.
        from: NodeId,
        /// Size of the checkpoint image that just landed — mirrored from
        /// the matching [`TraceKind::CheckpointStarted`] so transfer
        /// accounting reads one event instead of joining start/complete
        /// pairs.
        bytes: u64,
    },
    /// The job was killed without an outgoing checkpoint (immediate-kill
    /// strategy); work since the last periodic checkpoint was lost.
    JobKilled {
        /// The job.
        job: JobId,
        /// Machine it was killed on.
        on: NodeId,
    },
    /// A periodic (while-running) checkpoint completed.
    PeriodicCheckpoint {
        /// The job.
        job: JobId,
        /// Hosting machine.
        on: NodeId,
    },
    /// All demand delivered.
    JobCompleted {
        /// The job.
        job: JobId,
        /// Machine it finished on.
        on: NodeId,
    },
    /// A workstation owner started using their machine.
    OwnerActive {
        /// The station.
        station: NodeId,
    },
    /// A workstation owner went idle.
    OwnerIdle {
        /// The station.
        station: NodeId,
    },
    /// A workstation crashed; any foreign image on it is lost.
    StationFailed {
        /// The station.
        station: NodeId,
    },
    /// A crashed workstation came back.
    StationRecovered {
        /// The station.
        station: NodeId,
    },
    /// A foreign job's progress was rolled back to its last checkpoint
    /// because its host crashed.
    CrashRollback {
        /// The job.
        job: JobId,
        /// The crashed host.
        on: NodeId,
    },
    /// A capacity reservation window opened; fenced machines now serve
    /// only the holder.
    ReservationStarted {
        /// Beneficiary station.
        holder: NodeId,
        /// Machines fenced.
        machines: u32,
    },
    /// A reservation window closed; its machines rejoin the general pool.
    ReservationEnded {
        /// Beneficiary station.
        holder: NodeId,
    },
    /// One coordinator poll cycle ran.
    CoordinatorPolled {
        /// Machines currently able to host.
        free_machines: u32,
        /// Jobs waiting across all queues.
        waiting_jobs: u32,
        /// Placement orders issued this cycle.
        placements: u32,
        /// Preemption orders issued this cycle.
        preemptions: u32,
    },
    /// Fault injection: a scheduled coordinator poll message was lost on
    /// the control plane; the cycle is skipped entirely.
    ChaosPollLost,
    /// Fault injection: a coordinator poll message was delayed; the poll
    /// body runs off-grid at the emission time of this marker.
    ChaosPollDelayed {
        /// How late the poll ran, in milliseconds.
        delay_ms: u64,
    },
    /// Fault injection: a duplicated control message arrived and was
    /// recognised by its sequence number and discarded — no state change.
    ChaosDupDropped,
    /// Fault injection: a checkpoint transfer arrived corrupted; the image
    /// is discarded and the transfer retried with capped backoff.
    ChaosCkptCorrupted {
        /// The job whose checkpoint was corrupted.
        job: JobId,
        /// The station the transfer left from.
        from: NodeId,
        /// Retry attempt number (1 = first corruption of this transfer).
        attempt: u32,
    },
    /// Fault injection: a station lost its link to the coordinator
    /// (transient partition); it keeps its local scheduler running.
    ChaosLinkDown {
        /// The partitioned station.
        station: NodeId,
    },
    /// Fault injection: a partitioned station's link healed.
    ChaosLinkUp {
        /// The reconnected station.
        station: NodeId,
    },
    /// Fault injection: the coordinator process went down; polls are
    /// skipped until recovery, local schedulers run autonomously.
    ChaosCoordDown,
    /// Fault injection: the coordinator recovered; polling resumes on the
    /// next grid point.
    ChaosCoordUp,
    /// A local scheduler autonomously started a home-queued job on its own
    /// idle machine while the coordinator was unreachable (the paper's
    /// hybrid-structure degradation story: stations never depend on the
    /// central coordinator to use their own capacity).
    ChaosLocalStart {
        /// The job started locally.
        job: JobId,
        /// The home station it started on.
        on: NodeId,
    },
    /// A saturated pool handed a queued job to an idle pool at a
    /// synchronisation barrier (sharded runs only); the job travels the
    /// inter-pool link and is adopted on arrival.
    JobForwarded {
        /// The job handed over.
        job: JobId,
        /// The receiving pool's index.
        to_pool: u32,
    },
    /// A forwarded job arrived at its new pool and entered a local queue
    /// there (the cross-pool counterpart of [`TraceKind::JobArrived`]).
    JobAdopted {
        /// The job.
        job: JobId,
        /// The adopting home station.
        on: NodeId,
    },
    /// A *fractional* capacity grant: the coordinator granted the job a
    /// sub-whole share of a station, emitted immediately before the
    /// matching [`TraceKind::PlacementStarted`]. Whole-machine placements
    /// (the legacy default) never emit this, keeping default traces
    /// bit-identical to the single-occupancy model.
    JobGranted {
        /// The job.
        job: JobId,
        /// The granted station.
        on: NodeId,
        /// Granted CPU share in milli-machines.
        cpu_milli: u32,
        /// Granted memory share in milli-machines.
        mem_milli: u32,
        /// Granted tag/accelerator share in milli-units.
        tag_milli: u32,
    },
    /// A speculative replica of a queued job started placement on an
    /// otherwise-idle station (see [`crate::redundancy`]). The job's own
    /// lifecycle events keep tracking the primary copy; replicas announce
    /// themselves only through this pair of events.
    ReplicaSpawned {
        /// The replicated job.
        job: JobId,
        /// The station hosting the replica.
        on: NodeId,
    },
    /// A replica was cancelled — by the primary finishing first, another
    /// replica winning, the host's owner returning, a station crash, a
    /// reservation fence, or the end of the run. Every
    /// [`TraceKind::ReplicaSpawned`] is matched by exactly one
    /// `ReplicaCancelled` or one job completion on the replica's station.
    ReplicaCancelled {
        /// The replicated job.
        job: JobId,
        /// The station that hosted the replica.
        on: NodeId,
        /// Reference-machine work the replica had accrued, in
        /// milliseconds — the cancellation's contribution to
        /// [`Totals::wasted_replica_work`](crate::cluster::Totals::wasted_replica_work).
        wasted_ms: u64,
    },
}

impl TraceKind {
    /// Number of distinct trace-event kinds.
    pub const COUNT: usize = 34;

    /// Dense index of this kind in `0..COUNT`; stable across a release,
    /// used by the telemetry layer for per-kind counter arrays.
    pub fn index(&self) -> usize {
        match self {
            TraceKind::JobArrived { .. } => 0,
            TraceKind::JobRejected { .. } => 1,
            TraceKind::PlacementStarted { .. } => 2,
            TraceKind::PlacementDiskRejected { .. } => 3,
            TraceKind::JobStarted { .. } => 4,
            TraceKind::JobSuspended { .. } => 5,
            TraceKind::JobResumedInPlace { .. } => 6,
            TraceKind::CheckpointStarted { .. } => 7,
            TraceKind::CheckpointCompleted { .. } => 8,
            TraceKind::JobKilled { .. } => 9,
            TraceKind::PeriodicCheckpoint { .. } => 10,
            TraceKind::JobCompleted { .. } => 11,
            TraceKind::OwnerActive { .. } => 12,
            TraceKind::OwnerIdle { .. } => 13,
            TraceKind::StationFailed { .. } => 14,
            TraceKind::StationRecovered { .. } => 15,
            TraceKind::CrashRollback { .. } => 16,
            TraceKind::ReservationStarted { .. } => 17,
            TraceKind::ReservationEnded { .. } => 18,
            TraceKind::CoordinatorPolled { .. } => 19,
            TraceKind::ChaosPollLost => 20,
            TraceKind::ChaosPollDelayed { .. } => 21,
            TraceKind::ChaosDupDropped => 22,
            TraceKind::ChaosCkptCorrupted { .. } => 23,
            TraceKind::ChaosLinkDown { .. } => 24,
            TraceKind::ChaosLinkUp { .. } => 25,
            TraceKind::ChaosCoordDown => 26,
            TraceKind::ChaosCoordUp => 27,
            TraceKind::ChaosLocalStart { .. } => 28,
            TraceKind::JobForwarded { .. } => 29,
            TraceKind::JobAdopted { .. } => 30,
            TraceKind::JobGranted { .. } => 31,
            TraceKind::ReplicaSpawned { .. } => 32,
            TraceKind::ReplicaCancelled { .. } => 33,
        }
    }

    /// Stable snake_case name of this kind; doubles as the `"kind"` token
    /// in the JSONL trace format.
    pub fn name(&self) -> &'static str {
        KIND_NAMES[self.index()]
    }

    /// The name for each dense index, in [`TraceKind::index`] order.
    pub fn names() -> &'static [&'static str; TraceKind::COUNT] {
        &KIND_NAMES
    }

    /// The dense index for a snake_case kind name, or `None` if the name
    /// is not a known kind. Inverse of [`TraceKind::name`]; used by the
    /// CLI's `--kind` trace filter.
    pub fn index_of_name(name: &str) -> Option<usize> {
        KIND_NAMES.iter().position(|&n| n == name)
    }

    /// The job this event concerns, if it is a job-lifecycle event.
    /// Owner, station, reservation, and poll events return `None`.
    pub fn job(&self) -> Option<JobId> {
        match self {
            TraceKind::JobArrived { job }
            | TraceKind::JobRejected { job }
            | TraceKind::PlacementStarted { job, .. }
            | TraceKind::PlacementDiskRejected { job, .. }
            | TraceKind::JobStarted { job, .. }
            | TraceKind::JobSuspended { job, .. }
            | TraceKind::JobResumedInPlace { job, .. }
            | TraceKind::CheckpointStarted { job, .. }
            | TraceKind::CheckpointCompleted { job, .. }
            | TraceKind::JobKilled { job, .. }
            | TraceKind::PeriodicCheckpoint { job, .. }
            | TraceKind::JobCompleted { job, .. }
            | TraceKind::CrashRollback { job, .. }
            | TraceKind::ChaosCkptCorrupted { job, .. }
            | TraceKind::ChaosLocalStart { job, .. }
            | TraceKind::JobForwarded { job, .. }
            | TraceKind::JobAdopted { job, .. }
            | TraceKind::JobGranted { job, .. }
            | TraceKind::ReplicaSpawned { job, .. }
            | TraceKind::ReplicaCancelled { job, .. } => Some(*job),
            TraceKind::OwnerActive { .. }
            | TraceKind::OwnerIdle { .. }
            | TraceKind::StationFailed { .. }
            | TraceKind::StationRecovered { .. }
            | TraceKind::ReservationStarted { .. }
            | TraceKind::ReservationEnded { .. }
            | TraceKind::CoordinatorPolled { .. }
            | TraceKind::ChaosPollLost
            | TraceKind::ChaosPollDelayed { .. }
            | TraceKind::ChaosDupDropped
            | TraceKind::ChaosLinkDown { .. }
            | TraceKind::ChaosLinkUp { .. }
            | TraceKind::ChaosCoordDown
            | TraceKind::ChaosCoordUp => None,
        }
    }

    /// Rewrites every job id through `job` and every station id through
    /// `node`, returning the remapped kind. Used by the sharded runner's
    /// deterministic merge to translate a pool's local numbering back into
    /// the fleet-global one; kinds without ids pass through unchanged.
    pub(crate) fn remapped(
        self,
        job: &impl Fn(JobId) -> JobId,
        node: &impl Fn(NodeId) -> NodeId,
    ) -> TraceKind {
        use TraceKind::*;
        match self {
            JobArrived { job: j } => JobArrived { job: job(j) },
            JobRejected { job: j } => JobRejected { job: job(j) },
            PlacementStarted { job: j, target } => {
                PlacementStarted { job: job(j), target: node(target) }
            }
            PlacementDiskRejected { job: j, target } => {
                PlacementDiskRejected { job: job(j), target: node(target) }
            }
            JobStarted { job: j, on } => JobStarted { job: job(j), on: node(on) },
            JobSuspended { job: j, on } => JobSuspended { job: job(j), on: node(on) },
            JobResumedInPlace { job: j, on } => JobResumedInPlace { job: job(j), on: node(on) },
            CheckpointStarted { job: j, from, reason, bytes } => {
                CheckpointStarted { job: job(j), from: node(from), reason, bytes }
            }
            CheckpointCompleted { job: j, from, bytes } => {
                CheckpointCompleted { job: job(j), from: node(from), bytes }
            }
            JobKilled { job: j, on } => JobKilled { job: job(j), on: node(on) },
            PeriodicCheckpoint { job: j, on } => PeriodicCheckpoint { job: job(j), on: node(on) },
            JobCompleted { job: j, on } => JobCompleted { job: job(j), on: node(on) },
            OwnerActive { station } => OwnerActive { station: node(station) },
            OwnerIdle { station } => OwnerIdle { station: node(station) },
            StationFailed { station } => StationFailed { station: node(station) },
            StationRecovered { station } => StationRecovered { station: node(station) },
            CrashRollback { job: j, on } => CrashRollback { job: job(j), on: node(on) },
            ReservationStarted { holder, machines } => {
                ReservationStarted { holder: node(holder), machines }
            }
            ReservationEnded { holder } => ReservationEnded { holder: node(holder) },
            CoordinatorPolled { .. }
            | ChaosPollLost
            | ChaosPollDelayed { .. }
            | ChaosDupDropped
            | ChaosCoordDown
            | ChaosCoordUp => self,
            ChaosCkptCorrupted { job: j, from, attempt } => {
                ChaosCkptCorrupted { job: job(j), from: node(from), attempt }
            }
            ChaosLinkDown { station } => ChaosLinkDown { station: node(station) },
            ChaosLinkUp { station } => ChaosLinkUp { station: node(station) },
            ChaosLocalStart { job: j, on } => ChaosLocalStart { job: job(j), on: node(on) },
            JobForwarded { job: j, to_pool } => JobForwarded { job: job(j), to_pool },
            JobAdopted { job: j, on } => JobAdopted { job: job(j), on: node(on) },
            JobGranted { job: j, on, cpu_milli, mem_milli, tag_milli } => {
                JobGranted { job: job(j), on: node(on), cpu_milli, mem_milli, tag_milli }
            }
            ReplicaSpawned { job: j, on } => ReplicaSpawned { job: job(j), on: node(on) },
            ReplicaCancelled { job: j, on, wasted_ms } => {
                ReplicaCancelled { job: job(j), on: node(on), wasted_ms }
            }
        }
    }
}

static KIND_NAMES: [&str; TraceKind::COUNT] = [
    "job_arrived",
    "job_rejected",
    "placement_started",
    "placement_disk_rejected",
    "job_started",
    "job_suspended",
    "job_resumed_in_place",
    "checkpoint_started",
    "checkpoint_completed",
    "job_killed",
    "periodic_checkpoint",
    "job_completed",
    "owner_active",
    "owner_idle",
    "station_failed",
    "station_recovered",
    "crash_rollback",
    "reservation_started",
    "reservation_ended",
    "coordinator_polled",
    "chaos_poll_lost",
    "chaos_poll_delayed",
    "chaos_dup_dropped",
    "chaos_ckpt_corrupted",
    "chaos_link_down",
    "chaos_link_up",
    "chaos_coord_down",
    "chaos_coord_up",
    "chaos_local_start",
    "job_forwarded",
    "job_adopted",
    "job_granted",
    "replica_spawned",
    "replica_cancelled",
];

/// A timestamped trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// Why a JSONL trace line could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The line is not a flat `{"key":value,…}` object.
    Malformed(String),
    /// The `"kind"` token is not a known [`TraceKind`] name.
    UnknownKind(String),
    /// A field required by the kind is absent.
    MissingField(&'static str),
    /// A field value could not be decoded (bad integer, unknown reason).
    BadValue(&'static str, String),
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::Malformed(line) => write!(f, "malformed trace line: {line}"),
            TraceParseError::UnknownKind(k) => write!(f, "unknown trace kind: {k}"),
            TraceParseError::MissingField(name) => write!(f, "missing trace field: {name}"),
            TraceParseError::BadValue(name, v) => {
                write!(f, "bad value for trace field {name}: {v}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

fn reason_token(r: PreemptReason) -> &'static str {
    match r {
        PreemptReason::OwnerReturned => "owner_returned",
        PreemptReason::PriorityPreemption => "priority_preemption",
        PreemptReason::StationFailure => "station_failure",
    }
}

fn reason_from_token(tok: &str) -> Option<PreemptReason> {
    match tok {
        "owner_returned" => Some(PreemptReason::OwnerReturned),
        "priority_preemption" => Some(PreemptReason::PriorityPreemption),
        "station_failure" => Some(PreemptReason::StationFailure),
        _ => None,
    }
}

/// Field accessors over one parsed flat-JSON line.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(line: &'a str) -> Result<Self, TraceParseError> {
        let body = line
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| TraceParseError::Malformed(line.into()))?;
        let mut pairs = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            // Keys are always quoted; values are bare integers or quoted
            // tokens. None of our tokens contain commas or escapes, so a
            // flat split is exact.
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| TraceParseError::Malformed(line.into()))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| TraceParseError::Malformed(line.into()))?;
            pairs.push((key, value.trim()));
        }
        Ok(Fields { pairs })
    }

    fn str(&self, name: &'static str) -> Result<&'a str, TraceParseError> {
        let raw = self
            .pairs
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .ok_or(TraceParseError::MissingField(name))?;
        raw.strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| TraceParseError::BadValue(name, raw.into()))
    }

    fn u64(&self, name: &'static str) -> Result<u64, TraceParseError> {
        let raw = self
            .pairs
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .ok_or(TraceParseError::MissingField(name))?;
        raw.parse()
            .map_err(|_| TraceParseError::BadValue(name, raw.into()))
    }

    fn job(&self, name: &'static str) -> Result<JobId, TraceParseError> {
        self.u64(name).map(JobId)
    }

    fn node(&self, name: &'static str) -> Result<NodeId, TraceParseError> {
        let v = self.u64(name)?;
        u32::try_from(v)
            .map(NodeId::new)
            .map_err(|_| TraceParseError::BadValue(name, v.to_string()))
    }

    fn u32(&self, name: &'static str) -> Result<u32, TraceParseError> {
        let v = self.u64(name)?;
        u32::try_from(v).map_err(|_| TraceParseError::BadValue(name, v.to_string()))
    }
}

impl TraceEvent {
    /// Renders this event as one line of flat JSON (no trailing newline),
    /// e.g. `{"t_ms":5000,"kind":"job_arrived","job":3}`.
    ///
    /// The format round-trips exactly through [`TraceEvent::from_jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        self.write_jsonl(&mut s);
        s
    }

    /// Like [`TraceEvent::to_jsonl`], appending to a caller-supplied buffer
    /// instead of allocating — the form hot sinks use with a reused
    /// `String` (no trailing newline is written).
    pub fn write_jsonl(&self, s: &mut String) {
        use std::fmt::Write;
        write!(s, "{{\"t_ms\":{},\"kind\":\"{}\"", self.at.as_millis(), self.kind.name()).unwrap();
        match self.kind {
            TraceKind::JobArrived { job } | TraceKind::JobRejected { job } => {
                write!(s, ",\"job\":{}", job.0).unwrap();
            }
            TraceKind::PlacementStarted { job, target }
            | TraceKind::PlacementDiskRejected { job, target } => {
                write!(s, ",\"job\":{},\"target\":{}", job.0, target.index()).unwrap();
            }
            TraceKind::JobStarted { job, on }
            | TraceKind::JobSuspended { job, on }
            | TraceKind::JobResumedInPlace { job, on }
            | TraceKind::JobKilled { job, on }
            | TraceKind::PeriodicCheckpoint { job, on }
            | TraceKind::JobCompleted { job, on }
            | TraceKind::CrashRollback { job, on } => {
                write!(s, ",\"job\":{},\"on\":{}", job.0, on.index()).unwrap();
            }
            TraceKind::CheckpointStarted { job, from, reason, bytes } => {
                write!(
                    s,
                    ",\"job\":{},\"from\":{},\"reason\":\"{}\",\"bytes\":{}",
                    job.0,
                    from.index(),
                    reason_token(reason),
                    bytes
                )
                .unwrap();
            }
            TraceKind::CheckpointCompleted { job, from, bytes } => {
                write!(s, ",\"job\":{},\"from\":{},\"bytes\":{}", job.0, from.index(), bytes)
                    .unwrap();
            }
            TraceKind::OwnerActive { station }
            | TraceKind::OwnerIdle { station }
            | TraceKind::StationFailed { station }
            | TraceKind::StationRecovered { station } => {
                write!(s, ",\"station\":{}", station.index()).unwrap();
            }
            TraceKind::ReservationStarted { holder, machines } => {
                write!(s, ",\"holder\":{},\"machines\":{}", holder.index(), machines).unwrap();
            }
            TraceKind::ReservationEnded { holder } => {
                write!(s, ",\"holder\":{}", holder.index()).unwrap();
            }
            TraceKind::CoordinatorPolled { free_machines, waiting_jobs, placements, preemptions } => {
                write!(
                    s,
                    ",\"free\":{free_machines},\"waiting\":{waiting_jobs},\"placements\":{placements},\"preemptions\":{preemptions}"
                )
                .unwrap();
            }
            TraceKind::ChaosPollLost
            | TraceKind::ChaosDupDropped
            | TraceKind::ChaosCoordDown
            | TraceKind::ChaosCoordUp => {}
            TraceKind::ChaosPollDelayed { delay_ms } => {
                write!(s, ",\"delay_ms\":{delay_ms}").unwrap();
            }
            TraceKind::ChaosCkptCorrupted { job, from, attempt } => {
                write!(s, ",\"job\":{},\"from\":{},\"attempt\":{}", job.0, from.index(), attempt)
                    .unwrap();
            }
            TraceKind::ChaosLinkDown { station } | TraceKind::ChaosLinkUp { station } => {
                write!(s, ",\"station\":{}", station.index()).unwrap();
            }
            TraceKind::ChaosLocalStart { job, on } => {
                write!(s, ",\"job\":{},\"on\":{}", job.0, on.index()).unwrap();
            }
            TraceKind::JobForwarded { job, to_pool } => {
                write!(s, ",\"job\":{},\"pool\":{}", job.0, to_pool).unwrap();
            }
            TraceKind::JobAdopted { job, on } => {
                write!(s, ",\"job\":{},\"on\":{}", job.0, on.index()).unwrap();
            }
            TraceKind::JobGranted { job, on, cpu_milli, mem_milli, tag_milli } => {
                write!(
                    s,
                    ",\"job\":{},\"on\":{},\"cpu_m\":{cpu_milli},\"mem_m\":{mem_milli},\"tag_m\":{tag_milli}",
                    job.0,
                    on.index()
                )
                .unwrap();
            }
            TraceKind::ReplicaSpawned { job, on } => {
                write!(s, ",\"job\":{},\"on\":{}", job.0, on.index()).unwrap();
            }
            TraceKind::ReplicaCancelled { job, on, wasted_ms } => {
                write!(s, ",\"job\":{},\"on\":{},\"wasted_ms\":{wasted_ms}", job.0, on.index())
                    .unwrap();
            }
        }
        s.push('}');
    }

    /// Decodes one line produced by [`TraceEvent::to_jsonl`].
    pub fn from_jsonl(line: &str) -> Result<TraceEvent, TraceParseError> {
        let f = Fields::parse(line)?;
        let at = SimTime::from_millis(f.u64("t_ms")?);
        let kind_tok = f.str("kind")?;
        let kind = match kind_tok {
            "job_arrived" => TraceKind::JobArrived { job: f.job("job")? },
            "job_rejected" => TraceKind::JobRejected { job: f.job("job")? },
            "placement_started" => TraceKind::PlacementStarted {
                job: f.job("job")?,
                target: f.node("target")?,
            },
            "placement_disk_rejected" => TraceKind::PlacementDiskRejected {
                job: f.job("job")?,
                target: f.node("target")?,
            },
            "job_started" => TraceKind::JobStarted { job: f.job("job")?, on: f.node("on")? },
            "job_suspended" => TraceKind::JobSuspended { job: f.job("job")?, on: f.node("on")? },
            "job_resumed_in_place" => {
                TraceKind::JobResumedInPlace { job: f.job("job")?, on: f.node("on")? }
            }
            "checkpoint_started" => {
                let tok = f.str("reason")?;
                TraceKind::CheckpointStarted {
                    job: f.job("job")?,
                    from: f.node("from")?,
                    reason: reason_from_token(tok)
                        .ok_or_else(|| TraceParseError::BadValue("reason", tok.into()))?,
                    bytes: f.u64("bytes")?,
                }
            }
            "checkpoint_completed" => TraceKind::CheckpointCompleted {
                job: f.job("job")?,
                from: f.node("from")?,
                bytes: f.u64("bytes")?,
            },
            "job_killed" => TraceKind::JobKilled { job: f.job("job")?, on: f.node("on")? },
            "periodic_checkpoint" => {
                TraceKind::PeriodicCheckpoint { job: f.job("job")?, on: f.node("on")? }
            }
            "job_completed" => TraceKind::JobCompleted { job: f.job("job")?, on: f.node("on")? },
            "owner_active" => TraceKind::OwnerActive { station: f.node("station")? },
            "owner_idle" => TraceKind::OwnerIdle { station: f.node("station")? },
            "station_failed" => TraceKind::StationFailed { station: f.node("station")? },
            "station_recovered" => TraceKind::StationRecovered { station: f.node("station")? },
            "crash_rollback" => TraceKind::CrashRollback { job: f.job("job")?, on: f.node("on")? },
            "reservation_started" => TraceKind::ReservationStarted {
                holder: f.node("holder")?,
                machines: f.u32("machines")?,
            },
            "reservation_ended" => TraceKind::ReservationEnded { holder: f.node("holder")? },
            "coordinator_polled" => TraceKind::CoordinatorPolled {
                free_machines: f.u32("free")?,
                waiting_jobs: f.u32("waiting")?,
                placements: f.u32("placements")?,
                preemptions: f.u32("preemptions")?,
            },
            "chaos_poll_lost" => TraceKind::ChaosPollLost,
            "chaos_poll_delayed" => TraceKind::ChaosPollDelayed { delay_ms: f.u64("delay_ms")? },
            "chaos_dup_dropped" => TraceKind::ChaosDupDropped,
            "chaos_ckpt_corrupted" => TraceKind::ChaosCkptCorrupted {
                job: f.job("job")?,
                from: f.node("from")?,
                attempt: f.u32("attempt")?,
            },
            "chaos_link_down" => TraceKind::ChaosLinkDown { station: f.node("station")? },
            "chaos_link_up" => TraceKind::ChaosLinkUp { station: f.node("station")? },
            "chaos_coord_down" => TraceKind::ChaosCoordDown,
            "chaos_coord_up" => TraceKind::ChaosCoordUp,
            "chaos_local_start" => {
                TraceKind::ChaosLocalStart { job: f.job("job")?, on: f.node("on")? }
            }
            "job_forwarded" => {
                TraceKind::JobForwarded { job: f.job("job")?, to_pool: f.u32("pool")? }
            }
            "job_adopted" => TraceKind::JobAdopted { job: f.job("job")?, on: f.node("on")? },
            "job_granted" => TraceKind::JobGranted {
                job: f.job("job")?,
                on: f.node("on")?,
                cpu_milli: f.u32("cpu_m")?,
                mem_milli: f.u32("mem_m")?,
                tag_milli: f.u32("tag_m")?,
            },
            "replica_spawned" => {
                TraceKind::ReplicaSpawned { job: f.job("job")?, on: f.node("on")? }
            }
            "replica_cancelled" => TraceKind::ReplicaCancelled {
                job: f.job("job")?,
                on: f.node("on")?,
                wasted_ms: f.u64("wasted_ms")?,
            },
            other => return Err(TraceParseError::UnknownKind(other.into())),
        };
        Ok(TraceEvent { at, kind })
    }
}

/// An append-only trace with query helpers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled trace.
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled trace (events are dropped); cuts memory for very
    /// long benchmark runs.
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Appends an event (no-op when disabled).
    pub fn record(&mut self, at: SimTime, kind: TraceKind) {
        if self.enabled {
            self.events.push(TraceEvent { at, kind });
        }
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events matching a predicate.
    pub fn filtered<'a, F>(&'a self, mut pred: F) -> impl Iterator<Item = &'a TraceEvent>
    where
        F: FnMut(&TraceKind) -> bool + 'a,
    {
        self.events.iter().filter(move |e| pred(&e.kind))
    }

    /// Counts events matching a predicate.
    pub fn count<F>(&self, pred: F) -> usize
    where
        F: FnMut(&TraceKind) -> bool,
    {
        let mut pred = pred;
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), TraceKind::JobArrived { job: JobId(1) });
        t.record(
            SimTime::from_secs(2),
            TraceKind::OwnerActive { station: NodeId::new(3) },
        );
        t.record(SimTime::from_secs(3), TraceKind::JobArrived { job: JobId(2) });
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let arrivals = t.count(|k| matches!(k, TraceKind::JobArrived { .. }));
        assert_eq!(arrivals, 2);
        let first = t
            .filtered(|k| matches!(k, TraceKind::OwnerActive { .. }))
            .next()
            .unwrap();
        assert_eq!(first.at, SimTime::from_secs(2));
    }

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::JobArrived { job: JobId(1) });
        assert!(t.is_empty());
        assert_eq!(t.events(), &[]);
    }

    /// One exemplar of every kind — keep in sync with `TraceKind`.
    fn one_of_each() -> Vec<TraceKind> {
        let j = JobId(7);
        let n = NodeId::new(3);
        vec![
            TraceKind::JobArrived { job: j },
            TraceKind::JobRejected { job: j },
            TraceKind::PlacementStarted { job: j, target: n },
            TraceKind::PlacementDiskRejected { job: j, target: n },
            TraceKind::JobStarted { job: j, on: n },
            TraceKind::JobSuspended { job: j, on: n },
            TraceKind::JobResumedInPlace { job: j, on: n },
            TraceKind::CheckpointStarted {
                job: j,
                from: n,
                reason: PreemptReason::PriorityPreemption,
                bytes: 123_456,
            },
            TraceKind::CheckpointCompleted { job: j, from: n, bytes: 123_456 },
            TraceKind::JobKilled { job: j, on: n },
            TraceKind::PeriodicCheckpoint { job: j, on: n },
            TraceKind::JobCompleted { job: j, on: n },
            TraceKind::OwnerActive { station: n },
            TraceKind::OwnerIdle { station: n },
            TraceKind::StationFailed { station: n },
            TraceKind::StationRecovered { station: n },
            TraceKind::CrashRollback { job: j, on: n },
            TraceKind::ReservationStarted { holder: n, machines: 4 },
            TraceKind::ReservationEnded { holder: n },
            TraceKind::CoordinatorPolled {
                free_machines: 9,
                waiting_jobs: 2,
                placements: 1,
                preemptions: 0,
            },
            TraceKind::ChaosPollLost,
            TraceKind::ChaosPollDelayed { delay_ms: 45_000 },
            TraceKind::ChaosDupDropped,
            TraceKind::ChaosCkptCorrupted { job: j, from: n, attempt: 2 },
            TraceKind::ChaosLinkDown { station: n },
            TraceKind::ChaosLinkUp { station: n },
            TraceKind::ChaosCoordDown,
            TraceKind::ChaosCoordUp,
            TraceKind::ChaosLocalStart { job: j, on: n },
            TraceKind::JobForwarded { job: j, to_pool: 1 },
            TraceKind::JobAdopted { job: j, on: n },
            TraceKind::JobGranted { job: j, on: n, cpu_milli: 500, mem_milli: 250, tag_milli: 0 },
            TraceKind::ReplicaSpawned { job: j, on: n },
            TraceKind::ReplicaCancelled { job: j, on: n, wasted_ms: 4_200 },
        ]
    }

    #[test]
    fn kind_indices_are_dense_and_names_unique() {
        let kinds = one_of_each();
        assert_eq!(kinds.len(), TraceKind::COUNT);
        let mut seen = [false; TraceKind::COUNT];
        for k in &kinds {
            assert!(!seen[k.index()], "duplicate index for {k:?}");
            seen[k.index()] = true;
            assert_eq!(TraceKind::names()[k.index()], k.name());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        for (i, kind) in one_of_each().into_iter().enumerate() {
            let ev = TraceEvent { at: SimTime::from_millis(1_000 + i as u64), kind };
            let line = ev.to_jsonl();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains(&format!("\"kind\":\"{}\"", kind.name())), "{line}");
            let back = TraceEvent::from_jsonl(&line).expect("round trip");
            assert_eq!(back, ev, "line {line}");
        }
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(matches!(
            TraceEvent::from_jsonl("not json"),
            Err(TraceParseError::Malformed(_))
        ));
        assert!(matches!(
            TraceEvent::from_jsonl("{\"t_ms\":1,\"kind\":\"warp_drive\"}"),
            Err(TraceParseError::UnknownKind(_))
        ));
        assert!(matches!(
            TraceEvent::from_jsonl("{\"t_ms\":1,\"kind\":\"job_arrived\"}"),
            Err(TraceParseError::MissingField("job"))
        ));
        assert!(matches!(
            TraceEvent::from_jsonl("{\"t_ms\":1,\"kind\":\"job_arrived\",\"job\":\"x\"}"),
            Err(TraceParseError::BadValue("job", _))
        ));
    }
}
