//! Streaming telemetry: trace sinks and the O(1)-memory run summary.
//!
//! The legacy [`Trace`] buffers every event and is
//! scanned after the run — fine for a simulated month, infeasible for the
//! horizons the benchmarks target. This module inverts the flow: the
//! cluster pushes each [`TraceEvent`] into any number of [`TraceSink`]s *as
//! it happens*, so observers choose their own memory/accuracy trade-off:
//!
//! * [`StatsSink`] — aggregates into a [`Telemetry`] summary (per-kind
//!   counters, log-bucketed histograms, coarsened gauge series) in O(1)
//!   memory; always attached, so even `record_trace: false` runs report.
//! * [`VecSink`] — buffers everything, like the legacy trace.
//! * [`RingSink`] — keeps only the last *N* events (crash forensics).
//! * [`FanoutSink`] — broadcasts to several sinks.
//! * [`SharedSink`] — a cloneable handle so the caller keeps access to a
//!   sink after handing it to the cluster.
//! * `Trace` itself implements [`TraceSink`], closing the loop.
//!
//! Sinks also receive periodic [`GaugeSample`]s — instantaneous cluster
//! state (bus backlog, free machines, Up-Down index) captured at each
//! coordinator poll, which no discrete event carries.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use condor_sim::series::CoarseSeries;
use condor_sim::stats::LogHistogram;
use condor_sim::time::{SimDuration, SimTime};

use crate::job::JobId;
use crate::trace::{Trace, TraceEvent, TraceKind, TraceParseError};

/// Instantaneous cluster state sampled at each coordinator poll.
///
/// Gauges are not discrete events: nothing "happens" when the bus backlog
/// is 3 s, yet the paper's bus-occupancy figures need exactly that signal.
/// The cluster captures one sample per poll cycle and offers it to every
/// sink alongside the event stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Queued work on the shared bus ahead of a transfer booked now.
    pub bus_backlog: SimDuration,
    /// Machines currently able to host a foreign job.
    pub free_machines: u32,
    /// Jobs waiting across all station queues.
    pub waiting_jobs: u32,
    /// Mean Up-Down schedule index across stations (`None` under other
    /// allocation policies).
    pub updown_mean_index: Option<f64>,
}

/// An observer of the cluster's event stream.
///
/// The cluster calls [`record`](TraceSink::record) once per
/// [`TraceEvent`] in simulation order, [`sample`](TraceSink::sample) once
/// per coordinator poll, and [`finish`](TraceSink::finish) exactly once
/// when the run ends. Implementations must be `Send` so runs stay usable
/// from the parallel replication harness.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Observes one event, in simulation order.
    fn record(&mut self, ev: &TraceEvent);

    /// Observes one periodic gauge sample. Default: ignored.
    fn sample(&mut self, _s: &GaugeSample) {}

    /// Called once when the run reaches its horizon. Default: no-op.
    fn finish(&mut self, _at: SimTime) {}

    /// For pure fan-out containers: surrenders the child sinks so the
    /// cluster can attach them directly, flattening nested fan-outs to one
    /// virtual call per leaf per event. Default: `None` (not a container —
    /// any sink with behavior of its own, filtering included, must keep
    /// the default).
    fn take_children(&mut self) -> Option<Vec<Box<dyn TraceSink + Send>>> {
        None
    }
}

impl TraceSink for Trace {
    fn record(&mut self, ev: &TraceEvent) {
        Trace::record(self, ev.at, ev.kind);
    }
}

/// A sink that buffers every event, like the legacy trace.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, yielding the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// A bounded sink keeping only the most recent events.
///
/// Memory is O(capacity) regardless of run length — attach one to a long
/// run and, when something goes wrong, the tail tells you what led up
/// to it.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    seen: u64,
}

impl RingSink {
    /// Creates a sink retaining the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingSink capacity must be positive");
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            seen: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Consumes the sink, yielding the retained events oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever observed (including evicted ones).
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(*ev);
        self.seen += 1;
    }
}

/// Broadcasts every event, sample, and finish to a set of child sinks.
#[derive(Debug, Default)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn TraceSink + Send>>,
}

impl FanoutSink {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        FanoutSink::default()
    }

    /// Adds a child sink (builder style).
    pub fn with(mut self, sink: Box<dyn TraceSink + Send>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Adds a child sink.
    pub fn push(&mut self, sink: Box<dyn TraceSink + Send>) {
        self.sinks.push(sink);
    }

    /// Number of child sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// `true` when no child sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TraceSink for FanoutSink {
    fn record(&mut self, ev: &TraceEvent) {
        for s in &mut self.sinks {
            s.record(ev);
        }
    }

    fn sample(&mut self, s: &GaugeSample) {
        for sink in &mut self.sinks {
            sink.sample(s);
        }
    }

    fn finish(&mut self, at: SimTime) {
        for s in &mut self.sinks {
            s.finish(at);
        }
    }

    fn take_children(&mut self) -> Option<Vec<Box<dyn TraceSink + Send>>> {
        Some(std::mem::take(&mut self.sinks))
    }
}

/// Forwards only events whose [`TraceKind`] is enabled to an inner sink;
/// gauge samples and `finish` always pass through.
///
/// Backs `condor trace --kind a,b`: wrap the printing/exporting sink so a
/// month-scale run streams only the event families of interest.
///
/// # Examples
///
/// ```
/// use condor_core::telemetry::{KindFilterSink, TraceSink, VecSink};
/// use condor_core::trace::{TraceEvent, TraceKind};
/// use condor_core::job::JobId;
/// use condor_sim::time::SimTime;
///
/// let mut only_arrivals =
///     KindFilterSink::from_names(VecSink::new(), ["job_arrived"]).unwrap();
/// only_arrivals.record(&TraceEvent {
///     at: SimTime::ZERO,
///     kind: TraceKind::JobArrived { job: JobId(0) },
/// });
/// only_arrivals.record(&TraceEvent {
///     at: SimTime::ZERO,
///     kind: TraceKind::JobCompleted { job: JobId(0), on: condor_net::NodeId::new(0) },
/// });
/// assert_eq!(only_arrivals.inner().len(), 1);
/// assert_eq!(only_arrivals.dropped(), 1);
/// ```
#[derive(Debug)]
pub struct KindFilterSink<S> {
    mask: [bool; TraceKind::COUNT],
    inner: S,
    passed: u64,
    dropped: u64,
}

impl<S> KindFilterSink<S> {
    /// Wraps `inner` with an explicit per-kind mask (indexed by
    /// [`TraceKind::index`]).
    pub fn new(inner: S, mask: [bool; TraceKind::COUNT]) -> Self {
        KindFilterSink { mask, inner, passed: 0, dropped: 0 }
    }

    /// Wraps `inner`, enabling exactly the named kinds (snake_case, as in
    /// [`TraceKind::names`]).
    ///
    /// # Errors
    ///
    /// [`TraceParseError::UnknownKind`] for a name that matches no kind.
    pub fn from_names<'a, I>(inner: S, names: I) -> Result<Self, TraceParseError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut mask = [false; TraceKind::COUNT];
        for name in names {
            let idx = TraceKind::index_of_name(name)
                .ok_or_else(|| TraceParseError::UnknownKind(name.to_string()))?;
            mask[idx] = true;
        }
        Ok(KindFilterSink::new(inner, mask))
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the filter, yielding the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Events forwarded so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Events suppressed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<S: TraceSink> TraceSink for KindFilterSink<S> {
    fn record(&mut self, ev: &TraceEvent) {
        if self.mask[ev.kind.index()] {
            self.passed += 1;
            self.inner.record(ev);
        } else {
            self.dropped += 1;
        }
    }

    fn sample(&mut self, s: &GaugeSample) {
        self.inner.sample(s);
    }

    fn finish(&mut self, at: SimTime) {
        self.inner.finish(at);
    }
}

/// A cloneable handle to a sink, so the caller keeps access after the
/// cluster takes ownership of a boxed copy.
///
/// # Examples
///
/// ```
/// use condor_core::telemetry::{RingSink, SharedSink, TraceSink};
///
/// let tail = SharedSink::new(RingSink::new(100));
/// let for_cluster: Box<dyn TraceSink + Send> = Box::new(tail.clone());
/// // … run the cluster with `for_cluster` attached …
/// drop(for_cluster);
/// let events = tail.with(|r| r.len());
/// assert_eq!(events, 0);
/// ```
#[derive(Debug)]
pub struct SharedSink<S> {
    inner: Arc<Mutex<S>>,
}

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink { inner: Arc::clone(&self.inner) }
    }
}

impl<S> SharedSink<S> {
    /// Wraps a sink in a shared handle.
    pub fn new(sink: S) -> Self {
        SharedSink { inner: Arc::new(Mutex::new(sink)) }
    }

    /// Runs `f` with exclusive access to the inner sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.inner.lock().expect("sink lock poisoned"))
    }

    /// Recovers the inner sink. Returns `None` if other handles are still
    /// alive.
    pub fn try_into_inner(self) -> Option<S> {
        Arc::try_unwrap(self.inner)
            .ok()
            .map(|m| m.into_inner().expect("sink lock poisoned"))
    }
}

impl<S: TraceSink> TraceSink for SharedSink<S> {
    fn record(&mut self, ev: &TraceEvent) {
        self.with(|s| s.record(ev));
    }

    fn sample(&mut self, s: &GaugeSample) {
        self.with(|sink| sink.sample(s));
    }

    fn finish(&mut self, at: SimTime) {
        self.with(|s| s.finish(at));
    }
}

/// The O(1)-memory run summary built by [`StatsSink`].
///
/// Counters and histogram/series aggregates are exact where cheap (counts,
/// sums, min/max) and bounded-resolution where exactness would cost
/// unbounded memory (histogram quantiles are log₂-bucketed; gauge series
/// are pair-merge coarsened). Deterministic for a given seed: identical
/// runs produce identical summaries.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Total events observed.
    pub events_total: u64,
    /// Per-kind event counts, indexed by [`TraceKind::index`].
    pub counts: [u64; TraceKind::COUNT],
    /// Time from entering a queue to the subsequent start, in
    /// milliseconds (arrival→start, checkpoint-home→restart, kill→restart).
    pub queue_wait_ms: LogHistogram,
    /// Length of each uninterrupted execution burst, in milliseconds.
    pub remote_burst_ms: LogHistogram,
    /// Checkpoint image sizes put on the wire, in bytes.
    pub checkpoint_bytes: LogHistogram,
    /// Bus backlog (ms of queued transfer work) sampled at each poll.
    pub bus_backlog_ms: CoarseSeries,
    /// Mean Up-Down schedule index sampled at each poll (empty under
    /// non-Up-Down policies).
    pub updown_index: CoarseSeries,
    /// Timestamp of the first event, if any.
    pub first_event: Option<SimTime>,
    /// Timestamp of the last event, if any.
    pub last_event: Option<SimTime>,
    /// The run horizon passed to [`TraceSink::finish`].
    pub finished_at: SimTime,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            events_total: 0,
            counts: [0; TraceKind::COUNT],
            queue_wait_ms: LogHistogram::new(),
            remote_burst_ms: LogHistogram::new(),
            checkpoint_bytes: LogHistogram::new(),
            bus_backlog_ms: CoarseSeries::new(CoarseSeries::DEFAULT_CAPACITY),
            updown_index: CoarseSeries::new(CoarseSeries::DEFAULT_CAPACITY),
            first_event: None,
            last_event: None,
            finished_at: SimTime::ZERO,
        }
    }
}

impl Telemetry {
    /// Count of one event kind.
    pub fn count_of(&self, kind: &TraceKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Per-kind counts as `(name, count)`, nonzero kinds only, in
    /// [`TraceKind::index`] order.
    pub fn nonzero_counts(&self) -> Vec<(&'static str, u64)> {
        TraceKind::names()
            .iter()
            .zip(self.counts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(&n, &c)| (n, c))
            .collect()
    }

    /// `true` when no events were observed.
    pub fn is_empty(&self) -> bool {
        self.events_total == 0
    }

    /// Merges another summary into this one — counters and histograms add
    /// losslessly, gauge series interleave by time, and the event-span
    /// bounds widen. Used by the sharded runner to combine per-pool
    /// summaries into the fleet-wide one; deterministic in the inputs.
    pub fn merge(&mut self, other: &Telemetry) {
        self.events_total += other.events_total;
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.queue_wait_ms.merge(&other.queue_wait_ms);
        self.remote_burst_ms.merge(&other.remote_burst_ms);
        self.checkpoint_bytes.merge(&other.checkpoint_bytes);
        self.bus_backlog_ms.absorb(&other.bus_backlog_ms);
        self.updown_index.absorb(&other.updown_index);
        self.first_event = match (self.first_event, other.first_event) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_event = match (self.last_event, other.last_event) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.finished_at = self.finished_at.max(other.finished_at);
    }
}

/// What [`StatsSink::record`] must do with an event's per-job marks,
/// precomputed per [`TraceKind::index`] so the hot path branches off a
/// table lookup instead of re-matching the full kind enum. Most events
/// (owner flips, polls) map to `None` and skip mark handling entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MarkAction {
    /// No per-job bookkeeping.
    None,
    /// Job entered the queue: set the queued mark.
    Queue,
    /// Job started: close the queue wait, set the running mark.
    Start,
    /// Job resumed in place: set the running mark.
    Resume,
    /// Job stopped producing: close the running burst.
    EndBurst,
    /// Checkpoint out: close the burst and record the image size.
    Checkpoint,
    /// Immediate kill: close the burst, job requeues at home.
    Kill,
}

/// Indexed by [`TraceKind::index`]; must stay in sync with it (checked by
/// the `mark_action_table_matches_kinds` test).
static MARK_ACTIONS: [MarkAction; TraceKind::COUNT] = [
    MarkAction::Queue,      // JobArrived
    MarkAction::None,       // JobRejected
    MarkAction::None,       // PlacementStarted
    MarkAction::None,       // PlacementDiskRejected
    MarkAction::Start,      // JobStarted
    MarkAction::EndBurst,   // JobSuspended
    MarkAction::Resume,     // JobResumedInPlace
    MarkAction::Checkpoint, // CheckpointStarted
    MarkAction::Queue,      // CheckpointCompleted (image landed at home)
    MarkAction::Kill,       // JobKilled
    MarkAction::None,       // PeriodicCheckpoint
    MarkAction::EndBurst,   // JobCompleted
    MarkAction::None,       // OwnerActive
    MarkAction::None,       // OwnerIdle
    MarkAction::None,       // StationFailed
    MarkAction::None,       // StationRecovered
    MarkAction::EndBurst,   // CrashRollback
    MarkAction::None,       // ReservationStarted
    MarkAction::None,       // ReservationEnded
    MarkAction::None,       // CoordinatorPolled
    MarkAction::None,       // ChaosPollLost
    MarkAction::None,       // ChaosPollDelayed
    MarkAction::None,       // ChaosDupDropped
    MarkAction::None,       // ChaosCkptCorrupted (retry keeps the job Checkpointing)
    MarkAction::None,       // ChaosLinkDown
    MarkAction::None,       // ChaosLinkUp
    MarkAction::None,       // ChaosCoordDown
    MarkAction::None,       // ChaosCoordUp
    MarkAction::None,       // ChaosLocalStart (the paired JobStarted marks)
    MarkAction::None,       // JobForwarded (stub leaves this pool; wait closes in the adopter)
    MarkAction::Queue,      // JobAdopted (entered a queue in the new pool)
    MarkAction::None,       // JobGranted (annotation; the paired JobStarted marks)
    MarkAction::None,       // ReplicaSpawned (primary's own events mark)
    MarkAction::None,       // ReplicaCancelled (wasted work is accounting, not a wait edge)
];

/// Dense per-job timestamp marks (job ids are the dense sequence `0..n`).
/// Replaces a `HashMap<JobId, SimTime>` on the per-event hot path.
#[derive(Debug, Default)]
struct JobMarks(Vec<Option<SimTime>>);

impl JobMarks {
    #[inline]
    fn insert(&mut self, job: JobId, at: SimTime) {
        let i = job.0 as usize;
        if i >= self.0.len() {
            self.0.resize(i + 1, None);
        }
        self.0[i] = Some(at);
    }

    #[inline]
    fn remove(&mut self, job: JobId) -> Option<SimTime> {
        self.0.get_mut(job.0 as usize).and_then(Option::take)
    }
}

/// Aggregates the event stream into a [`Telemetry`] summary.
///
/// Tracks per-job "queued since" / "running since" marks to turn the event
/// stream into queue-wait and execution-burst samples; everything else is
/// direct counting. Memory is O(max job id + fixed aggregates),
/// independent of run length.
#[derive(Debug, Default)]
pub struct StatsSink {
    telemetry: Telemetry,
    queued_since: JobMarks,
    running_since: JobMarks,
}

impl StatsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        StatsSink::default()
    }

    /// The summary accumulated so far.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Consumes the sink, yielding the summary.
    pub fn into_telemetry(self) -> Telemetry {
        self.telemetry
    }
}

impl TraceSink for StatsSink {
    fn record(&mut self, ev: &TraceEvent) {
        let t = &mut self.telemetry;
        t.events_total += 1;
        let index = ev.kind.index();
        t.counts[index] += 1;
        if t.first_event.is_none() {
            t.first_event = Some(ev.at);
        }
        t.last_event = Some(ev.at);
        let action = MARK_ACTIONS[index];
        if action == MarkAction::None {
            return; // owner flips and polls — the bulk of the stream
        }
        let Some(job) = ev.kind.job() else { return };
        match action {
            MarkAction::None => unreachable!(),
            MarkAction::Queue => {
                self.queued_since.insert(job, ev.at);
            }
            MarkAction::Start => {
                if let Some(since) = self.queued_since.remove(job) {
                    t.queue_wait_ms.record(ev.at.since(since).as_millis());
                }
                self.running_since.insert(job, ev.at);
            }
            MarkAction::Resume => {
                self.running_since.insert(job, ev.at);
            }
            MarkAction::EndBurst => {
                if let Some(since) = self.running_since.remove(job) {
                    t.remote_burst_ms.record(ev.at.since(since).as_millis());
                }
            }
            MarkAction::Checkpoint => {
                // Under grace-then-checkpoint the job was already suspended
                // (no running mark left); under direct vacate this closes
                // the burst.
                if let Some(since) = self.running_since.remove(job) {
                    t.remote_burst_ms.record(ev.at.since(since).as_millis());
                }
                if let TraceKind::CheckpointStarted { bytes, .. } = ev.kind {
                    t.checkpoint_bytes.record(bytes);
                }
            }
            MarkAction::Kill => {
                if let Some(since) = self.running_since.remove(job) {
                    t.remote_burst_ms.record(ev.at.since(since).as_millis());
                }
                // An immediate-kill requeues the job at home.
                self.queued_since.insert(job, ev.at);
            }
        }
    }

    fn sample(&mut self, s: &GaugeSample) {
        self.telemetry
            .bus_backlog_ms
            .push(s.at, s.bus_backlog.as_millis() as f64);
        if let Some(idx) = s.updown_mean_index {
            self.telemetry.updown_index.push(s.at, idx);
        }
    }

    fn finish(&mut self, at: SimTime) {
        self.telemetry.finished_at = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condor_net::NodeId;

    fn ev(secs: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { at: SimTime::from_secs(secs), kind }
    }

    #[test]
    fn vec_sink_buffers_in_order() {
        let mut s = VecSink::new();
        assert!(s.is_empty());
        s.record(&ev(1, TraceKind::JobArrived { job: JobId(0) }));
        s.record(&ev(2, TraceKind::JobArrived { job: JobId(1) }));
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].at, SimTime::from_secs(1));
        assert_eq!(s.into_events().len(), 2);
    }

    #[test]
    fn ring_sink_keeps_the_tail() {
        let mut s = RingSink::new(3);
        for i in 0..10 {
            s.record(&ev(i, TraceKind::JobArrived { job: JobId(i) }));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.capacity(), 3);
        assert_eq!(s.seen(), 10);
        let tail: Vec<u64> = s
            .events()
            .map(|e| match e.kind {
                TraceKind::JobArrived { job } => job.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tail, vec![7, 8, 9]);
    }

    #[test]
    fn fanout_broadcasts() {
        let a = SharedSink::new(VecSink::new());
        let b = SharedSink::new(RingSink::new(1));
        let mut fan = FanoutSink::new()
            .with(Box::new(a.clone()))
            .with(Box::new(b.clone()));
        assert_eq!(fan.len(), 2);
        fan.record(&ev(1, TraceKind::OwnerIdle { station: NodeId::new(0) }));
        fan.record(&ev(2, TraceKind::OwnerActive { station: NodeId::new(0) }));
        fan.finish(SimTime::from_secs(3));
        assert_eq!(a.with(|s| s.len()), 2);
        assert_eq!(b.with(|s| s.seen()), 2);
    }

    /// One exemplar event per kind, in `TraceKind::index` order — the
    /// fixture the table-sync test walks.
    fn one_of_each_kind() -> Vec<TraceKind> {
        let job = JobId(0);
        let n = NodeId::new(1);
        vec![
            TraceKind::JobArrived { job },
            TraceKind::JobRejected { job },
            TraceKind::PlacementStarted { job, target: n },
            TraceKind::PlacementDiskRejected { job, target: n },
            TraceKind::JobStarted { job, on: n },
            TraceKind::JobSuspended { job, on: n },
            TraceKind::JobResumedInPlace { job, on: n },
            TraceKind::CheckpointStarted {
                job,
                from: n,
                reason: crate::job::PreemptReason::OwnerReturned,
                bytes: 1,
            },
            TraceKind::CheckpointCompleted { job, from: n, bytes: 1 },
            TraceKind::JobKilled { job, on: n },
            TraceKind::PeriodicCheckpoint { job, on: n },
            TraceKind::JobCompleted { job, on: n },
            TraceKind::OwnerActive { station: n },
            TraceKind::OwnerIdle { station: n },
            TraceKind::StationFailed { station: n },
            TraceKind::StationRecovered { station: n },
            TraceKind::CrashRollback { job, on: n },
            TraceKind::ReservationStarted { holder: n, machines: 2 },
            TraceKind::ReservationEnded { holder: n },
            TraceKind::CoordinatorPolled {
                free_machines: 1,
                waiting_jobs: 1,
                placements: 1,
                preemptions: 0,
            },
            TraceKind::ChaosPollLost,
            TraceKind::ChaosPollDelayed { delay_ms: 1 },
            TraceKind::ChaosDupDropped,
            TraceKind::ChaosCkptCorrupted { job, from: n, attempt: 1 },
            TraceKind::ChaosLinkDown { station: n },
            TraceKind::ChaosLinkUp { station: n },
            TraceKind::ChaosCoordDown,
            TraceKind::ChaosCoordUp,
            TraceKind::ChaosLocalStart { job, on: n },
            TraceKind::JobForwarded { job, to_pool: 1 },
            TraceKind::JobAdopted { job, on: n },
            TraceKind::JobGranted { job, on: n, cpu_milli: 500, mem_milli: 500, tag_milli: 0 },
            TraceKind::ReplicaSpawned { job, on: n },
            TraceKind::ReplicaCancelled { job, on: n, wasted_ms: 1_000 },
        ]
    }

    /// The promise `MARK_ACTIONS` makes in its doc comment: the table
    /// stays in sync with `TraceKind::index`. Classifies every kind the
    /// slow way (a full match) and checks the table agrees, and that every
    /// kind the table acts on actually carries a job id.
    #[test]
    fn mark_action_table_matches_kinds() {
        let kinds = one_of_each_kind();
        assert_eq!(kinds.len(), TraceKind::COUNT, "fixture covers every kind");
        for (i, kind) in kinds.iter().enumerate() {
            assert_eq!(kind.index(), i, "fixture out of index order at {i}");
            let expected = match kind {
                TraceKind::JobArrived { .. }
                | TraceKind::CheckpointCompleted { .. }
                | TraceKind::JobAdopted { .. } => MarkAction::Queue,
                TraceKind::JobStarted { .. } => MarkAction::Start,
                TraceKind::JobResumedInPlace { .. } => MarkAction::Resume,
                TraceKind::JobSuspended { .. }
                | TraceKind::JobCompleted { .. }
                | TraceKind::CrashRollback { .. } => MarkAction::EndBurst,
                TraceKind::CheckpointStarted { .. } => MarkAction::Checkpoint,
                TraceKind::JobKilled { .. } => MarkAction::Kill,
                _ => MarkAction::None,
            };
            assert_eq!(
                MARK_ACTIONS[kind.index()],
                expected,
                "table disagrees with the reference classification for {kind:?}"
            );
            if expected != MarkAction::None {
                assert!(
                    kind.job().is_some(),
                    "{kind:?} is acted on but carries no job id"
                );
            }
        }
    }

    #[test]
    fn stats_sink_counts_and_waits() {
        let mut s = StatsSink::new();
        let n = NodeId::new(4);
        s.record(&ev(0, TraceKind::JobArrived { job: JobId(0) }));
        s.record(&ev(60, TraceKind::JobStarted { job: JobId(0), on: n }));
        s.record(&ev(600, TraceKind::JobSuspended { job: JobId(0), on: n }));
        s.record(&ev(
            700,
            TraceKind::CheckpointStarted {
                job: JobId(0),
                from: n,
                reason: crate::job::PreemptReason::OwnerReturned,
                bytes: 1_000_000,
            },
        ));
        s.record(&ev(
            800,
            TraceKind::CheckpointCompleted { job: JobId(0), from: n, bytes: 1_000_000 },
        ));
        s.record(&ev(900, TraceKind::JobStarted { job: JobId(0), on: n }));
        s.record(&ev(2_000, TraceKind::JobCompleted { job: JobId(0), on: n }));
        s.finish(SimTime::from_hours(1));

        let t = s.telemetry();
        assert_eq!(t.events_total, 7);
        assert_eq!(t.count_of(&TraceKind::JobArrived { job: JobId(0) }), 1);
        assert_eq!(t.count_of(&TraceKind::JobStarted { job: JobId(0), on: n }), 2);
        // Two queue waits: 60 s after arrival, 100 s after the checkpoint.
        assert_eq!(t.queue_wait_ms.count(), 2);
        assert_eq!(t.queue_wait_ms.min(), Some(60_000));
        assert_eq!(t.queue_wait_ms.max(), Some(100_000));
        // Two bursts: 540 s then 1100 s; the checkpoint after the suspend
        // does not double-count.
        assert_eq!(t.remote_burst_ms.count(), 2);
        assert_eq!(t.checkpoint_bytes.count(), 1);
        assert_eq!(t.checkpoint_bytes.max(), Some(1_000_000));
        assert_eq!(t.finished_at, SimTime::from_hours(1));
        assert_eq!(t.first_event, Some(SimTime::ZERO));
        assert_eq!(t.last_event, Some(SimTime::from_secs(2_000)));
        assert!(!t.is_empty());
        let names: Vec<&str> = t.nonzero_counts().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"job_arrived") && names.contains(&"checkpoint_started"));
    }

    #[test]
    fn stats_sink_gauge_samples() {
        let mut s = StatsSink::new();
        for i in 0..100u64 {
            s.sample(&GaugeSample {
                at: SimTime::from_secs(i * 30),
                bus_backlog: SimDuration::from_millis(i * 10),
                free_machines: 5,
                waiting_jobs: 2,
                updown_mean_index: (i % 2 == 0).then_some(i as f64),
            });
        }
        let t = s.telemetry();
        assert_eq!(t.bus_backlog_ms.samples(), 100);
        assert_eq!(t.updown_index.samples(), 50);
        assert_eq!(t.bus_backlog_ms.max(), Some(990.0));
    }

    #[test]
    fn trace_is_a_sink() {
        let mut trace = Trace::new();
        let sink: &mut (dyn TraceSink + Send) = &mut trace;
        sink.record(&ev(5, TraceKind::JobArrived { job: JobId(9) }));
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].at, SimTime::from_secs(5));
    }
}
