//! Two-level bitsets for fleet-scale coordinator indexes.
//!
//! At 100k stations a flat bitset is already compact (≈12.5 KB), but
//! *finding* the set bits still walks every word. [`Bits`] keeps a summary
//! level — one bit per 64-bit word — so membership updates stay O(1) and
//! ascending iteration costs O(set bits + summary words): a poll that
//! extracts a handful of active stations from a 100k-station fleet touches
//! a few dozen cache lines, not the whole array.

use condor_net::NodeId;

/// A fixed-capacity bitset over station ids with a one-level summary and a
/// maintained population count.
#[derive(Debug, Clone)]
pub(crate) struct Bits {
    /// Bit `i % 64` of `words[i / 64]` ⇔ station `i` is a member.
    words: Vec<u64>,
    /// Bit `w % 64` of `summary[w / 64]` ⇔ `words[w] != 0`.
    summary: Vec<u64>,
    /// Number of set bits, maintained on every transition.
    count: u32,
}

impl Bits {
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        Bits {
            words: vec![0; words],
            summary: vec![0; words.div_ceil(64)],
            count: 0,
        }
    }

    /// Number of members.
    #[inline]
    pub fn count(&self) -> u32 {
        self.count
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Adds or removes station `i`; O(1), idempotent.
    #[inline]
    pub fn set(&mut self, i: usize, on: bool) {
        let w = i / 64;
        let bit = 1u64 << (i % 64);
        let word = self.words[w];
        if on {
            if word & bit == 0 {
                self.words[w] = word | bit;
                self.summary[w / 64] |= 1u64 << (w % 64);
                self.count += 1;
            }
        } else if word & bit != 0 {
            let new = word & !bit;
            self.words[w] = new;
            if new == 0 {
                self.summary[w / 64] &= !(1u64 << (w % 64));
            }
            self.count -= 1;
        }
    }

    /// Calls `f` for each member in ascending id order until it returns
    /// `false`. Iteration is summary-guided: empty regions cost one summary
    /// word per 4096 stations.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(u32) -> bool) {
        for (sw, &sword) in self.summary.iter().enumerate() {
            let mut sword = sword;
            while sword != 0 {
                let w = sw * 64 + sword.trailing_zeros() as usize;
                sword &= sword - 1;
                let mut word = self.words[w];
                while word != 0 {
                    let id = w as u32 * 64 + word.trailing_zeros();
                    word &= word - 1;
                    if !f(id) {
                        return;
                    }
                }
            }
        }
    }

    /// Expands the membership into ascending [`NodeId`]s.
    pub fn collect_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.reserve(self.count as usize);
        self.for_each(|id| {
            out.push(NodeId::new(id));
            true
        });
    }

    /// Expands only the first `k` members (ascending) — the truncated head
    /// the coordinator hands to budget-bounded policies.
    pub fn collect_head(&self, k: usize, out: &mut Vec<NodeId>) {
        out.clear();
        self.for_each(|id| {
            out.push(NodeId::new(id));
            out.len() < k
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count_and_order() {
        let mut b = Bits::new(10_000);
        for &i in &[0usize, 63, 64, 4095, 4096, 9999] {
            b.set(i, true);
        }
        b.set(63, true); // idempotent
        assert_eq!(b.count(), 6);
        assert!(b.get(4096) && !b.get(4097));
        let mut out = Vec::new();
        b.collect_into(&mut out);
        let ids: Vec<u32> = out.iter().map(|n| n.index()).collect();
        assert_eq!(ids, vec![0, 63, 64, 4095, 4096, 9999]);
        b.set(64, false);
        b.set(64, false); // idempotent
        assert_eq!(b.count(), 5);
        let mut head = Vec::new();
        b.collect_head(2, &mut head);
        assert_eq!(head.len(), 2);
        assert_eq!(head[0].index(), 0);
        assert_eq!(head[1].index(), 63);
    }

    #[test]
    fn summary_tracks_word_emptiness() {
        let mut b = Bits::new(8192);
        b.set(8191, true);
        let mut seen = Vec::new();
        b.for_each(|id| {
            seen.push(id);
            true
        });
        assert_eq!(seen, vec![8191]);
        b.set(8191, false);
        assert_eq!(b.count(), 0);
        b.for_each(|_| panic!("empty set iterated"));
    }

    #[test]
    fn matches_naive_reference_under_random_churn() {
        let mut b = Bits::new(997);
        let mut reference = vec![false; 997];
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (state >> 33) as usize % 997;
            let on = state & 1 == 0;
            b.set(i, on);
            reference[i] = on;
        }
        let expect: Vec<u32> =
            (0..997).filter(|&i| reference[i]).map(|i| i as u32).collect();
        let mut got = Vec::new();
        b.for_each(|id| {
            got.push(id);
            true
        });
        assert_eq!(got, expect);
        assert_eq!(b.count() as usize, expect.len());
    }
}
