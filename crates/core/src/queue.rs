//! The per-workstation background job queue.
//!
//! Paper §2.1: *"A local scheduler with more than one background job
//! waiting makes its own decision of which job should be executed next."*
//! The queue therefore carries its own ordering policy, independent of the
//! coordinator: the coordinator grants capacity to the *station*, and the
//! station picks the job.

use std::collections::VecDeque;

use condor_sim::time::SimDuration;

use crate::job::JobId;

/// How a local scheduler orders its own waiting jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalOrder {
    /// First submitted, first placed (the 1988 implementation's behaviour).
    #[default]
    Fifo,
    /// Shortest remaining demand first (a local-policy ablation).
    ShortestFirst,
}

/// A station's queue of background jobs awaiting remote capacity.
///
/// Jobs *running remotely* are not in this queue; it holds only jobs
/// waiting to be (re)placed.
///
/// # Examples
///
/// ```
/// use condor_core::job::JobId;
/// use condor_core::queue::{BackgroundQueue, LocalOrder};
/// use condor_sim::time::SimDuration;
///
/// let mut q = BackgroundQueue::new(LocalOrder::Fifo);
/// q.enqueue(JobId(1), SimDuration::from_hours(5));
/// q.enqueue(JobId(2), SimDuration::from_hours(1));
/// assert_eq!(q.pop_next(), Some(JobId(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BackgroundQueue {
    order: LocalOrder,
    entries: VecDeque<(JobId, SimDuration)>,
}

impl BackgroundQueue {
    /// Creates an empty queue with the given local ordering policy.
    pub fn new(order: LocalOrder) -> Self {
        BackgroundQueue {
            order,
            entries: VecDeque::new(),
        }
    }

    /// The ordering policy in force.
    pub fn order(&self) -> LocalOrder {
        self.order
    }

    /// Adds a job with its remaining demand (used by `ShortestFirst`).
    pub fn enqueue(&mut self, job: JobId, remaining: SimDuration) {
        debug_assert!(
            !self.contains(job),
            "job {job:?} enqueued twice on the same station"
        );
        self.entries.push_back((job, remaining));
    }

    /// Puts a preempted job back at the *front*: it already waited its turn
    /// and lost its machine through no fault of its own.
    pub fn enqueue_front(&mut self, job: JobId, remaining: SimDuration) {
        debug_assert!(!self.contains(job), "job {job:?} re-enqueued twice");
        self.entries.push_front((job, remaining));
    }

    /// Removes and returns the next job per the local policy.
    pub fn pop_next(&mut self) -> Option<JobId> {
        self.pop_next_where(|_| true)
    }

    /// Removes and returns the next job (per the local policy) among those
    /// satisfying `eligible` — used for architecture-constrained placement
    /// (paper §5(4)): the granted machine may only run some of the waiting
    /// jobs.
    pub fn pop_next_where(&mut self, eligible: impl Fn(JobId) -> bool) -> Option<JobId> {
        match self.order {
            LocalOrder::Fifo => {
                let idx = self.entries.iter().position(|(j, _)| eligible(*j))?;
                self.entries.remove(idx).map(|(j, _)| j)
            }
            LocalOrder::ShortestFirst => {
                let idx = self
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, (job, _))| eligible(*job))
                    .min_by_key(|(_, (job, rem))| (*rem, job.0))?
                    .0;
                self.entries.remove(idx).map(|(j, _)| j)
            }
        }
    }

    /// Removes a specific job (e.g. cancelled by the user).
    pub fn remove(&mut self, job: JobId) -> bool {
        if let Some(idx) = self.entries.iter().position(|(j, _)| *j == job) {
            self.entries.remove(idx);
            true
        } else {
            false
        }
    }

    /// Whether the job is waiting here.
    pub fn contains(&self, job: JobId) -> bool {
        self.entries.iter().any(|(j, _)| *j == job)
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over waiting job ids in queue order.
    pub fn iter(&self) -> impl Iterator<Item = JobId> + '_ {
        self.entries.iter().map(|(j, _)| *j)
    }

    /// Job ids in the order [`BackgroundQueue::pop_next`] would serve
    /// them, without removing anything.
    pub fn ids_in_service_order(&self) -> Vec<JobId> {
        let mut out = Vec::new();
        self.service_order_into(&mut out);
        out
    }

    /// Like [`BackgroundQueue::ids_in_service_order`], writing into a
    /// reused buffer — the allocation-free form for hot callers. The
    /// buffer is cleared first.
    pub fn service_order_into(&self, out: &mut Vec<JobId>) {
        out.clear();
        match self.order {
            LocalOrder::Fifo => out.extend(self.entries.iter().map(|(j, _)| *j)),
            LocalOrder::ShortestFirst => {
                let mut v: Vec<(JobId, SimDuration)> = self.entries.iter().copied().collect();
                v.sort_by_key(|(job, rem)| (*rem, job.0));
                out.extend(v.into_iter().map(|(j, _)| j));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BackgroundQueue::new(LocalOrder::Fifo);
        q.enqueue(JobId(1), SimDuration::from_hours(5));
        q.enqueue(JobId(2), SimDuration::from_hours(1));
        q.enqueue(JobId(3), SimDuration::from_hours(3));
        assert_eq!(q.pop_next(), Some(JobId(1)));
        assert_eq!(q.pop_next(), Some(JobId(2)));
        assert_eq!(q.pop_next(), Some(JobId(3)));
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn shortest_first_order() {
        let mut q = BackgroundQueue::new(LocalOrder::ShortestFirst);
        q.enqueue(JobId(1), SimDuration::from_hours(5));
        q.enqueue(JobId(2), SimDuration::from_hours(1));
        q.enqueue(JobId(3), SimDuration::from_hours(3));
        assert_eq!(q.pop_next(), Some(JobId(2)));
        assert_eq!(q.pop_next(), Some(JobId(3)));
        assert_eq!(q.pop_next(), Some(JobId(1)));
    }

    #[test]
    fn shortest_first_ties_break_by_id() {
        let mut q = BackgroundQueue::new(LocalOrder::ShortestFirst);
        q.enqueue(JobId(9), SimDuration::HOUR);
        q.enqueue(JobId(2), SimDuration::HOUR);
        assert_eq!(q.pop_next(), Some(JobId(2)));
    }

    #[test]
    fn preempted_jobs_go_to_front_under_fifo() {
        let mut q = BackgroundQueue::new(LocalOrder::Fifo);
        q.enqueue(JobId(1), SimDuration::HOUR);
        q.enqueue_front(JobId(7), SimDuration::HOUR);
        assert_eq!(q.pop_next(), Some(JobId(7)));
    }

    #[test]
    fn pop_next_where_skips_ineligible() {
        let mut q = BackgroundQueue::new(LocalOrder::Fifo);
        q.enqueue(JobId(1), SimDuration::HOUR);
        q.enqueue(JobId(2), SimDuration::HOUR);
        q.enqueue(JobId(3), SimDuration::HOUR);
        assert_eq!(q.pop_next_where(|j| j.0 % 2 == 0), Some(JobId(2)));
        // Queue order of the others is intact.
        assert_eq!(q.pop_next(), Some(JobId(1)));
        assert_eq!(q.pop_next(), Some(JobId(3)));
        assert_eq!(q.pop_next_where(|_| true), None);
    }

    #[test]
    fn pop_next_where_respects_shortest_first() {
        let mut q = BackgroundQueue::new(LocalOrder::ShortestFirst);
        q.enqueue(JobId(1), SimDuration::from_hours(1)); // shortest, ineligible
        q.enqueue(JobId(2), SimDuration::from_hours(3));
        q.enqueue(JobId(3), SimDuration::from_hours(2));
        assert_eq!(q.pop_next_where(|j| j != JobId(1)), Some(JobId(3)));
    }

    #[test]
    fn service_order_matches_pop_order() {
        for order in [LocalOrder::Fifo, LocalOrder::ShortestFirst] {
            let mut q = BackgroundQueue::new(order);
            q.enqueue(JobId(3), SimDuration::from_hours(2));
            q.enqueue(JobId(1), SimDuration::from_hours(9));
            q.enqueue(JobId(2), SimDuration::from_hours(1));
            let predicted = q.ids_in_service_order();
            let mut popped = Vec::new();
            while let Some(j) = q.pop_next() {
                popped.push(j);
            }
            assert_eq!(predicted, popped, "{order:?}");
        }
    }

    #[test]
    fn remove_and_contains() {
        let mut q = BackgroundQueue::new(LocalOrder::Fifo);
        q.enqueue(JobId(1), SimDuration::HOUR);
        q.enqueue(JobId(2), SimDuration::HOUR);
        assert!(q.contains(JobId(1)));
        assert!(q.remove(JobId(1)));
        assert!(!q.contains(JobId(1)));
        assert!(!q.remove(JobId(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        let ids: Vec<JobId> = q.iter().collect();
        assert_eq!(ids, vec![JobId(2)]);
    }
}
