//! Space-parallel within-run simulation: per-pool shards with
//! conservative lookahead.
//!
//! A [`PoolTopology`] on the config partitions the fleet into contiguous
//! per-pool shards. Each shard is a complete [`Cluster`] — its own
//! stations, queues, coordinator cache, and event wheel — advanced by its
//! own [`Engine`]. Shards run a conservative synchronous-window discrete
//! event simulation:
//!
//! 1. Every shard advances independently to the next window barrier
//!    `T + W`, where the window `W` never exceeds the minimum inter-pool
//!    message latency (the lookahead, [`condor_net::PoolLinks::min_latency`]).
//! 2. At the barrier, cross-shard traffic is exchanged: saturated pools
//!    (waiting jobs, zero free machines) forward overflow jobs to the pool
//!    with the most free capacity. A message sent at barrier `T` is
//!    delivered at `T + latency ≥ T + W` — never inside any shard's
//!    already-simulated past, which is what makes the parallel run safe
//!    without rollback.
//! 3. The per-shard outputs are merged deterministically at the end of
//!    the run: trace events ordered by `(time, pool, emission index)`,
//!    job/station ids remapped back to the global namespace, and the
//!    aggregate series summed.
//!
//! Every cross-thread decision (which jobs move, where they land, how the
//! merge ties break) is taken on the main thread in pool order, so the
//! output is **bit-identical at any worker thread count** — `threads`
//! only changes how many shards advance concurrently between barriers. A
//! one-pool topology degenerates to the classic serial simulation: the
//! single shard sees the exact same config, seed, and event sequence, and
//! the windowed [`Engine::run_until`] calls tile into one contiguous run.
//!
//! Live [`TraceSink`]s attached to a multi-pool run observe the merged
//! stream with one caveat: [`GaugeSample`]s are per-pool (each shard's
//! coordinator polls its own pool), and events are replayed in batches at
//! window granularity rather than the instant they happen.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use condor_net::NodeId;
use condor_sim::engine::Engine;
use condor_sim::series::StepSeries;
use condor_sim::time::{SimDuration, SimTime};

use crate::cluster::{finish_run, Cluster, Event, RunOutput, Totals};
use crate::config::{ClusterConfig, ConfigError, PoolTopology};
use crate::job::{Job, JobId, JobSpec, JobState, UserId};
use crate::telemetry::{GaugeSample, SharedSink, Telemetry, TraceSink};
use crate::trace::{Trace, TraceEvent};

/// Worker threads to use when the caller does not pin a count: the
/// `CONDOR_THREADS` environment variable if set to a positive integer,
/// otherwise the machine's available parallelism, otherwise one.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("CONDOR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Mixes a pool index into the master seed. Pool 0 keeps the master seed
/// unchanged so a one-pool topology reproduces the serial run exactly;
/// later pools get decorrelated owner/dwell substreams (station RNG
/// streams are keyed by shard-local index, so without this every pool
/// would replay pool 0's owners).
fn shard_seed(seed: u64, pool: usize) -> u64 {
    seed ^ (pool as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One pool's slice of the run: its engine plus the bookkeeping needed to
/// translate shard-local ids back to the global namespace.
struct ShardSlot {
    engine: Engine<Cluster>,
    meta: ShardMeta,
}

/// The id-translation bookkeeping that outlives a shard's engine.
struct ShardMeta {
    /// Global index of this shard's first station.
    station_base: usize,
    /// Shard-local job id → global job id (grows on adoption).
    to_global: Vec<JobId>,
}

/// An emission captured from one shard between two barriers, replayed
/// into user sinks in merged order.
#[derive(Debug)]
enum EmitItem {
    Event(TraceEvent),
    Sample(GaugeSample),
}

impl EmitItem {
    fn at(&self) -> SimTime {
        match self {
            EmitItem::Event(ev) => ev.at,
            EmitItem::Sample(s) => s.at,
        }
    }
}

/// Buffers one shard's emissions (events and gauge samples) in emission
/// order so the main thread can drain and merge them at each barrier.
#[derive(Debug, Default)]
struct EmitLog {
    items: Vec<EmitItem>,
}

impl TraceSink for EmitLog {
    fn record(&mut self, ev: &TraceEvent) {
        self.items.push(EmitItem::Event(*ev));
    }

    fn sample(&mut self, s: &GaugeSample) {
        self.items.push(EmitItem::Sample(*s));
    }
}

/// Derives pool `p`'s shard configuration from the global one: local
/// fleet size, decorrelated seed, the arch pattern rotated so every
/// station keeps its global architecture, the coordinator host and
/// reservations remapped into local ids, and the chaos schedule routed to
/// the pools it targets.
fn shard_config(
    config: &ClusterConfig,
    range: &Range<usize>,
    pool: usize,
    chaos_parts: Option<&[crate::chaos::ChaosConfig]>,
) -> ClusterConfig {
    let mut c = config.clone();
    c.topology = None;
    c.stations = range.len();
    c.seed = shard_seed(config.seed, pool);
    let n = config.arch_pattern.len();
    c.arch_pattern = (0..n).map(|k| config.arch_pattern[(range.start + k) % n]).collect();
    // Capacity profiles cycle over global station ids exactly like the
    // arch pattern: rotate so every station keeps its global capacity.
    let m = config.capacity_profiles.len();
    c.capacity_profiles =
        (0..m).map(|k| config.capacity_profiles[(range.start + k) % m]).collect();
    let coord = config.coordinator_host as usize;
    // Each pool runs its own coordinator. The pool holding the global
    // coordinator host keeps it; the others default to their station 0.
    c.coordinator_host =
        if range.contains(&coord) { (coord - range.start) as u32 } else { 0 };
    c.reservations = config
        .reservations
        .iter()
        .filter(|r| range.contains(&r.holder.as_usize()))
        .map(|r| {
            let mut r = *r;
            r.holder = NodeId::new((r.holder.as_usize() - range.start) as u32);
            r
        })
        .collect();
    c.chaos = chaos_parts.map(|parts| parts[pool].clone());
    c
}

/// Splits the global job list into per-pool spec lists with dense local
/// ids, returning the specs alongside each pool's local → global id map.
/// Dependencies must stay inside one pool — a shard cannot observe
/// another shard's completions mid-window.
fn partition_jobs(
    specs: &[JobSpec],
    topo: &PoolTopology,
    stations: usize,
    ranges: &[Range<usize>],
) -> (Vec<Vec<JobSpec>>, Vec<Vec<JobId>>) {
    let pools = topo.pools;
    let mut shard_specs: Vec<Vec<JobSpec>> = (0..pools).map(|_| Vec::new()).collect();
    let mut to_global: Vec<Vec<JobId>> = (0..pools).map(|_| Vec::new()).collect();
    let mut pool_of_job: Vec<u32> = Vec::with_capacity(specs.len());
    let mut local_of_job: Vec<u64> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        assert!(
            spec.id.0 as usize == i,
            "invalid cluster configuration: {}",
            ConfigError::JobIdsNotDense
        );
        assert!(
            spec.home.as_usize() < stations,
            "invalid cluster configuration: {}",
            ConfigError::JobHomeOutsideFleet { job: spec.id, home: spec.home }
        );
        let p = topo.pool_of(spec.home.as_usize(), stations);
        let mut local = spec.clone();
        local.id = JobId(shard_specs[p].len() as u64);
        local.home = NodeId::new((spec.home.as_usize() - ranges[p].start) as u32);
        local.depends_on = spec
            .depends_on
            .iter()
            .map(|d| {
                assert!(
                    d.0 < spec.id.0,
                    "invalid cluster configuration: {}",
                    ConfigError::JobDependencyOrder { job: spec.id, dep: *d }
                );
                assert!(
                    pool_of_job[d.0 as usize] == p as u32,
                    "invalid cluster configuration: {}",
                    ConfigError::TopologyCrossPoolDependency { job: spec.id, dep: *d }
                );
                JobId(local_of_job[d.0 as usize])
            })
            .collect();
        pool_of_job.push(p as u32);
        local_of_job.push(to_global[p].len() as u64);
        to_global[p].push(spec.id);
        shard_specs[p].push(local);
    }
    (shard_specs, to_global)
}

/// Barrier-instant overflow forwarding, run by the main thread alone in
/// pool order (deterministic regardless of worker thread count). A pool
/// with waiting jobs and no free machine hands up to
/// `max_forwards_per_window` simple jobs to the pool with the most free
/// machines; each forward is delivered as an arrival one link latency
/// later — at or beyond the next barrier, which is what the lookahead
/// guarantees.
fn exchange_overflow(slots: &[Mutex<ShardSlot>], topo: &PoolTopology, h: SimTime) {
    let pools = slots.len();
    if pools < 2 || topo.max_forwards_per_window == 0 {
        return;
    }
    let mut free = vec![0u32; pools];
    let mut waiting = vec![0u32; pools];
    for (p, slot) in slots.iter().enumerate() {
        let mut s = slot.lock().expect("shard lock");
        let (f, w) = s.engine.model_mut().capacity_snapshot();
        free[p] = f;
        waiting[p] = w;
    }
    for p in 0..pools {
        for _ in 0..topo.max_forwards_per_window {
            if waiting[p] == 0 || free[p] > 0 {
                break;
            }
            // Most free capacity wins; ties go to the lowest pool id.
            let Some(q) = (0..pools)
                .filter(|&q| q != p && free[q] > 0)
                .max_by_key(|&q| (free[q], std::cmp::Reverse(q)))
            else {
                break;
            };
            let (spec, global) = {
                let mut src = slots[p].lock().expect("shard lock");
                let Some(spec) = src.engine.model_mut().extract_forwardable(h, q as u32)
                else {
                    break;
                };
                let global = src.meta.to_global[spec.id.0 as usize];
                (spec, global)
            };
            let deliver = h + topo.links.latency(p, q);
            let mut dst = slots[q].lock().expect("shard lock");
            let local = dst.engine.model_mut().adopt_spec(spec);
            debug_assert_eq!(local.0 as usize, dst.meta.to_global.len());
            dst.meta.to_global.push(global);
            dst.engine.scheduler().at(deliver, Event::Arrival(local));
            waiting[p] -= 1;
            free[q] -= 1;
        }
    }
}

/// Rewrites one shard-emitted event into the global namespace.
fn remap_event(ev: TraceEvent, meta: &ShardMeta) -> TraceEvent {
    let base = meta.station_base as u32;
    TraceEvent {
        at: ev.at,
        kind: ev.kind.remapped(
            &|j: JobId| meta.to_global[j.0 as usize],
            &|n: NodeId| NodeId::new(n.as_usize() as u32 + base),
        ),
    }
}

/// Drains every shard's emission buffer, merges the batch by
/// `(time, pool, emission index)`, remaps ids, and replays it into the
/// user's sinks.
fn drain_emit_logs(
    logs: &[SharedSink<EmitLog>],
    slots: &[Mutex<ShardSlot>],
    user_sinks: &mut [Box<dyn TraceSink + Send>],
) {
    if logs.is_empty() || user_sinks.is_empty() {
        return;
    }
    let mut batch: Vec<(SimTime, usize, usize, EmitItem)> = Vec::new();
    for (p, log) in logs.iter().enumerate() {
        let items = log.with(|l| std::mem::take(&mut l.items));
        if items.is_empty() {
            continue;
        }
        let slot = slots[p].lock().expect("shard lock");
        for (i, item) in items.into_iter().enumerate() {
            let item = match item {
                EmitItem::Event(ev) => EmitItem::Event(remap_event(ev, &slot.meta)),
                sample => sample,
            };
            batch.push((item.at(), p, i, item));
        }
    }
    batch.sort_by_key(|&(at, p, i, _)| (at, p, i));
    for (_, _, _, item) in batch {
        for sink in user_sinks.iter_mut() {
            match &item {
                EmitItem::Event(ev) => sink.record(ev),
                EmitItem::Sample(s) => sink.sample(s),
            }
        }
    }
}

/// Field-wise sum of aggregate counters.
fn add_totals(acc: &mut Totals, t: &Totals) {
    acc.placements += t.placements;
    acc.migrations += t.migrations;
    acc.periodic_checkpoints += t.periodic_checkpoints;
    acc.kills += t.kills;
    acc.preemptions_owner += t.preemptions_owner;
    acc.preemptions_priority += t.preemptions_priority;
    acc.resumes_in_place += t.resumes_in_place;
    acc.placement_disk_rejections += t.placement_disk_rejections;
    acc.arch_starvation += t.arch_starvation;
    acc.submit_rejections += t.submit_rejections;
    acc.polls += t.polls;
    acc.poll_memo_hits += t.poll_memo_hits;
    acc.interference_ms += t.interference_ms;
    acc.reservation_placements += t.reservation_placements;
    acc.gang_placements += t.gang_placements;
    acc.station_failures += t.station_failures;
    acc.crash_rollbacks += t.crash_rollbacks;
    acc.local_starts += t.local_starts;
    acc.ckpt_retries += t.ckpt_retries;
    acc.jobs_forwarded += t.jobs_forwarded;
    acc.jobs_adopted += t.jobs_adopted;
    acc.replicas_spawned += t.replicas_spawned;
    acc.replicas_cancelled += t.replicas_cancelled;
    acc.wasted_replica_work += t.wasted_replica_work;
}

/// K-way merge of the per-shard traces by `(time, pool)` — each shard's
/// trace is already time-sorted, so ties break toward the lower pool id,
/// matching the barrier processing order — with every event rewritten
/// into the global namespace.
fn merge_traces(outs: &[RunOutput], metas: &[ShardMeta]) -> Trace {
    let mut merged = Trace::new();
    let mut idx = vec![0usize; outs.len()];
    loop {
        let mut best: Option<(SimTime, usize)> = None;
        for (p, out) in outs.iter().enumerate() {
            if let Some(ev) = out.trace.events().get(idx[p]) {
                if best.is_none_or(|(t, _)| ev.at < t) {
                    best = Some((ev.at, p));
                }
            }
        }
        let Some((_, p)) = best else { break };
        let ev = remap_event(outs[p].trace.events()[idx[p]], &metas[p]);
        merged.record(ev.at, ev.kind);
        idx[p] += 1;
    }
    merged
}

/// Merges the per-shard [`RunOutput`]s into one global output: jobs back
/// in their global slots (a forwarded job's destination copy supersedes
/// the source-pool stub), traces k-way merged, series summed, counters
/// added. `metas` must be parallel to `outs`.
fn merge_outputs(
    mut outs: Vec<RunOutput>,
    metas: &[ShardMeta],
    stations: usize,
    total_jobs: usize,
    record_trace: bool,
) -> RunOutput {
    let trace = if record_trace { merge_traces(&outs, metas) } else { Trace::disabled() };
    // Jobs: every global slot is filled by exactly one live copy. A job
    // forwarded at a barrier leaves a `Forwarded` stub in its source pool
    // and a live copy in its destination; the live copy wins.
    let mut jobs: Vec<Option<Job>> = (0..total_jobs).map(|_| None).collect();
    for (p, out) in outs.iter_mut().enumerate() {
        let meta = &metas[p];
        for (local, mut job) in std::mem::take(&mut out.jobs).into_iter().enumerate() {
            let g = meta.to_global[local];
            job.spec.id = g;
            job.spec.home =
                NodeId::new((job.spec.home.as_usize() + meta.station_base) as u32);
            job.spec.depends_on =
                job.spec.depends_on.iter().map(|d| meta.to_global[d.0 as usize]).collect();
            let slot = &mut jobs[g.0 as usize];
            match slot {
                None => *slot = Some(job),
                Some(prev) if prev.state == JobState::Forwarded => *slot = Some(job),
                Some(_) => {} // incoming is the stub; keep the live copy
            }
        }
    }
    let mut totals = Totals::default();
    let mut telemetry: Option<Telemetry> = None;
    let mut local_busy = None;
    let mut remote_busy = None;
    let mut queue_totals = Vec::new();
    let mut by_user: BTreeMap<UserId, Vec<StepSeries>> = BTreeMap::new();
    let mut bus_bytes_moved = 0;
    let mut bus_transfers = 0;
    let mut events_dispatched = 0;
    let mut policy_name = String::new();
    let mut horizon = SimTime::ZERO;
    for out in outs {
        if policy_name.is_empty() {
            policy_name = out.policy_name;
            horizon = out.horizon;
        }
        add_totals(&mut totals, &out.totals);
        match telemetry.as_mut() {
            None => telemetry = Some(out.telemetry),
            Some(t) => t.merge(&out.telemetry),
        }
        match local_busy.as_mut() {
            None => local_busy = Some(out.local_busy),
            Some(b) => b.absorb(&out.local_busy),
        }
        match remote_busy.as_mut() {
            None => remote_busy = Some(out.remote_busy),
            Some(b) => b.absorb(&out.remote_busy),
        }
        queue_totals.push(out.queue_total);
        for (u, s) in out.queue_by_user {
            by_user.entry(u).or_default().push(s);
        }
        bus_bytes_moved += out.bus_bytes_moved;
        bus_transfers += out.bus_transfers;
        events_dispatched += out.events_dispatched;
    }
    let queue_total = StepSeries::merge_sum(&queue_totals.iter().collect::<Vec<_>>());
    let queue_by_user = by_user
        .into_iter()
        .map(|(u, parts)| (u, StepSeries::merge_sum(&parts.iter().collect::<Vec<_>>())))
        .collect();
    RunOutput {
        policy_name,
        stations,
        horizon,
        jobs: jobs
            .into_iter()
            .map(|j| j.expect("every job landed in exactly one shard"))
            .collect(),
        trace,
        totals,
        queue_total,
        queue_by_user,
        local_busy: local_busy.expect("at least one shard"),
        remote_busy: remote_busy.expect("at least one shard"),
        bus_bytes_moved,
        bus_transfers,
        events_dispatched,
        telemetry: telemetry.expect("at least one shard"),
    }
}

/// The sharded space-parallel runner behind
/// [`run_cluster_with_sinks`](crate::cluster::run_cluster_with_sinks) and
/// [`run_cluster_with_threads`](crate::cluster::run_cluster_with_threads).
/// `threads` of `None` reads [`default_threads`].
///
/// # Panics
///
/// Panics on an invalid configuration (mirroring [`Cluster::new`]) — in
/// particular on a dependency edge crossing pools.
pub(crate) fn run_sharded(
    config: ClusterConfig,
    specs: Vec<JobSpec>,
    horizon: SimDuration,
    sinks: Vec<Box<dyn TraceSink + Send>>,
    threads: Option<usize>,
) -> RunOutput {
    let topo = config.topology.clone().expect("sharded runner requires a topology");
    if let Err(e) = config.check() {
        panic!("invalid cluster configuration: {e}");
    }
    let pools = topo.pools;
    let stations = config.stations;
    let total_jobs = specs.len();
    let record_trace = config.record_trace;
    let threads = threads.unwrap_or_else(default_threads).clamp(1, pools);
    let ranges: Vec<Range<usize>> = (0..pools).map(|p| topo.range(p, stations)).collect();
    let (mut shard_specs, mut to_global) = partition_jobs(&specs, &topo, stations, &ranges);
    let coordinator_pool = topo.pool_of(config.coordinator_host as usize, stations);
    let chaos_parts = config
        .chaos
        .as_ref()
        .map(|c| crate::chaos::route_to_pools(c, &ranges, coordinator_pool));
    let mut user_sinks = sinks;
    let mut emit_logs: Vec<SharedSink<EmitLog>> = Vec::new();
    let slots: Vec<Mutex<ShardSlot>> = (0..pools)
        .map(|p| {
            let cfg = shard_config(&config, &ranges[p], p, chaos_parts.as_deref());
            let mut cluster = Cluster::new(cfg, std::mem::take(&mut shard_specs[p]));
            if !user_sinks.is_empty() {
                if pools == 1 {
                    // Single shard: attach the user's sinks directly —
                    // they see the exact serial stream, no batching.
                    for sink in user_sinks.drain(..) {
                        cluster.attach_sink(sink);
                    }
                } else {
                    let log = SharedSink::new(EmitLog::default());
                    cluster.attach_sink(Box::new(log.clone()));
                    emit_logs.push(log);
                }
            }
            let mut engine = Engine::new(cluster);
            Cluster::prime(&mut engine);
            Mutex::new(ShardSlot {
                engine,
                meta: ShardMeta {
                    station_base: ranges[p].start,
                    to_global: std::mem::take(&mut to_global[p]),
                },
            })
        })
        .collect();
    let end = SimTime::ZERO + horizon;
    let step = topo.effective_window();

    // The window loop. All barrier-instant work (overflow exchange, sink
    // replay) happens on the main thread with every worker parked, in
    // pool order — the merge schedule is a pure function of the inputs.
    let mut run_windows = |slots: &[Mutex<ShardSlot>], run_window: &mut dyn FnMut(SimTime)| {
        let mut w: u64 = 0;
        loop {
            let h = (SimTime::ZERO + step * (w + 1)).min(end);
            run_window(h);
            if h < end {
                exchange_overflow(slots, &topo, h);
                drain_emit_logs(&emit_logs, slots, &mut user_sinks);
                w += 1;
            } else {
                drain_emit_logs(&emit_logs, slots, &mut user_sinks);
                break;
            }
        }
        for sink in user_sinks.iter_mut() {
            sink.finish(end);
        }
    };
    if threads == 1 {
        run_windows(&slots, &mut |h| {
            for slot in &slots {
                slot.lock().expect("shard lock").engine.run_until(h);
            }
        });
    } else {
        // Persistent workers: shard `i` is owned by worker `i % threads`
        // for the whole run; two barrier waits bracket each window.
        let barrier = Barrier::new(threads + 1);
        let target_ms = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let slots = &slots;
                let barrier = &barrier;
                let target_ms = &target_ms;
                let done = &done;
                scope.spawn(move || loop {
                    barrier.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let h = SimTime::from_millis(target_ms.load(Ordering::Acquire));
                    for (i, slot) in slots.iter().enumerate() {
                        if i % threads == t {
                            slot.lock().expect("shard lock").engine.run_until(h);
                        }
                    }
                    barrier.wait();
                });
            }
            run_windows(&slots, &mut |h| {
                target_ms.store(h.as_millis(), Ordering::Release);
                barrier.wait(); // release workers into the window
                barrier.wait(); // all shards reached the barrier
            });
            done.store(true, Ordering::Release);
            barrier.wait(); // release workers into exit
        });
    }

    let finished: Vec<ShardSlot> =
        slots.into_iter().map(|m| m.into_inner().expect("shard lock")).collect();
    if pools == 1 {
        // One shard IS the global run: skip the merge so the output —
        // trace bytes included — is bit-identical to the serial runner.
        let slot = finished.into_iter().next().expect("one shard");
        return finish_run(slot.engine, end);
    }
    let mut outs = Vec::with_capacity(pools);
    let mut metas = Vec::with_capacity(pools);
    for slot in finished {
        outs.push(finish_run(slot.engine, end));
        metas.push(slot.meta);
    }
    merge_outputs(outs, &metas, stations, total_jobs, record_trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use condor_model::diurnal::DiurnalProfile;
    use condor_model::owner::OwnerConfig;

    fn spec(id: u64, home: u32, arrival_s: u64, demand_h: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            user: crate::job::UserId((id % 2) as u32),
            home: NodeId::new(home),
            arrival: SimTime::from_secs(arrival_s),
            demand: SimDuration::from_hours(demand_h),
            image_bytes: 200_000,
            syscalls_per_cpu_sec: 1.0,
            binaries: Default::default(),
            depends_on: Vec::new(),
            width: 1,
            resources: Default::default(),
            speedup: Default::default(),
        }
    }

    /// All jobs home in pool 0 with long demands: pool 0 saturates, and
    /// the window barriers must actually move overflow into pool 1 — the
    /// cross-shard path engages, it is not dead code behind determinism
    /// tests.
    #[test]
    fn saturated_pool_forwards_overflow_to_the_idle_pool() {
        let config = ClusterConfig {
            stations: 8,
            owner: OwnerConfig {
                profile: DiurnalProfile::flat(0.05),
                ..OwnerConfig::default()
            },
            topology: Some(PoolTopology::uniform(2, SimDuration::from_secs(600))),
            ..ClusterConfig::default()
        };
        // Ten long jobs, all submitted in pool 0 (stations 0..4).
        let specs: Vec<JobSpec> = (0..10).map(|i| spec(i, (i % 4) as u32, 600 * i, 200)).collect();
        let out = run_sharded(config, specs, SimDuration::from_days(2), Vec::new(), Some(2));
        assert!(
            out.totals.jobs_forwarded > 0,
            "saturated pool never forwarded: {:?}",
            out.totals
        );
        assert!(out.totals.jobs_adopted > 0, "no forwarded job was adopted");
        assert!(out.totals.jobs_adopted <= out.totals.jobs_forwarded);
        let forwarded = out
            .trace
            .filtered(|k| matches!(k, crate::trace::TraceKind::JobForwarded { .. }))
            .count() as u64;
        let adopted: Vec<_> = out
            .trace
            .filtered(|k| matches!(k, crate::trace::TraceKind::JobAdopted { .. }))
            .collect();
        assert_eq!(forwarded, out.totals.jobs_forwarded);
        assert_eq!(adopted.len() as u64, out.totals.jobs_adopted);
        // Adopted jobs landed in pool 1 (global stations 4..8) and their
        // job table entries carry the new home.
        for ev in adopted {
            let crate::trace::TraceKind::JobAdopted { job, on } = ev.kind else { unreachable!() };
            assert!(on.as_usize() >= 4, "adoption landed in the saturated pool");
            assert_eq!(out.jobs[job.0 as usize].spec.home, on);
            assert!(out.jobs[job.0 as usize].adopted);
        }
        // Every global job id resolved to exactly one live copy.
        assert_eq!(out.jobs.len(), 10);
        for (i, job) in out.jobs.iter().enumerate() {
            assert_eq!(job.spec.id.0 as usize, i);
            assert_ne!(job.state, JobState::Forwarded, "job {i} left as a stub");
        }
    }

    /// Station ranges and the pool-of-station inverse agree for uneven
    /// partitions.
    #[test]
    fn ranges_and_pool_of_agree() {
        let topo = PoolTopology::uniform(3, SimDuration::from_secs(60));
        let stations = 10; // 4 + 3 + 3
        let mut seen = 0;
        for p in 0..3 {
            let range = topo.range(p, stations);
            for s in range.clone() {
                assert_eq!(topo.pool_of(s, stations), p);
                seen += 1;
            }
        }
        assert_eq!(seen, stations);
    }

    /// `CONDOR_THREADS` beats detection; garbage falls through.
    #[test]
    fn thread_count_honours_the_environment() {
        // Serialized via the env-lock in practice: tests in this module
        // run single-threaded over this variable.
        std::env::set_var("CONDOR_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("CONDOR_THREADS", "0");
        assert!(default_threads() >= 1);
        std::env::remove_var("CONDOR_THREADS");
        assert!(default_threads() >= 1);
    }
}
