//! Capacity-allocation policies for the central coordinator.
//!
//! Each poll cycle the coordinator assembles a [`StationView`] per
//! workstation and asks its [`AllocationPolicy`] what to do. The policy
//! returns [`Order`]s: *assign* a free machine to a requesting station, or
//! *preempt* a foreign job to free capacity for a higher-priority station.
//!
//! The coordinator deliberately knows nothing about individual jobs — which
//! job runs next is the local scheduler's decision (paper §2.1). Policies
//! therefore reason purely about **stations**: who is idle, who is hosting
//! for whom, and who has work waiting.
//!
//! The paper's production policy is [Up-Down](crate::updown::UpDown); the
//! baselines here ([`FifoPolicy`], [`RoundRobinPolicy`], [`RandomPolicy`])
//! exist to reproduce its fairness comparison.

use condor_net::NodeId;
use condor_sim::rng::SimRng;
use condor_sim::time::SimTime;

use crate::bits::Bits;

/// Bucketed index of hostable stations keyed by free CPU share.
///
/// One bucket per distinct `free_cpu_milli` value, each holding a
/// two-level bitset (`bits::Bits`) of its stations. Membership updates are
/// O(log buckets) on a value change and O(1) within a bucket, and best-fit
/// iteration ([`CapacityIndex::for_each_best_fit`]) visits stations in
/// ascending `(free_cpu_milli, id)` order at O(matches + buckets) — so
/// [`FracPolicy`] finds its tightest targets without sorting the fleet's
/// whole free list every poll. The distinct-value set is small in practice
/// (a whole-machine fleet has exactly one bucket, 1000; fractional fleets
/// add one per remainder value seen), and a drained bucket keeps its slot.
#[derive(Debug)]
pub struct CapacityIndex {
    /// `(free_cpu_milli, members)`, sorted ascending by value.
    buckets: Vec<(u32, Bits)>,
    stations: usize,
}

impl CapacityIndex {
    /// An empty index over a fleet of `stations`.
    pub fn new(stations: usize) -> Self {
        CapacityIndex { buckets: Vec::new(), stations }
    }

    /// Moves `station` from the `old_milli` bucket to the `new_milli`
    /// bucket; zero means "not hostable" (absent from the index). Callers
    /// pass the view's previous and next `free_cpu_milli`, which is zero
    /// exactly when `can_host` is false, so index membership always equals
    /// the hostable set.
    pub fn update(&mut self, station: usize, old_milli: u32, new_milli: u32) {
        if old_milli == new_milli {
            return;
        }
        if old_milli > 0 {
            if let Ok(b) = self.buckets.binary_search_by_key(&old_milli, |e| e.0) {
                self.buckets[b].1.set(station, false);
            }
        }
        if new_milli > 0 {
            let b = match self.buckets.binary_search_by_key(&new_milli, |e| e.0) {
                Ok(b) => b,
                Err(b) => {
                    self.buckets.insert(b, (new_milli, Bits::new(self.stations)));
                    b
                }
            };
            self.buckets[b].1.set(station, true);
        }
    }

    /// Total hostable stations across all buckets.
    pub fn total(&self) -> u32 {
        self.buckets.iter().map(|(_, b)| b.count()).sum()
    }

    /// Calls `f` for each hostable station in ascending
    /// `(free_cpu_milli, id)` order — best-fit order — until it returns
    /// `false`.
    pub fn for_each_best_fit(&self, mut f: impl FnMut(NodeId) -> bool) {
        for (_, bucket) in &self.buckets {
            let mut go = true;
            bucket.for_each(|id| {
                go = f(NodeId::new(id));
                go
            });
            if !go {
                return;
            }
        }
    }

    /// The full best-fit ordering as `(free_cpu_milli, station)` pairs —
    /// the from-scratch comparison hook for consistency tests.
    pub fn entries(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (value, bucket) in &self.buckets {
            bucket.for_each(|id| {
                out.push((*value, id));
                true
            });
        }
        out
    }
}

/// What the coordinator learned about one station during a poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StationView {
    /// The station.
    pub node: NodeId,
    /// `true` when the station can host a foreign job right now: owner
    /// idle, no foreign job present (running, suspended, or in transfer),
    /// and disk space available.
    pub can_host: bool,
    /// If a foreign job is *running* here, the home station it belongs to.
    pub hosting_for: Option<NodeId>,
    /// Jobs waiting in this station's background queue.
    pub waiting_jobs: usize,
    /// Unallocated CPU share in milli-machines (1000 = a whole free CPU).
    /// Zero whenever `can_host` is false. Under the legacy whole-machine
    /// model this is always exactly 0 or 1000; fractional fleets expose
    /// partially used stations here so capacity-aware policies (e.g.
    /// [`FracPolicy`]) can pack residents.
    pub free_cpu_milli: u32,
}

/// An instruction from the coordinator to the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Grant the free machine `target` to `home`; the local scheduler at
    /// `home` places its next queued job there.
    Assign {
        /// The station whose queue is served.
        home: NodeId,
        /// The idle machine granted.
        target: NodeId,
    },
    /// Checkpoint the foreign job running at `target` and send it home, so
    /// the capacity can be re-granted (normally to a higher-priority
    /// station at a subsequent poll).
    Preempt {
        /// The machine to vacate.
        target: NodeId,
    },
}

/// One poll cycle's input to an [`AllocationPolicy`].
///
/// Besides the per-station `views`, the coordinator hands policies the
/// pre-extracted **active sets** — requesters and hosts — so a policy's
/// work scales with the number of *active* stations, not the fleet size.
/// The cluster maintains these sets incrementally across owner-flip and
/// occupancy transitions; test code can derive them from views with
/// [`decide_from_views`].
///
/// Under a [pool topology](crate::config::PoolTopology) every pool runs
/// its own coordinator, so a `PollInput` is always **pool-scoped**: node
/// ids are shard-local, the views cover one pool's stations only, and a
/// policy never sees (or places across) another pool. Cross-pool balance
/// happens between polls, at window barriers, via overflow forwarding.
#[derive(Debug, Clone, Copy)]
pub struct PollInput<'a> {
    /// One entry per station, indexed by station id.
    pub views: &'a [StationView],
    /// Stations with `waiting_jobs > 0`, ascending station id.
    pub requesters: &'a [NodeId],
    /// Stations with `hosting_for` set, ascending station id.
    pub hosts: &'a [NodeId],
    /// Machines able to host, in the **cluster's placement preference
    /// order** (plain id order normally; longest-expected-idle first when
    /// history-aware placement is enabled). Policies take targets from the
    /// front of this list. May be a *budget-sized prefix* of the hostable
    /// set: the cluster hands over only as many machines as
    /// `max_placements` allows it to grant, so check [`free_total`] — not
    /// `free.len()` — for "is any machine free at all".
    ///
    /// [`free_total`]: PollInput::free_total
    pub free: &'a [NodeId],
    /// Total hostable machines this poll. At least `free.len()`; larger
    /// when `free` is a truncated prefix.
    pub free_total: usize,
    /// Bucketed free-capacity index over the whole hostable set, when the
    /// coordinator maintains one. Capacity-aware policies use it to pick
    /// best-fit targets in O(matches) instead of sorting `free`; `None`
    /// means fall back to sorting (test drivers, history-aware placement
    /// where the preference order is not id order).
    pub capacity: Option<&'a CapacityIndex>,
    /// Upper bound on `Assign` orders this cycle (paper §4: one placement
    /// per two minutes protects the network and the submitting machines).
    pub max_placements: usize,
}

/// A capacity-allocation policy.
///
/// Implementations must be deterministic given their construction seed and
/// the sequence of `decide` calls.
pub trait AllocationPolicy: std::fmt::Debug {
    /// Short stable name for reports.
    fn name(&self) -> &'static str;

    /// Decides this poll's orders.
    ///
    /// Policies must not assign the same target twice, must only assign
    /// hostable targets (drawn from `input.free` or `input.capacity`), and
    /// must only preempt stations with `hosting_for` set.
    fn decide(&mut self, now: SimTime, input: &PollInput<'_>) -> Vec<Order>;

    /// `true` when a `decide` whose input carries **no requesters and no
    /// hosts** is a provable no-op: it would return no orders and leave the
    /// policy state bit-identical. The coordinator memoizes idle polls on
    /// this — a policy with latent per-poll state (an index still drifting,
    /// a line still draining) must answer `false` until that state reaches
    /// its fixed point. The conservative default is "never".
    fn quiescent(&self) -> bool {
        false
    }
}

/// Derives the requester/host sets by scanning `views` and calls
/// [`AllocationPolicy::decide`] — the convenience path for tests, benches,
/// and callers that do not maintain the active sets incrementally. This is
/// the "rescan baseline" the cluster's cached poll state replaces.
pub fn decide_from_views(
    policy: &mut dyn AllocationPolicy,
    now: SimTime,
    views: &[StationView],
    free: &[NodeId],
    max_placements: usize,
) -> Vec<Order> {
    let requesters: Vec<NodeId> = views
        .iter()
        .filter(|v| v.waiting_jobs > 0)
        .map(|v| v.node)
        .collect();
    let hosts: Vec<NodeId> = views
        .iter()
        .filter(|v| v.hosting_for.is_some())
        .map(|v| v.node)
        .collect();
    policy.decide(
        now,
        &PollInput {
            views,
            requesters: &requesters,
            hosts: &hosts,
            free,
            free_total: free.len(),
            capacity: None,
            max_placements,
        },
    )
}

/// Serves requesting stations in the order their demand was first seen;
/// never preempts. The station at the head of the line gets every free
/// machine until its queue drains — exactly the monopolisation behaviour
/// the Up-Down algorithm was designed to prevent.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    /// Homes with outstanding demand, oldest first.
    line: Vec<NodeId>,
}

impl FifoPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FifoPolicy::default()
    }

    fn refresh_line(&mut self, input: &PollInput<'_>) {
        // Drop homes that no longer want capacity (or vanished — fleets
        // can shrink between polls)…
        self.line
            .retain(|h| {
                input
                    .views
                    .get(h.as_usize())
                    .is_some_and(|v| v.waiting_jobs > 0)
            });
        // …and append newly demanding homes in id order (within one poll
        // we cannot observe finer arrival order; polls are the clock).
        for r in input.requesters {
            if !self.line.contains(r) {
                self.line.push(*r);
            }
        }
    }
}

impl AllocationPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    /// With no requesters the only state change `decide` can make is
    /// dropping satisfied homes from the line; an empty line is a fixed
    /// point.
    fn quiescent(&self) -> bool {
        self.line.is_empty()
    }

    fn decide(&mut self, _now: SimTime, input: &PollInput<'_>) -> Vec<Order> {
        self.refresh_line(input);
        if self.line.is_empty() {
            return Vec::new();
        }
        let mut free: Vec<NodeId> = input.free.to_vec();
        free.reverse(); // pop() yields the most-preferred machine first
        let mut remaining: Vec<usize> = self
            .line
            .iter()
            .map(|h| input.views[h.as_usize()].waiting_jobs)
            .collect();
        let mut orders = Vec::new();
        'outer: for (i, home) in self.line.iter().enumerate() {
            while remaining[i] > 0 {
                if orders.len() >= input.max_placements {
                    break 'outer;
                }
                let Some(target) = free.pop() else { break 'outer };
                orders.push(Order::Assign {
                    home: *home,
                    target,
                });
                remaining[i] -= 1;
            }
        }
        orders
    }
}

/// Capacity-aware best-fit packing for fractional workloads: serves
/// requesting stations in [`FifoPolicy`] line order, but grants each one
/// the hostable station with the **least** free CPU (ties to the
/// cluster's preference order). Packing residents onto partially used
/// stations keeps whole machines open for whole-demand jobs — the
/// classic best-fit bin-packing argument, applied to CPU shares. Never
/// preempts.
///
/// Under the legacy whole-machine model every free station shows exactly
/// 1000 free milli-CPU, so best-fit degenerates to FIFO order and this
/// policy behaves like [`FifoPolicy`].
#[derive(Debug, Default)]
pub struct FracPolicy {
    /// Homes with outstanding demand, oldest first.
    line: Vec<NodeId>,
}

impl FracPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FracPolicy::default()
    }

    fn refresh_line(&mut self, input: &PollInput<'_>) {
        self.line.retain(|h| {
            input
                .views
                .get(h.as_usize())
                .is_some_and(|v| v.waiting_jobs > 0)
        });
        for r in input.requesters {
            if !self.line.contains(r) {
                self.line.push(*r);
            }
        }
    }
}

impl AllocationPolicy for FracPolicy {
    fn name(&self) -> &'static str {
        "frac"
    }

    /// Same argument as [`FifoPolicy::quiescent`]: no requesters means the
    /// only possible mutation is line shrinkage.
    fn quiescent(&self) -> bool {
        self.line.is_empty()
    }

    fn decide(&mut self, _now: SimTime, input: &PollInput<'_>) -> Vec<Order> {
        self.refresh_line(input);
        if self.line.is_empty() {
            return Vec::new();
        }
        // Targets in best-fit order: ascending free CPU, ties in the
        // cluster's preference order. The bucketed index yields exactly
        // this order directly (its tie order is ascending id — the default
        // preference order), capped at the placement budget; without an
        // index, sort the free list. The sort path reverses first so the
        // stable sort preserves the preference order within equal keys,
        // then pops from the back.
        let mut targets: Vec<NodeId> = Vec::new();
        if let Some(cap) = input.capacity {
            cap.for_each_best_fit(|n| {
                targets.push(n);
                targets.len() < input.max_placements
            });
            targets.reverse(); // pop() below yields tightest-first
        } else {
            targets = input.free.to_vec();
            targets.reverse();
            targets.sort_by_key(|n| std::cmp::Reverse(input.views[n.as_usize()].free_cpu_milli));
        }
        let mut remaining: Vec<usize> = self
            .line
            .iter()
            .map(|h| input.views[h.as_usize()].waiting_jobs)
            .collect();
        let mut orders = Vec::new();
        'outer: for (i, home) in self.line.iter().enumerate() {
            while remaining[i] > 0 {
                if orders.len() >= input.max_placements {
                    break 'outer;
                }
                let Some(target) = targets.pop() else { break 'outer };
                orders.push(Order::Assign { home: *home, target });
                remaining[i] -= 1;
            }
        }
        orders
    }
}

/// Up-Down plus speculative replication (see [`crate::redundancy`]).
///
/// All *orders* are the inner [`UpDown`](crate::updown::UpDown)'s —
/// primary placements, preemptions, and the fairness index are untouched,
/// which is what makes the `replicas == 0` configuration bit-identical to
/// plain Up-Down. Replication happens *after* the policy layer: the
/// cluster spawns replicas on stations left idle once every order of a
/// poll has been executed, so a replica can never displace a primary
/// placement. The policy object itself carries the
/// [`RedundancyConfig`](crate::redundancy::RedundancyConfig) knobs the
/// cluster reads at spawn and checkpoint time.
#[derive(Debug)]
pub struct RedundantPolicy {
    config: crate::redundancy::RedundancyConfig,
    inner: crate::updown::UpDown,
}

impl RedundantPolicy {
    /// Creates the policy around its inner Up-Down allocator.
    pub fn new(config: crate::redundancy::RedundancyConfig) -> Self {
        RedundantPolicy { config, inner: crate::updown::UpDown::new(config.updown) }
    }

    /// The redundancy knobs in force.
    pub fn config(&self) -> &crate::redundancy::RedundancyConfig {
        &self.config
    }

    /// The wrapped Up-Down allocator (for index gauges).
    pub fn inner(&self) -> &crate::updown::UpDown {
        &self.inner
    }
}

impl AllocationPolicy for RedundantPolicy {
    fn name(&self) -> &'static str {
        "redundant"
    }

    fn quiescent(&self) -> bool {
        self.inner.quiescent()
    }

    fn decide(&mut self, now: SimTime, input: &PollInput<'_>) -> Vec<Order> {
        self.inner.decide(now, input)
    }
}

/// Rotates a cursor over the stations, granting one machine to each
/// demanding station in turn; never preempts.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    cursor: usize,
}

impl RoundRobinPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        RoundRobinPolicy::default()
    }
}

impl AllocationPolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    /// The cursor only moves when an order is issued, and no requesters
    /// means no orders.
    fn quiescent(&self) -> bool {
        true
    }

    fn decide(&mut self, _now: SimTime, input: &PollInput<'_>) -> Vec<Order> {
        let n = input.views.len();
        if n == 0 {
            return Vec::new();
        }
        // Fleets can shrink between polls; keep the cursor in range.
        self.cursor %= n;
        if input.requesters.is_empty() {
            return Vec::new();
        }
        let mut free: Vec<NodeId> = input.free.to_vec();
        free.reverse();
        // Per-requester outstanding demand, ascending station id — the
        // cursor walks this instead of scanning every station.
        let mut demand: Vec<(usize, usize)> = input
            .requesters
            .iter()
            .map(|r| (r.as_usize(), input.views[r.as_usize()].waiting_jobs))
            .collect();
        let mut total: usize = demand.iter().map(|&(_, d)| d).sum();
        let mut orders = Vec::new();
        while orders.len() < input.max_placements && !free.is_empty() && total > 0 {
            // The next demanding station at or after the cursor (wrapping).
            let pos = demand
                .iter()
                .position(|&(s, d)| d > 0 && s >= self.cursor)
                .or_else(|| demand.iter().position(|&(_, d)| d > 0))
                .expect("total > 0");
            let (station, _) = demand[pos];
            let target = free.pop().expect("checked non-empty");
            orders.push(Order::Assign {
                home: input.views[station].node,
                target,
            });
            demand[pos].1 -= 1;
            total -= 1;
            self.cursor = (station + 1) % n;
        }
        orders
    }
}

/// Grants each free machine to a uniformly random demanding station;
/// never preempts. Deterministic for a given seed.
#[derive(Debug)]
pub struct RandomPolicy {
    rng: SimRng,
}

impl RandomPolicy {
    /// Creates the policy with its own random stream.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SimRng::seed_from(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }
}

impl AllocationPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    /// `decide` returns before any RNG draw when no station requests, so
    /// the stream position is untouched.
    fn quiescent(&self) -> bool {
        true
    }

    fn decide(&mut self, _now: SimTime, input: &PollInput<'_>) -> Vec<Order> {
        if input.requesters.is_empty() {
            return Vec::new();
        }
        let mut free: Vec<NodeId> = input.free.to_vec();
        free.reverse();
        let mut demand: Vec<(NodeId, usize)> = input
            .requesters
            .iter()
            .map(|r| (*r, input.views[r.as_usize()].waiting_jobs))
            .collect();
        let mut orders = Vec::new();
        while orders.len() < input.max_placements && !free.is_empty() && !demand.is_empty() {
            let pick = self.rng.index(demand.len());
            let target = free.pop().expect("checked non-empty");
            orders.push(Order::Assign {
                home: demand[pick].0,
                target,
            });
            demand[pick].1 -= 1;
            if demand[pick].1 == 0 {
                demand.remove(pick);
            }
        }
        orders
    }
}

/// Validates an order batch against the views (used by the cluster in
/// debug builds and by policy tests): no duplicate targets, assignments
/// only to hostable machines, preemptions only of hosting machines.
pub fn validate_orders(orders: &[Order], views: &[StationView]) -> Result<(), String> {
    let mut used = std::collections::HashSet::new();
    for o in orders {
        match *o {
            Order::Assign { home, target } => {
                if !views[target.as_usize()].can_host {
                    return Err(format!("assign to non-hostable {target}"));
                }
                if views[home.as_usize()].waiting_jobs == 0 {
                    return Err(format!("assign to home {home} with no demand"));
                }
                if !used.insert(target) {
                    return Err(format!("target {target} assigned twice"));
                }
            }
            Order::Preempt { target } => {
                if views[target.as_usize()].hosting_for.is_none() {
                    return Err(format!("preempt of non-hosting {target}"));
                }
                if !used.insert(target) {
                    return Err(format!("target {target} ordered twice"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_of(views: &[StationView]) -> Vec<NodeId> {
        views.iter().filter(|v| v.can_host).map(|v| v.node).collect()
    }

    fn views(spec: &[(bool, Option<u32>, usize)]) -> Vec<StationView> {
        spec.iter()
            .enumerate()
            .map(|(i, &(can_host, hosting, waiting))| StationView {
                node: NodeId::new(i as u32),
                can_host,
                hosting_for: hosting.map(NodeId::new),
                waiting_jobs: waiting,
                free_cpu_milli: if can_host { 1000 } else { 0 },
            })
            .collect()
    }

    #[test]
    fn fifo_serves_head_of_line_first() {
        let mut p = FifoPolicy::new();
        // Station 2 demands 3 jobs, station 0 demands 1; machines 3,4 free.
        let v = views(&[
            (false, None, 1),
            (false, None, 0),
            (false, None, 3),
            (true, None, 0),
            (true, None, 0),
        ]);
        let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 10);
        validate_orders(&orders, &v).unwrap();
        // Station 0 first in id order, then 2 gets the rest.
        assert_eq!(orders.len(), 2);
        assert!(matches!(orders[0], Order::Assign { home, .. } if home == NodeId::new(0)));
        assert!(matches!(orders[1], Order::Assign { home, .. } if home == NodeId::new(2)));
    }

    #[test]
    fn fifo_line_persists_across_polls() {
        let mut p = FifoPolicy::new();
        // Poll 1: only station 1 demands; no machines.
        let v1 = views(&[(false, None, 0), (false, None, 2)]);
        assert!(decide_from_views(&mut p, SimTime::ZERO, &v1, &free_of(&v1), 10).is_empty());
        // Poll 2: station 0 also demands; one machine — station 1 was first.
        let v2 = views(&[(false, None, 2), (false, None, 2), (true, None, 0)]);
        let orders = decide_from_views(&mut p, SimTime::ZERO, &v2, &free_of(&v2), 10);
        assert_eq!(
            orders,
            vec![Order::Assign { home: NodeId::new(1), target: NodeId::new(2) }]
        );
    }

    #[test]
    fn fifo_respects_placement_budget() {
        let mut p = FifoPolicy::new();
        let v = views(&[(false, None, 5), (true, None, 0), (true, None, 0), (true, None, 0)]);
        let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 1);
        assert_eq!(orders.len(), 1);
    }

    #[test]
    fn frac_policy_packs_tightest_station_first() {
        let mut p = FracPolicy::new();
        // Station 0 demands 2 jobs; stations 1–3 are free with different
        // amounts of free CPU. Best fit targets the tightest first.
        let mut v = views(&[
            (false, None, 2),
            (true, None, 0),
            (true, None, 0),
            (true, None, 0),
        ]);
        v[1].free_cpu_milli = 1000;
        v[2].free_cpu_milli = 300;
        v[3].free_cpu_milli = 600;
        let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 10);
        validate_orders(&orders, &v).unwrap();
        assert_eq!(
            orders,
            vec![
                Order::Assign { home: NodeId::new(0), target: NodeId::new(2) },
                Order::Assign { home: NodeId::new(0), target: NodeId::new(3) },
            ]
        );
    }

    #[test]
    fn frac_policy_degenerates_to_fifo_on_whole_machines() {
        // All free stations show a whole free CPU → same orders as FIFO.
        let v = views(&[
            (false, None, 1),
            (false, None, 3),
            (true, None, 0),
            (true, None, 0),
        ]);
        let mut frac = FracPolicy::new();
        let mut fifo = FifoPolicy::new();
        let a = decide_from_views(&mut frac, SimTime::ZERO, &v, &free_of(&v), 10);
        let b = decide_from_views(&mut fifo, SimTime::ZERO, &v, &free_of(&v), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn round_robin_spreads_across_demanders() {
        let mut p = RoundRobinPolicy::new();
        let v = views(&[
            (false, None, 5),
            (false, None, 5),
            (true, None, 0),
            (true, None, 0),
        ]);
        let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 10);
        validate_orders(&orders, &v).unwrap();
        let homes: Vec<NodeId> = orders
            .iter()
            .map(|o| match o {
                Order::Assign { home, .. } => *home,
                _ => panic!("unexpected preempt"),
            })
            .collect();
        assert_eq!(homes, vec![NodeId::new(0), NodeId::new(1)]);
        // Next poll continues after the cursor.
        let v2 = views(&[
            (false, None, 4),
            (false, None, 4),
            (true, None, 0),
        ]);
        let orders2 = decide_from_views(&mut p, SimTime::ZERO, &v2, &free_of(&v2), 10);
        assert!(matches!(orders2[0], Order::Assign { home, .. } if home == NodeId::new(0)));
    }

    #[test]
    fn random_policy_is_deterministic_and_valid() {
        let run = |seed| {
            let mut p = RandomPolicy::new(seed);
            let v = views(&[
                (false, None, 3),
                (false, None, 3),
                (true, None, 0),
                (true, None, 0),
                (true, None, 0),
            ]);
            let orders = decide_from_views(&mut p, SimTime::ZERO, &v, &free_of(&v), 10);
            validate_orders(&orders, &v).unwrap();
            orders
        };
        assert_eq!(run(1), run(1));
        assert_eq!(run(1).len(), 3);
    }

    #[test]
    fn no_policy_assigns_without_demand_or_machines() {
        let idle_system = views(&[(true, None, 0), (true, None, 0)]);
        let starved = views(&[(false, None, 4), (false, Some(0), 0)]);
        let mut fifo = FifoPolicy::new();
        let mut rr = RoundRobinPolicy::new();
        let mut rnd = RandomPolicy::new(3);
        for v in [&idle_system, &starved] {
            assert!(decide_from_views(&mut fifo, SimTime::ZERO, v, &free_of(v), 10).is_empty());
            assert!(decide_from_views(&mut rr, SimTime::ZERO, v, &free_of(v), 10).is_empty());
            assert!(decide_from_views(&mut rnd, SimTime::ZERO, v, &free_of(v), 10).is_empty());
        }
    }

    #[test]
    fn validate_orders_catches_bad_batches() {
        let v = views(&[(true, None, 1), (false, Some(0), 0)]);
        let double = vec![
            Order::Assign { home: NodeId::new(0), target: NodeId::new(0) },
            Order::Assign { home: NodeId::new(0), target: NodeId::new(0) },
        ];
        assert!(validate_orders(&double, &v).is_err());
        let bad_target = vec![Order::Assign { home: NodeId::new(0), target: NodeId::new(1) }];
        assert!(validate_orders(&bad_target, &v).is_err());
        let bad_preempt = vec![Order::Preempt { target: NodeId::new(0) }];
        assert!(validate_orders(&bad_preempt, &v).is_err());
        let good = vec![
            Order::Assign { home: NodeId::new(0), target: NodeId::new(0) },
            Order::Preempt { target: NodeId::new(1) },
        ];
        assert!(validate_orders(&good, &v).is_ok());
    }
}
