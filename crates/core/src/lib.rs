//! # condor-core — the Condor scheduler
//!
//! A faithful reconstruction of the scheduling system of *Condor — A Hunter
//! of Idle Workstations* (Litzkow, Livny & Mutka, ICDCS 1988):
//!
//! * [`job`] — job specifications, lifecycle, and the per-job ledgers
//!   behind the paper's wait-ratio, checkpoint-rate, and leverage figures;
//! * [`queue`] — the autonomous per-station background queue;
//! * [`policy`] — the coordinator-side allocation policies: the trait, and
//!   FIFO / round-robin / random baselines;
//! * [`updown`] — the Up-Down fair-allocation algorithm (paper §2.4);
//! * [`redundancy`] — speculative job replication with
//!   cancel-on-first-finish and the opportunistic checkpoint timer;
//! * [`config`] — cluster configuration, including the §4 eviction
//!   strategies (grace-then-checkpoint vs immediate-kill);
//! * [`cluster`] — the full discrete-event cluster model binding owners,
//!   local schedulers, the coordinator, the network, and cost accounting;
//! * [`trace`] — the replayable event trace experiments consume;
//! * [`telemetry`] — streaming trace sinks and the O(1)-memory
//!   [`Telemetry`] summary every run produces;
//! * [`chaos`] — deterministic fault injection (control-message loss /
//!   delay / duplication, checkpoint corruption with retry, partitions,
//!   coordinator outages) plus the schedule-exploring, shrinking harness.
//!
//! ## Example: run a small cluster
//!
//! ```
//! use condor_core::cluster::Run;
//! use condor_core::config::ClusterConfig;
//! use condor_core::job::{JobId, JobSpec, UserId};
//! use condor_net::NodeId;
//! use condor_sim::time::{SimDuration, SimTime};
//!
//! let jobs: Vec<JobSpec> = (0..4)
//!     .map(|i| JobSpec {
//!         id: JobId(i),
//!         user: UserId(0),
//!         home: NodeId::new(0),
//!         arrival: SimTime::from_hours(1),
//!         demand: SimDuration::from_hours(2),
//!         image_bytes: 500_000,
//!         syscalls_per_cpu_sec: 1.0,
//!         binaries: Default::default(),
//!         depends_on: Vec::new(),
//!         width: 1,
//!         resources: Default::default(),
//!         speedup: Default::default(),
//!     })
//!     .collect();
//! let out = Run::new(ClusterConfig::default())
//!     .specs(jobs)
//!     .horizon(SimDuration::from_days(3))
//!     .execute();
//! assert!(out.totals.placements > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bits;
pub mod audit;
pub mod chaos;
pub mod cluster;
pub mod config;
pub mod job;
pub mod policy;
pub mod queue;
pub mod redundancy;
pub mod shard;
pub mod spans;
pub mod telemetry;
pub mod trace;
pub mod updown;

pub use audit::{AuditSink, AuditViolation, AuditViolationKind};
pub use chaos::{
    ChaosConfig, ChaosEntry, ChaosFailure, ChaosGen, ChaosParseError, ChaosSchedule,
    ExploreReport, Fault,
};
pub use cluster::{Cluster, Event, Run, RunOutput, Totals};
#[allow(deprecated)]
pub use cluster::{run_cluster, run_cluster_with_sinks};
pub use config::{
    ClusterConfig, ClusterConfigBuilder, ConfigError, EvictionStrategy, FailureConfig, PolicyKind,
    Reservation,
};
pub use job::{Job, JobId, JobSpec, JobState, PreemptReason, SpeedupCurve, UserId};
pub use policy::{
    AllocationPolicy, FifoPolicy, Order, RandomPolicy, RedundantPolicy, RoundRobinPolicy,
    StationView,
};
pub use queue::{BackgroundQueue, LocalOrder};
pub use redundancy::{CkptTiming, RedundancyConfig};
pub use spans::{
    Breakdown, JobBreakdown, JobSpans, Occupancy, Span, SpanLog, SpanMarker, SpanPhase, SpanSink,
};
pub use telemetry::{
    FanoutSink, GaugeSample, KindFilterSink, RingSink, SharedSink, StatsSink, Telemetry,
    TraceSink, VecSink,
};
pub use trace::{Trace, TraceEvent, TraceKind, TraceParseError};
pub use updown::{UpDown, UpDownConfig};
