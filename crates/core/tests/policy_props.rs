//! Property-based tests for the allocation policies: whatever the
//! snapshot, every policy must emit only legal orders, and the Up-Down
//! index dynamics must stay sane.

use condor_core::policy::{
    decide_from_views, validate_orders, AllocationPolicy, FifoPolicy, Order, RandomPolicy,
    RoundRobinPolicy, StationView,
};
use condor_core::updown::{UpDown, UpDownConfig};
use condor_net::NodeId;
use condor_sim::time::SimTime;
use proptest::prelude::*;

/// Arbitrary poll snapshots: per station, (can_host, hosting_for, waiting).
/// The station count is fixed within one generated sequence (a real fleet
/// does not change size between polls), but policies are additionally
/// hardened against shrinking fleets — see `fleet_shrinkage_is_tolerated`.
fn arb_views(stations: usize) -> impl Strategy<Value = Vec<StationView>> {
    prop::collection::vec(
        (any::<bool>(), prop::option::of(0u32..8), 0usize..6),
        stations..=stations,
    )
    .prop_map(|raw| {
        let n = raw.len() as u32;
        raw.into_iter()
            .enumerate()
            .map(|(i, (free, hosting, waiting))| {
                let hosting = hosting.map(|h| NodeId::new(h % n));
                StationView {
                    node: NodeId::new(i as u32),
                    // A station cannot both host and be free.
                    can_host: free && hosting.is_none(),
                    free_cpu_milli: if free && hosting.is_none() { 1000 } else { 0 },
                    hosting_for: hosting,
                    waiting_jobs: waiting,
                }
            })
            .collect()
    })
}

fn free_of(views: &[StationView]) -> Vec<NodeId> {
    views.iter().filter(|v| v.can_host).map(|v| v.node).collect()
}

proptest! {
    /// Every policy emits only valid orders and respects the placement
    /// budget, over arbitrary sequences of snapshots.
    #[test]
    fn all_policies_emit_legal_orders(
        snapshots in prop::collection::vec(arb_views(12), 1..20),
        budget in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut policies: Vec<Box<dyn AllocationPolicy>> = vec![
            Box::new(UpDown::new(UpDownConfig::default())),
            Box::new(FifoPolicy::new()),
            Box::new(RoundRobinPolicy::new()),
            Box::new(RandomPolicy::new(seed)),
        ];
        for views in &snapshots {
            let free = free_of(views);
            for p in &mut policies {
                let orders = decide_from_views(p.as_mut(), SimTime::ZERO, views, &free, budget);
                prop_assert!(
                    validate_orders(&orders, views).is_ok(),
                    "{} emitted invalid orders {orders:?} for {views:?}",
                    p.name()
                );
                let placements = orders
                    .iter()
                    .filter(|o| matches!(o, Order::Assign { .. }))
                    .count();
                prop_assert!(placements <= budget, "{} broke the budget", p.name());
                // Assignments only to genuinely free machines, each once.
                let mut used = std::collections::HashSet::new();
                for o in &orders {
                    if let Order::Assign { target, .. } = o {
                        prop_assert!(free.contains(target));
                        prop_assert!(used.insert(*target));
                    }
                }
            }
        }
    }

    /// Up-Down never self-preempts: no preemption order ever targets a
    /// machine hosting for a station that is itself requesting.
    #[test]
    fn updown_never_preempts_own_requester(
        snapshots in prop::collection::vec(arb_views(10), 1..30),
    ) {
        let mut p = UpDown::new(UpDownConfig {
            preemption_margin: 0.0, // most aggressive
            ..UpDownConfig::default()
        });
        for views in &snapshots {
            let free = free_of(views);
            let orders = decide_from_views(&mut p, SimTime::ZERO, views, &free, 1);
            for o in &orders {
                if let Order::Preempt { target } = o {
                    let victim_home = views[target.as_usize()].hosting_for.expect("validated");
                    // The victim's home must not be the top-priority
                    // requester that triggered the preemption. Weaker,
                    // always-checkable invariant: a preemption only fires
                    // when some OTHER station requests.
                    let some_other_requester = views
                        .iter()
                        .any(|v| v.waiting_jobs > 0 && v.node != victim_home);
                    prop_assert!(
                        some_other_requester,
                        "preempted {victim_home} with no competing demand"
                    );
                }
            }
        }
    }

    /// The Up-Down index stays bounded by cumulative activity: after any
    /// run it cannot exceed (polls × stations × up_rate) in magnitude, and
    /// with no usage and no demand it decays to zero.
    #[test]
    fn updown_index_is_bounded_and_decays(
        snapshots in prop::collection::vec(arb_views(8), 1..40),
    ) {
        let mut p = UpDown::new(UpDownConfig::default());
        let n_polls = snapshots.len() as f64;
        let mut max_stations = 0usize;
        for views in &snapshots {
            max_stations = max_stations.max(views.len());
            let free = free_of(views);
            let _ = decide_from_views(&mut p, SimTime::ZERO, views, &free, 1);
        }
        let bound = n_polls * max_stations as f64 + 1.0;
        for i in 0..max_stations {
            let idx = p.index_of(NodeId::new(i as u32));
            prop_assert!(idx.abs() <= bound, "index {idx} exceeds bound {bound}");
        }
        // Quiet polls decay everything to zero.
        let quiet: Vec<StationView> = (0..max_stations)
            .map(|i| StationView {
                node: NodeId::new(i as u32),
                can_host: false,
                free_cpu_milli: 0,
                hosting_for: None,
                waiting_jobs: 0,
            })
            .collect();
        for _ in 0..((bound / 0.25) as usize + 2) {
            let _ = decide_from_views(&mut p, SimTime::ZERO, &quiet, &[], 1);
        }
        for i in 0..max_stations {
            prop_assert_eq!(p.index_of(NodeId::new(i as u32)), 0.0);
        }
    }

    /// Determinism across identical replays, for every policy.
    #[test]
    fn policies_are_deterministic(
        snapshots in prop::collection::vec(arb_views(8), 1..15),
        seed in any::<u64>(),
    ) {
        let run = |mut p: Box<dyn AllocationPolicy>| {
            snapshots
                .iter()
                .map(|v| decide_from_views(p.as_mut(), SimTime::ZERO, v, &free_of(v), 2))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(Box::new(UpDown::new(UpDownConfig::default()))),
            run(Box::new(UpDown::new(UpDownConfig::default())))
        );
        assert_eq!(run(Box::new(FifoPolicy::new())), run(Box::new(FifoPolicy::new())));
        assert_eq!(
            run(Box::new(RoundRobinPolicy::new())),
            run(Box::new(RoundRobinPolicy::new()))
        );
        assert_eq!(
            run(Box::new(RandomPolicy::new(seed))),
            run(Box::new(RandomPolicy::new(seed)))
        );
    }
}


/// Regression: a fleet that shrinks between polls (stations removed from
/// the configuration) must not panic any policy — found by
/// `all_policies_emit_legal_orders` before the generator pinned the size.
#[test]
fn fleet_shrinkage_is_tolerated() {
    let big: Vec<StationView> = (0..8)
        .map(|i| StationView {
            node: NodeId::new(i),
            can_host: false,
            free_cpu_milli: 0,
            hosting_for: None,
            waiting_jobs: 3,
        })
        .collect();
    let small: Vec<StationView> = vec![StationView {
        node: NodeId::new(0),
        can_host: true,
        free_cpu_milli: 1000,
        hosting_for: None,
        waiting_jobs: 1,
    }];
    let mut policies: Vec<Box<dyn AllocationPolicy>> = vec![
        Box::new(UpDown::new(UpDownConfig::default())),
        Box::new(FifoPolicy::new()),
        Box::new(RoundRobinPolicy::new()),
        Box::new(RandomPolicy::new(7)),
    ];
    for p in &mut policies {
        let _ = decide_from_views(p.as_mut(), SimTime::ZERO, &big, &free_of(&big), 2);
        let orders = decide_from_views(p.as_mut(), SimTime::ZERO, &small, &free_of(&small), 2);
        assert!(validate_orders(&orders, &small).is_ok(), "{}", p.name());
    }
}
