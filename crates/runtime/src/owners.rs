//! Live owner simulation: the condor-model owner process driving real
//! worker threads.
//!
//! The cluster simulator and the live runtime share one model of owner
//! behaviour. [`OwnerSimulator`] samples each station's
//! [`OwnerProcess`](condor_model::owner::OwnerProcess) dwell times, scales
//! them down to wall-clock milliseconds, and toggles the workers'
//! owner-activity flags accordingly — so a live run sees the same
//! statistical interference pattern as a simulated month, just compressed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use condor_model::owner::{build_fleet, OwnerConfig, OwnerState};
use condor_sim::rng::SimRng;

/// Drives the owner flags of a set of live workers.
#[derive(Debug)]
pub struct OwnerSimulator {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<u64>>,
}

impl OwnerSimulator {
    /// Starts the simulator over the given worker flags.
    ///
    /// `sim_minute` is how much wall time one simulated minute takes —
    /// e.g. `Duration::from_millis(10)` compresses the paper's 2-minute
    /// poll to 20 ms.
    ///
    /// # Panics
    ///
    /// Panics if `flags` is empty or `sim_minute` is zero.
    pub fn start(
        flags: Vec<Arc<AtomicBool>>,
        config: OwnerConfig,
        sim_minute: Duration,
        seed: u64,
    ) -> OwnerSimulator {
        assert!(!flags.is_empty(), "no workers to drive");
        assert!(!sim_minute.is_zero(), "zero time scale");
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("condor-owners".into())
            .spawn(move || owner_loop(&flags, &config, sim_minute, seed, &stop_flag))
            .expect("spawn owner simulator");
        OwnerSimulator {
            stop,
            join: Some(join),
        }
    }

    /// Stops the simulator, clears every owner flag, and returns the total
    /// number of owner transitions it performed.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::SeqCst);
        self.join
            .take()
            .expect("owner simulator joined twice")
            .join()
            .expect("owner simulator panicked")
    }
}

impl Drop for OwnerSimulator {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = join.join();
        }
    }
}

fn owner_loop(
    flags: &[Arc<AtomicBool>],
    config: &OwnerConfig,
    sim_minute: Duration,
    seed: u64,
    stop: &AtomicBool,
) -> u64 {
    let n = flags.len();
    let mut processes = build_fleet(n, config, 0.3, seed);
    let root = SimRng::seed_from(seed);
    let mut rngs: Vec<SimRng> = (0..n)
        .map(|i| root.substream(seed, &format!("live-owner-{i}")))
        .collect();
    let scale = sim_minute.as_secs_f64() / 60.0; // wall seconds per sim second
    let start = Instant::now();
    // Simulated clock runs via the scale factor from real elapsed time.
    let mut sim_now = condor_sim::time::SimTime::ZERO;
    let mut deadlines: Vec<(Instant, OwnerState)> = Vec::with_capacity(n);
    let mut transitions = 0u64;
    for i in 0..n {
        let state = processes[i].state();
        flags[i].store(state == OwnerState::Active, Ordering::SeqCst);
        let dwell = processes[i].dwell_and_flip(sim_now, &mut rngs[i]);
        let real = Duration::from_secs_f64(dwell.as_secs_f64() * scale);
        deadlines.push((start + real, processes[i].state()));
    }
    while !stop.load(Ordering::SeqCst) {
        let now = Instant::now();
        sim_now = condor_sim::time::SimTime::from_millis(
            ((now - start).as_secs_f64() / scale * 1_000.0) as u64,
        );
        for i in 0..n {
            if now >= deadlines[i].0 {
                let entering = deadlines[i].1;
                flags[i].store(entering == OwnerState::Active, Ordering::SeqCst);
                transitions += 1;
                let dwell = processes[i].dwell_and_flip(sim_now, &mut rngs[i]);
                let real = Duration::from_secs_f64(dwell.as_secs_f64() * scale);
                deadlines[i] = (now + real.max(Duration::from_micros(200)), processes[i].state());
            }
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    for f in flags {
        f.store(false, Ordering::SeqCst);
    }
    transitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use condor_model::diurnal::DiurnalProfile;

    fn flags(n: usize) -> Vec<Arc<AtomicBool>> {
        (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect()
    }

    #[test]
    fn owners_flip_flags_over_time() {
        let f = flags(3);
        let config = OwnerConfig {
            profile: DiurnalProfile::flat(0.5),
            mean_active_period: condor_sim::time::SimDuration::from_minutes(2),
            ..OwnerConfig::default()
        };
        // 1 sim minute = 2 ms → flips every few ms.
        let sim = OwnerSimulator::start(f.clone(), config, Duration::from_millis(2), 42);
        let initial: Vec<bool> = f.iter().map(|x| x.load(Ordering::SeqCst)).collect();
        let mut observed_active = false;
        let mut observed_idle = false;
        let mut changed = false;
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline && !(observed_active && observed_idle && changed) {
            for (i, flag) in f.iter().enumerate() {
                let v = flag.load(Ordering::SeqCst);
                if v {
                    observed_active = true;
                } else {
                    observed_idle = true;
                }
                if v != initial[i] {
                    changed = true;
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let transitions = sim.stop();
        assert!(observed_active, "some owner must sit down");
        assert!(observed_idle, "some owner must be away");
        assert!(changed, "at least one owner must flip");
        assert!(transitions > 0, "transitions {transitions}");
        // Stop clears all flags.
        assert!(f.iter().all(|x| !x.load(Ordering::SeqCst)));
    }

    #[test]
    fn drop_stops_the_thread() {
        let f = flags(1);
        let sim = OwnerSimulator::start(
            f,
            OwnerConfig::default(),
            Duration::from_millis(5),
            7,
        );
        drop(sim); // must not hang
    }
}
