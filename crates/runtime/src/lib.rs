//! # condor-runtime — the live mini-Condor
//!
//! The simulator (condor-core) reproduces the paper's *measurements*; this
//! crate reproduces its *system*: a working in-process Condor pool where
//!
//! * worker threads play workstations, executing **real computations**
//!   ([`program`]: prime counting, Monte-Carlo π, series sums) in metered
//!   slices;
//! * owner activity is a flag checked between slices (the live analogue of
//!   the paper's 30-second local-scheduler check) — an active owner gets
//!   the CPU back immediately ([`worker`]);
//! * the coordinator runs the *same* Up-Down policy as the simulator, with
//!   scaled-down poll and grace intervals ([`runtime`]);
//! * checkpoints are real `condor-ckpt` images stored at the submitting
//!   home, and migration provably never changes a job's final result —
//!   even for stochastic programs, whose RNG state rides in the
//!   checkpoint.
//!
//! ## Example
//!
//! ```
//! use condor_runtime::program::PrimeCounter;
//! use condor_runtime::runtime::{Runtime, RuntimeConfig};
//! use std::time::Duration;
//!
//! let mut rt = Runtime::new(RuntimeConfig { workers: 2, ..RuntimeConfig::default() });
//! let job = rt.submit(0, &PrimeCounter::new(1_000));
//! let report = rt.run(Duration::from_secs(30));
//! assert!(report.results.contains_key(&job));
//! rt.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod owners;
pub mod program;
pub mod runtime;
pub mod worker;

pub use owners::OwnerSimulator;
pub use program::{restore, JobProgram, MonteCarloPi, PrimeCounter, RestoreError, SeriesSum, StepOutcome};
pub use runtime::{LiveState, Runtime, RuntimeConfig, RuntimeReport};
pub use worker::{Command, Worker, WorkerEvent};
