//! Worker threads: the live counterpart of an idle workstation.
//!
//! A [`Worker`] owns one OS thread that executes at most one foreign job at
//! a time, in metered slices of real computation. Between slices it checks
//! an owner-activity flag (the live analogue of the paper's 30-second local
//! scheduler check): while the owner is active the worker yields the CPU
//! and reports the interruption; the coordinator decides — exactly as in
//! the paper — whether to wait out a grace period or order an eviction
//! checkpoint.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};

use crate::program::{restore, JobProgram, StepOutcome};

/// Commands from the coordinator to one worker.
#[derive(Debug)]
pub enum Command {
    /// Install and start a job from a snapshot.
    Place {
        /// Job id.
        job: u64,
        /// Program kind (registry key).
        kind: String,
        /// Program snapshot to restore from.
        snapshot: Vec<u8>,
    },
    /// Checkpoint the job and vacate the machine (grace expired or
    /// priority preemption).
    Evict {
        /// Job id to vacate.
        job: u64,
    },
    /// Drop the job without a checkpoint (immediate-kill strategy).
    Kill {
        /// Job id to kill.
        job: u64,
    },
    /// Stop the worker thread.
    Shutdown,
}

/// Events from a worker to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerEvent {
    /// The job was restored and is executing.
    Started {
        /// Worker index.
        worker: usize,
        /// Job id.
        job: u64,
    },
    /// The placement failed (corrupt snapshot / unknown kind).
    PlaceFailed {
        /// Worker index.
        worker: usize,
        /// Job id.
        job: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// The owner became active while the job ran; the worker has stopped
    /// executing slices (job still resident).
    OwnerInterrupted {
        /// Worker index.
        worker: usize,
        /// Job id.
        job: u64,
    },
    /// The owner went idle again before any eviction; execution resumed in
    /// place.
    ResumedInPlace {
        /// Worker index.
        worker: usize,
        /// Job id.
        job: u64,
    },
    /// The job completed; the result and final snapshot travel home.
    Finished {
        /// Worker index.
        worker: usize,
        /// Job id.
        job: u64,
        /// The program's result bytes.
        result: Vec<u8>,
        /// Work units executed on this worker.
        units_here: u64,
    },
    /// Eviction checkpoint taken; the machine is free again.
    Evicted {
        /// Worker index.
        worker: usize,
        /// Job id.
        job: u64,
        /// The checkpoint snapshot.
        snapshot: Vec<u8>,
        /// Program kind, for the restore at the next host.
        kind: String,
        /// Work units executed on this worker.
        units_here: u64,
    },
    /// The job was killed without a checkpoint.
    Killed {
        /// Worker index.
        worker: usize,
        /// Job id.
        job: u64,
    },
    /// An `Evict`/`Kill` arrived for a job no longer resident (it finished
    /// first); harmless race, reported for observability.
    CommandMiss {
        /// Worker index.
        worker: usize,
        /// Job id the command named.
        job: u64,
    },
}

/// Handle to a running worker thread.
#[derive(Debug)]
pub struct Worker {
    index: usize,
    cmd_tx: Sender<Command>,
    owner_active: Arc<AtomicBool>,
    join: Option<JoinHandle<u64>>,
}

impl Worker {
    /// Spawns a worker thread. `slice_units` is the work metered between
    /// owner checks (the live analogue of the 30-second check interval).
    pub fn spawn(index: usize, slice_units: u64, event_tx: Sender<WorkerEvent>) -> Worker {
        assert!(slice_units > 0, "zero slice");
        let (cmd_tx, cmd_rx) = crossbeam::channel::unbounded();
        let owner_active = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&owner_active);
        let join = std::thread::Builder::new()
            .name(format!("condor-worker-{index}"))
            .spawn(move || worker_loop(index, slice_units, &cmd_rx, &event_tx, &flag))
            .expect("spawn worker thread");
        Worker {
            index,
            cmd_tx,
            owner_active,
            join: Some(join),
        }
    }

    /// The worker's station index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Simulates the owner sitting down (`true`) or leaving (`false`).
    pub fn set_owner_active(&self, active: bool) {
        self.owner_active.store(active, Ordering::SeqCst);
    }

    /// Whether the owner is currently active.
    pub fn owner_active(&self) -> bool {
        self.owner_active.load(Ordering::SeqCst)
    }

    /// The shared owner flag, for external drivers such as
    /// [`OwnerSimulator`](crate::owners::OwnerSimulator).
    pub fn owner_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.owner_active)
    }

    /// Sends a command to the worker.
    pub fn send(&self, cmd: Command) {
        // A send can only fail after shutdown; ignore (teardown path).
        let _ = self.cmd_tx.send(cmd);
    }

    /// Stops the thread and returns the total work units it executed.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.cmd_tx.send(Command::Shutdown);
        self.join
            .take()
            .expect("worker joined twice")
            .join()
            .expect("worker thread panicked")
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.cmd_tx.send(Command::Shutdown);
            let _ = join.join();
        }
    }
}

struct Resident {
    job: u64,
    program: Box<dyn JobProgram>,
    units_here: u64,
    interrupted: bool,
}

fn worker_loop(
    index: usize,
    slice_units: u64,
    cmd_rx: &Receiver<Command>,
    event_tx: &Sender<WorkerEvent>,
    owner_active: &AtomicBool,
) -> u64 {
    let mut resident: Option<Resident> = None;
    let mut total_units = 0u64;
    loop {
        // Drain pending commands.
        let cmd = if resident.is_some() {
            cmd_rx.try_recv().ok()
        } else {
            // Idle: block briefly so an idle worker does not spin.
            cmd_rx.recv_timeout(Duration::from_millis(1)).ok()
        };
        if let Some(cmd) = cmd {
            match cmd {
                Command::Shutdown => return total_units,
                Command::Place { job, kind, snapshot } => match restore(&kind, &snapshot) {
                    Ok(program) => {
                        resident = Some(Resident {
                            job,
                            program,
                            units_here: 0,
                            interrupted: false,
                        });
                        let _ = event_tx.send(WorkerEvent::Started { worker: index, job });
                    }
                    Err(e) => {
                        let _ = event_tx.send(WorkerEvent::PlaceFailed {
                            worker: index,
                            job,
                            reason: e.to_string(),
                        });
                    }
                },
                Command::Evict { job } => {
                    match resident.take_if(|r| r.job == job) {
                        Some(r) => {
                            let _ = event_tx.send(WorkerEvent::Evicted {
                                worker: index,
                                job,
                                snapshot: r.program.snapshot(),
                                kind: r.program.kind().to_string(),
                                units_here: r.units_here,
                            });
                        }
                        None => {
                            let _ = event_tx.send(WorkerEvent::CommandMiss { worker: index, job });
                        }
                    }
                }
                Command::Kill { job } => match resident.take_if(|r| r.job == job) {
                    Some(_) => {
                        let _ = event_tx.send(WorkerEvent::Killed { worker: index, job });
                    }
                    None => {
                        let _ = event_tx.send(WorkerEvent::CommandMiss { worker: index, job });
                    }
                },
            }
            continue;
        }

        // Execute a slice if we may.
        let Some(r) = &mut resident else { continue };
        if owner_active.load(Ordering::SeqCst) {
            if !r.interrupted {
                r.interrupted = true;
                let _ = event_tx.send(WorkerEvent::OwnerInterrupted { worker: index, job: r.job });
            }
            // Yield the CPU to the "owner".
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        if r.interrupted {
            r.interrupted = false;
            let _ = event_tx.send(WorkerEvent::ResumedInPlace { worker: index, job: r.job });
        }
        let outcome = r.program.step(slice_units);
        r.units_here += slice_units;
        total_units += slice_units;
        if outcome == StepOutcome::Finished {
            let r = resident.take().expect("resident checked above");
            let _ = event_tx.send(WorkerEvent::Finished {
                worker: index,
                job: r.job,
                result: r.program.result().expect("finished program has result"),
                units_here: r.units_here,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{PrimeCounter, SeriesSum};

    fn recv(rx: &Receiver<WorkerEvent>) -> WorkerEvent {
        rx.recv_timeout(Duration::from_secs(10)).expect("event within 10 s")
    }

    #[test]
    fn place_run_finish() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let w = Worker::spawn(0, 1_000, tx);
        let p = PrimeCounter::new(5_000);
        w.send(Command::Place {
            job: 1,
            kind: PrimeCounter::KIND.into(),
            snapshot: p.snapshot(),
        });
        assert_eq!(recv(&rx), WorkerEvent::Started { worker: 0, job: 1 });
        match recv(&rx) {
            WorkerEvent::Finished { job: 1, result, .. } => {
                assert_eq!(u64::from_le_bytes(result.try_into().unwrap()), 669);
            }
            other => panic!("expected Finished, got {other:?}"),
        }
        assert!(w.shutdown() > 0);
    }

    #[test]
    fn owner_activity_pauses_execution() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let w = Worker::spawn(3, 500, tx);
        // A long job.
        let p = SeriesSum::new(u64::MAX / 2, 1_000_003);
        w.send(Command::Place {
            job: 9,
            kind: SeriesSum::KIND.into(),
            snapshot: p.snapshot(),
        });
        assert_eq!(recv(&rx), WorkerEvent::Started { worker: 3, job: 9 });
        w.set_owner_active(true);
        assert_eq!(recv(&rx), WorkerEvent::OwnerInterrupted { worker: 3, job: 9 });
        w.set_owner_active(false);
        assert_eq!(recv(&rx), WorkerEvent::ResumedInPlace { worker: 3, job: 9 });
        // Evict and confirm the snapshot restores elsewhere.
        w.send(Command::Evict { job: 9 });
        match recv(&rx) {
            WorkerEvent::Evicted { job: 9, snapshot, kind, units_here, .. } => {
                assert_eq!(kind, SeriesSum::KIND);
                assert!(units_here > 0);
                assert!(crate::program::restore(&kind, &snapshot).is_ok());
            }
            other => panic!("expected Evicted, got {other:?}"),
        }
        w.shutdown();
    }

    #[test]
    fn eviction_migration_preserves_result() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let w0 = Worker::spawn(0, 200, tx.clone());
        let w1 = Worker::spawn(1, 200, tx);
        let program = PrimeCounter::new(20_000);
        let expected = {
            let mut straight = PrimeCounter::new(20_000);
            crate::program::run_to_completion(&mut straight)
        };
        w0.send(Command::Place {
            job: 5,
            kind: PrimeCounter::KIND.into(),
            snapshot: program.snapshot(),
        });
        assert_eq!(recv(&rx), WorkerEvent::Started { worker: 0, job: 5 });
        // Let it run a moment, then evict and move to the other worker.
        std::thread::sleep(Duration::from_millis(5));
        w0.send(Command::Evict { job: 5 });
        let (snapshot, kind) = match recv(&rx) {
            WorkerEvent::Evicted { snapshot, kind, .. } => (snapshot, kind),
            WorkerEvent::Finished { result, .. } => {
                // It was quick enough to finish before the eviction —
                // still a valid outcome; check and bail.
                assert_eq!(result, expected);
                w0.shutdown();
                w1.shutdown();
                return;
            }
            other => panic!("unexpected {other:?}"),
        };
        w1.send(Command::Place { job: 5, kind, snapshot });
        loop {
            match recv(&rx) {
                WorkerEvent::Started { worker: 1, job: 5 } => {}
                WorkerEvent::Finished { worker: 1, job: 5, result, .. } => {
                    assert_eq!(result, expected, "migration must not change the answer");
                    break;
                }
                WorkerEvent::CommandMiss { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        w0.shutdown();
        w1.shutdown();
    }

    #[test]
    fn kill_discards_job() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let w = Worker::spawn(0, 100, tx);
        let p = SeriesSum::new(u64::MAX / 2, 7);
        w.send(Command::Place {
            job: 2,
            kind: SeriesSum::KIND.into(),
            snapshot: p.snapshot(),
        });
        assert_eq!(recv(&rx), WorkerEvent::Started { worker: 0, job: 2 });
        w.send(Command::Kill { job: 2 });
        assert_eq!(recv(&rx), WorkerEvent::Killed { worker: 0, job: 2 });
        // A second kill misses.
        w.send(Command::Kill { job: 2 });
        assert_eq!(recv(&rx), WorkerEvent::CommandMiss { worker: 0, job: 2 });
        w.shutdown();
    }

    #[test]
    fn bad_placement_reports_failure() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let w = Worker::spawn(0, 100, tx);
        w.send(Command::Place {
            job: 3,
            kind: "no-such".into(),
            snapshot: vec![],
        });
        match recv(&rx) {
            WorkerEvent::PlaceFailed { job: 3, reason, .. } => {
                assert!(reason.contains("no-such"));
            }
            other => panic!("expected PlaceFailed, got {other:?}"),
        }
        w.shutdown();
    }

    #[test]
    fn drop_cleans_up_thread() {
        let (tx, _rx) = crossbeam::channel::unbounded();
        let w = Worker::spawn(0, 100, tx);
        drop(w); // must not hang or panic
    }
}
