//! Resumable job programs: real computations that checkpoint.
//!
//! The simulator (condor-core) models jobs as abstract demand; the live
//! runtime executes *actual* computations on worker threads. A
//! [`JobProgram`] advances in metered steps, can snapshot its complete
//! state to bytes at any step boundary, and can be restored from a
//! snapshot **on a different worker** with bit-identical results — the
//! Remote Unix guarantee from paper §2.3, enforced here by tests that
//! interleave arbitrary checkpoint/restore cycles and compare results
//! against an uninterrupted run.
//!
//! Snapshots use the `condor-ckpt` codec, so the same CRC-framed format
//! protects live state as protects simulated images.

use bytes::Bytes;
use condor_ckpt::codec::{Decoder, Encoder};
use condor_ckpt::error::DecodeError;

/// Outcome of one metered step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More work remains.
    Running,
    /// The program has produced its result.
    Finished,
}

/// A checkpointable unit of real computation.
///
/// Contract: `snapshot` at any step boundary, followed by `restore` into a
/// fresh instance (possibly in another thread/process), must continue to
/// the *same* final result as an uninterrupted run.
pub trait JobProgram: Send {
    /// Stable identifier used to pick the right `restore` at the far end.
    fn kind(&self) -> &'static str;

    /// Performs up to `units` units of real work.
    fn step(&mut self, units: u64) -> StepOutcome;

    /// Total work units remaining (an estimate is fine; used for
    /// scheduling hints and progress reporting).
    fn remaining_units(&self) -> u64;

    /// Serialises the complete program state.
    fn snapshot(&self) -> Vec<u8>;

    /// The final result, once [`StepOutcome::Finished`] was returned.
    fn result(&self) -> Option<Vec<u8>>;
}

/// Restores a program from `(kind, snapshot)`.
///
/// # Errors
///
/// [`RestoreError::UnknownKind`] for unregistered kinds, or
/// [`RestoreError::Corrupt`] if the snapshot fails to decode.
pub fn restore(kind: &str, snapshot: &[u8]) -> Result<Box<dyn JobProgram>, RestoreError> {
    match kind {
        PrimeCounter::KIND => Ok(Box::new(PrimeCounter::from_snapshot(snapshot)?)),
        MonteCarloPi::KIND => Ok(Box::new(MonteCarloPi::from_snapshot(snapshot)?)),
        SeriesSum::KIND => Ok(Box::new(SeriesSum::from_snapshot(snapshot)?)),
        other => Err(RestoreError::UnknownKind { kind: other.to_string() }),
    }
}

/// Errors from [`restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// No program registered under this kind.
    UnknownKind {
        /// The unrecognised kind string.
        kind: String,
    },
    /// The snapshot bytes failed validation.
    Corrupt(DecodeError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::UnknownKind { kind } => write!(f, "unknown program kind {kind:?}"),
            RestoreError::Corrupt(e) => write!(f, "corrupt snapshot: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestoreError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for RestoreError {
    fn from(e: DecodeError) -> Self {
        RestoreError::Corrupt(e)
    }
}

// ---------------------------------------------------------------------------

/// Counts primes below a limit by trial division — CPU-bound, incremental,
/// and deliberately naive (the point is to burn real cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimeCounter {
    limit: u64,
    next: u64,
    found: u64,
}

impl PrimeCounter {
    /// The registry kind string.
    pub const KIND: &'static str = "primes";

    /// Counts primes below `limit`.
    pub fn new(limit: u64) -> Self {
        PrimeCounter {
            limit,
            next: 2,
            found: 0,
        }
    }

    /// The count found so far.
    pub fn found(&self) -> u64 {
        self.found
    }

    fn from_snapshot(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::from_frame(Bytes::copy_from_slice(bytes))?;
        let limit = d.get_varint("limit")?;
        let next = d.get_varint("next")?;
        let found = d.get_varint("found")?;
        d.finish()?;
        Ok(PrimeCounter { limit, next, found })
    }
}

fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

impl JobProgram for PrimeCounter {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn step(&mut self, units: u64) -> StepOutcome {
        for _ in 0..units {
            if self.next >= self.limit {
                return StepOutcome::Finished;
            }
            if is_prime(self.next) {
                self.found += 1;
            }
            self.next += 1;
        }
        if self.next >= self.limit {
            StepOutcome::Finished
        } else {
            StepOutcome::Running
        }
    }

    fn remaining_units(&self) -> u64 {
        self.limit.saturating_sub(self.next)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_varint(self.limit);
        e.put_varint(self.next);
        e.put_varint(self.found);
        e.finish_frame().to_vec()
    }

    fn result(&self) -> Option<Vec<u8>> {
        (self.next >= self.limit).then(|| self.found.to_le_bytes().to_vec())
    }
}

// ---------------------------------------------------------------------------

/// Monte-Carlo π estimation with an explicit xorshift state, so the random
/// stream itself is part of the checkpoint (restoring resumes the *same*
/// stream — results are reproducible across migrations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonteCarloPi {
    rng_state: u64,
    target: u64,
    done: u64,
    inside: u64,
}

impl MonteCarloPi {
    /// The registry kind string.
    pub const KIND: &'static str = "mc-pi";

    /// Samples `target` points with the given RNG seed.
    pub fn new(seed: u64, target: u64) -> Self {
        MonteCarloPi {
            rng_state: seed.max(1), // xorshift must not start at 0
            target,
            done: 0,
            inside: 0,
        }
    }

    /// The running π estimate.
    pub fn estimate(&self) -> f64 {
        if self.done == 0 {
            0.0
        } else {
            4.0 * self.inside as f64 / self.done as f64
        }
    }

    fn from_snapshot(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::from_frame(Bytes::copy_from_slice(bytes))?;
        let rng_state = d.get_varint("rng")?;
        let target = d.get_varint("target")?;
        let done = d.get_varint("done")?;
        let inside = d.get_varint("inside")?;
        d.finish()?;
        Ok(MonteCarloPi { rng_state, target, done, inside })
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }
}

impl JobProgram for MonteCarloPi {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn step(&mut self, units: u64) -> StepOutcome {
        for _ in 0..units {
            if self.done >= self.target {
                return StepOutcome::Finished;
            }
            let a = self.next_u64();
            let x = (a >> 32) as f64 / u32::MAX as f64;
            let y = (a & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
            if x * x + y * y <= 1.0 {
                self.inside += 1;
            }
            self.done += 1;
        }
        if self.done >= self.target {
            StepOutcome::Finished
        } else {
            StepOutcome::Running
        }
    }

    fn remaining_units(&self) -> u64 {
        self.target.saturating_sub(self.done)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_varint(self.rng_state);
        e.put_varint(self.target);
        e.put_varint(self.done);
        e.put_varint(self.inside);
        e.finish_frame().to_vec()
    }

    fn result(&self) -> Option<Vec<u8>> {
        (self.done >= self.target).then(|| {
            let mut out = self.inside.to_le_bytes().to_vec();
            out.extend_from_slice(&self.done.to_le_bytes());
            out
        })
    }
}

// ---------------------------------------------------------------------------

/// Sums `i² mod m` over a range — the cheap smoke-test program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSum {
    upto: u64,
    next: u64,
    modulus: u64,
    acc: u64,
}

impl SeriesSum {
    /// The registry kind string.
    pub const KIND: &'static str = "series-sum";

    /// Sums `i² mod modulus` for `i` in `[0, upto)`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn new(upto: u64, modulus: u64) -> Self {
        assert!(modulus > 0, "zero modulus");
        SeriesSum {
            upto,
            next: 0,
            modulus,
            acc: 0,
        }
    }

    fn from_snapshot(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::from_frame(Bytes::copy_from_slice(bytes))?;
        let upto = d.get_varint("upto")?;
        let next = d.get_varint("next")?;
        let modulus = d.get_varint("modulus")?;
        let acc = d.get_varint("acc")?;
        d.finish()?;
        Ok(SeriesSum { upto, next, modulus, acc })
    }
}

impl JobProgram for SeriesSum {
    fn kind(&self) -> &'static str {
        Self::KIND
    }

    fn step(&mut self, units: u64) -> StepOutcome {
        for _ in 0..units {
            if self.next >= self.upto {
                return StepOutcome::Finished;
            }
            let i = self.next % self.modulus;
            self.acc = self.acc.wrapping_add(i.wrapping_mul(i) % self.modulus);
            self.next += 1;
        }
        if self.next >= self.upto {
            StepOutcome::Finished
        } else {
            StepOutcome::Running
        }
    }

    fn remaining_units(&self) -> u64 {
        self.upto.saturating_sub(self.next)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_varint(self.upto);
        e.put_varint(self.next);
        e.put_varint(self.modulus);
        e.put_varint(self.acc);
        e.finish_frame().to_vec()
    }

    fn result(&self) -> Option<Vec<u8>> {
        (self.next >= self.upto).then(|| self.acc.to_le_bytes().to_vec())
    }
}

/// Runs a program to completion in one go and returns its result.
pub fn run_to_completion(program: &mut dyn JobProgram) -> Vec<u8> {
    while program.step(10_000) == StepOutcome::Running {}
    program.result().expect("finished program has a result")
}

/// Runs a program with a checkpoint/restore cycle every `interval` units —
/// the harness behind the migration-correctness tests.
pub fn run_with_migrations(
    mut program: Box<dyn JobProgram>,
    interval: u64,
) -> Result<(Vec<u8>, u32), RestoreError> {
    let mut migrations = 0u32;
    loop {
        if program.step(interval) == StepOutcome::Finished {
            return Ok((
                program.result().expect("finished program has a result"),
                migrations,
            ));
        }
        // Checkpoint, "travel", restore — as if on a different machine.
        let kind = program.kind().to_string();
        let snap = program.snapshot();
        drop(program);
        program = restore(&kind, &snap)?;
        migrations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_counter_is_correct() {
        let mut p = PrimeCounter::new(100);
        let result = run_to_completion(&mut p);
        assert_eq!(u64::from_le_bytes(result.try_into().unwrap()), 25);
        assert_eq!(p.found(), 25);
        assert_eq!(p.remaining_units(), 0);
    }

    #[test]
    fn series_sum_is_deterministic() {
        let mut a = SeriesSum::new(10_000, 97);
        let mut b = SeriesSum::new(10_000, 97);
        let ra = run_to_completion(&mut a);
        let rb = run_to_completion(&mut b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn mc_pi_estimate_converges() {
        let mut p = MonteCarloPi::new(7, 2_000_000);
        run_to_completion(&mut p);
        let pi = p.estimate();
        assert!((pi - std::f64::consts::PI).abs() < 0.01, "estimate {pi}");
    }

    #[test]
    fn snapshots_roundtrip_mid_flight() {
        let mut p = PrimeCounter::new(10_000);
        p.step(1_234);
        let snap = p.snapshot();
        let q = PrimeCounter::from_snapshot(&snap).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn migration_preserves_results_exactly() {
        // The §2.3 guarantee: arbitrary checkpoint/restore cycles change
        // nothing about the final answer.
        for interval in [1u64, 7, 100, 9_999] {
            let straight = run_to_completion(&mut PrimeCounter::new(3_000));
            let (migrated, migrations) =
                run_with_migrations(Box::new(PrimeCounter::new(3_000)), interval).unwrap();
            assert_eq!(straight, migrated, "interval {interval}");
            assert!(migrations > 0 || interval > 3_000);
        }
    }

    #[test]
    fn migration_preserves_random_streams() {
        // The RNG state rides in the checkpoint, so even a stochastic
        // program is migration-transparent.
        let straight = run_to_completion(&mut MonteCarloPi::new(99, 100_000));
        let (migrated, migrations) =
            run_with_migrations(Box::new(MonteCarloPi::new(99, 100_000)), 1_733).unwrap();
        assert_eq!(straight, migrated);
        assert!(migrations > 50);
    }

    #[test]
    fn restore_rejects_unknown_kind_and_garbage() {
        match restore("no-such-kind", &[]) {
            Err(RestoreError::UnknownKind { kind }) => assert_eq!(kind, "no-such-kind"),
            other => panic!("expected UnknownKind, got {:?}", other.err()),
        }
        match restore(PrimeCounter::KIND, &[1, 2, 3]) {
            Err(RestoreError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {:?}", other.err()),
        }
        // Cross-kind restore fails framewise or semantically — a SeriesSum
        // snapshot has four fields, a PrimeCounter three: trailing bytes.
        let snap = SeriesSum::new(10, 3).snapshot();
        assert!(restore(PrimeCounter::KIND, &snap).is_err());
    }

    #[test]
    fn registry_restores_all_kinds() {
        let programs: Vec<Box<dyn JobProgram>> = vec![
            Box::new(PrimeCounter::new(50)),
            Box::new(MonteCarloPi::new(1, 50)),
            Box::new(SeriesSum::new(50, 7)),
        ];
        for mut p in programs {
            p.step(10);
            let snap = p.snapshot();
            let q = restore(p.kind(), &snap).unwrap();
            assert_eq!(q.kind(), p.kind());
            assert_eq!(q.remaining_units(), p.remaining_units());
        }
    }

    #[test]
    fn step_zero_units_is_a_no_op() {
        let mut p = PrimeCounter::new(100);
        assert_eq!(p.step(0), StepOutcome::Running);
        assert_eq!(p.remaining_units(), 98);
    }

    #[test]
    fn finished_program_stays_finished() {
        let mut p = SeriesSum::new(10, 3);
        assert_eq!(p.step(100), StepOutcome::Finished);
        assert_eq!(p.step(100), StepOutcome::Finished);
        assert!(p.result().is_some());
        assert_eq!(p.remaining_units(), 0);
    }
}
